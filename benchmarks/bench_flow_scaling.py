"""Flow-core scaling: incremental vs from-scratch max-min allocation.

The seed allocator recomputed every flow's max-min fair rate from scratch over
every flow and resource on every start/completion event — O(flows² ·
resources) per event.  The rebuilt core maintains a persistent resource→flows
index so each progressive-filling iteration walks only the flows registered
on each resource, with demand sums cached between iterations.  This benchmark
pins down the two claims that matter:

* **speed** — ≥5x faster on a Home Base contention scenario with 64
  concurrent channels (the regime Figure 16's big grids live in);
* **fidelity** — makespans identical to the from-scratch allocator (±1e-6 us)
  on the Figure 16 benchmark configurations and on Figure 9-style chained
  long-distance channels.

Run with:  pytest benchmarks/bench_flow_scaling.py --benchmark-only -s
"""

import time

from repro.analysis.fig16 import allocation_for_ratio
from repro.network.geometry import Coordinate
from repro.network.layout import CommRequest
from repro.network.nodes import ResourceAllocation
from repro.sim.control import PlannedCommunication
from repro.sim.engine import SimulationEngine
from repro.sim.flow import FlowTransport
from repro.sim.machine import QuantumMachine
from repro.sim.simulator import CommunicationSimulator
from repro.workloads.qft import qft_stream
from repro.workloads.synthetic import permutation_stream

#: Contention scenario: 128 logical qubits on a 12x12 Home Base grid, one
#: random perfect matching => 64 independent operations, each holding one
#: channel at a time => 64 concurrent channels crossing the mesh centre.
CONTENTION_GRID = 12
CONTENTION_QUBITS = 128
CONTENTION_ALLOCATION = ResourceAllocation(2, 2, 1)

MAKESPAN_TOLERANCE_US = 1e-6
REQUIRED_SPEEDUP = 5.0


def _contention_run(allocator):
    machine = QuantumMachine(
        CONTENTION_GRID,
        num_qubits=CONTENTION_QUBITS,
        allocation=CONTENTION_ALLOCATION,
        layout="home_base",
    )
    stream = permutation_stream(CONTENTION_QUBITS)
    return CommunicationSimulator(machine, allocator=allocator).run(stream)


def test_backend_dispatch_resolves_to_the_direct_flow_transport():
    """The registry-selected fluid backend *is* the direct FlowTransport.

    The transport refactor (pluggable backends behind
    :mod:`repro.sim.transport`) dispatches once per run and must hand back
    the plain FlowTransport object with the allocator wired through — no
    wrapper, no indirection on the per-event path.  The actual trace-off
    hot-path timing gate is the >=5x speedup test below, which now runs
    through this dispatch; a registry-layer slowdown would surface there as
    a lost speedup margin.
    """
    from repro.sim.transport import create_transport

    machine = QuantumMachine(
        CONTENTION_GRID,
        num_qubits=CONTENTION_QUBITS,
        allocation=CONTENTION_ALLOCATION,
        layout="home_base",
    )
    engine = SimulationEngine()
    transport = create_transport("fluid", engine, machine, allocator="incremental")
    assert type(transport) is FlowTransport
    assert transport.allocator == "incremental"
    assert transport.engine is engine and transport.machine is machine


def test_incremental_allocator_speedup_on_64_channels(benchmark):
    start = time.perf_counter()
    reference = _contention_run("reference")
    reference_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    incremental = benchmark.pedantic(_contention_run, args=("incremental",), rounds=1, iterations=1)
    incremental_elapsed = time.perf_counter() - start

    speedup = reference_elapsed / incremental_elapsed
    print(
        f"\n64-channel contention ({CONTENTION_GRID}x{CONTENTION_GRID} Home Base, "
        f"{CONTENTION_QUBITS} qubits, {CONTENTION_ALLOCATION.label}):"
    )
    print(
        f"  reference : {reference_elapsed:7.2f}s  makespan={reference.makespan_us:.6f} us\n"
        f"  incremental: {incremental_elapsed:6.2f}s  makespan={incremental.makespan_us:.6f} us\n"
        f"  speedup   : {speedup:7.1f}x"
    )
    # The scenario really does keep 64 channels in flight.
    assert incremental.max_concurrent_channels() == 64
    # Same fluid dynamics, just computed incrementally.
    assert abs(incremental.makespan_us - reference.makespan_us) <= MAKESPAN_TOLERANCE_US
    assert incremental.channel_count == reference.channel_count
    # The headline: the rebuilt core is at least 5x faster under contention.
    assert speedup >= REQUIRED_SPEEDUP


def test_allocators_agree_on_fig16_benchmark_configs():
    """Figure 16 sweep configurations: identical makespans (±1e-6 us)."""
    stream = qft_stream(36)
    print("\nFigure 16 configs (6x6 QFT):")
    for layout in ("home_base", "mobile_qubit"):
        for ratio in (1, 4, 8):
            allocation = allocation_for_ratio(ratio, 18)
            makespans = {}
            for allocator in ("reference", "incremental"):
                machine = QuantumMachine(6, allocation=allocation, layout=layout)
                makespans[allocator] = (
                    CommunicationSimulator(machine, allocator=allocator)
                    .run(stream)
                    .makespan_us
                )
            difference = abs(makespans["incremental"] - makespans["reference"])
            print(
                f"  {layout:13s} ratio={ratio}  makespan={makespans['incremental']:.3f} us  "
                f"|diff|={difference:.3e} us"
            )
            assert difference <= MAKESPAN_TOLERANCE_US


def test_allocators_agree_on_fig9_style_chained_channels():
    """Figure 9-style chained teleportation: staggered 64-hop channels."""
    machine = QuantumMachine(33, allocation=ResourceAllocation(2, 2, 1))
    # Eight long corner-to-corner channels sharing the mesh spine, started at
    # staggered times so flows join and leave an already-allocated system.
    specs = []
    for i in range(8):
        source = Coordinate(0, i)
        dest = Coordinate(32, 32 - i)
        specs.append((source, dest, 1000.0 * i))
    finals = {}
    for allocator in ("reference", "incremental"):
        engine = SimulationEngine()
        transport = FlowTransport(engine, machine, allocator=allocator)
        for qubit, (source, dest, delay) in enumerate(specs):
            plan = machine.planner.plan(source, dest)
            planned = PlannedCommunication(
                request=CommRequest(source=source, dest=dest, qubit=qubit), plan=plan
            )
            engine.schedule(delay, lambda p=planned: transport.start(p, lambda: None))
        engine.run()
        finals[allocator] = (engine.now, len(transport.records))
    print(
        f"\nChained 64-hop channels: makespan={finals['incremental'][0]:.3f} us, "
        f"|diff|={abs(finals['incremental'][0] - finals['reference'][0]):.3e} us"
    )
    assert finals["incremental"][1] == finals["reference"][1] == len(specs)
    assert abs(finals["incremental"][0] - finals["reference"][0]) <= MAKESPAN_TOLERANCE_US
