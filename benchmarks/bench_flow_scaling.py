"""Flow-core scaling: incremental and vectorized vs from-scratch allocation.

The seed allocator recomputed every flow's max-min fair rate from scratch over
every flow and resource on every start/completion event — O(flows² ·
resources) per event.  The incremental allocator maintains a persistent
resource→flows index so each progressive-filling iteration walks only the
flows registered on each resource; the vectorized allocator goes further and
runs the same filling as numpy kernels over :class:`~repro.sim.flowpack`'s
CSR arrays.  This benchmark pins down the two claims that matter:

* **speed** — the vectorized allocator is ≥12x faster than the from-scratch
  reference on a Home Base contention scenario with 64 concurrent channels
  (the regime Figure 16's big grids live in; it sustains ~25-30x on the
  reference machine), with the incremental allocator keeping its historical
  ≥5x floor;
* **fidelity** — makespans identical across all three allocators (±1e-6 us
  here; ``repro verify`` and the property suite pin the stronger bitwise
  contract) on the Figure 16 benchmark configurations and on Figure 9-style
  chained long-distance channels.

See ``bench_allocator_scaling.py`` for the 1000-concurrent-flow regime.

Run with:  pytest benchmarks/bench_flow_scaling.py --benchmark-only -s
"""

import time

from repro.analysis.fig16 import allocation_for_ratio
from repro.network.geometry import Coordinate
from repro.network.layout import CommRequest
from repro.network.nodes import ResourceAllocation
from repro.sim.control import PlannedCommunication
from repro.sim.engine import SimulationEngine
from repro.sim.flow import FlowTransport
from repro.sim.machine import QuantumMachine
from repro.sim.simulator import CommunicationSimulator
from repro.workloads.qft import qft_stream
from repro.workloads.synthetic import permutation_stream

#: Contention scenario: 128 logical qubits on a 12x12 Home Base grid, one
#: random perfect matching => 64 independent operations, each holding one
#: channel at a time => 64 concurrent channels crossing the mesh centre.
CONTENTION_GRID = 12
CONTENTION_QUBITS = 128
CONTENTION_ALLOCATION = ResourceAllocation(2, 2, 1)

MAKESPAN_TOLERANCE_US = 1e-6
#: The headline gate, now held by the vectorized allocator (raised from the
#: incremental allocator's historical 5.0 once the numpy data plane landed).
REQUIRED_SPEEDUP = 12.0
#: The incremental allocator must not regress below its original bar either.
INCREMENTAL_REQUIRED_SPEEDUP = 5.0


def _contention_run(allocator):
    machine = QuantumMachine(
        CONTENTION_GRID,
        num_qubits=CONTENTION_QUBITS,
        allocation=CONTENTION_ALLOCATION,
        layout="home_base",
    )
    stream = permutation_stream(CONTENTION_QUBITS)
    return CommunicationSimulator(machine, allocator=allocator).run(stream)


def test_backend_dispatch_resolves_to_the_direct_flow_transport():
    """The registry-selected fluid backend *is* the direct FlowTransport.

    The transport refactor (pluggable backends behind
    :mod:`repro.sim.transport`) dispatches once per run and must hand back
    the plain FlowTransport object with the allocator wired through — no
    wrapper, no indirection on the per-event path.  The actual trace-off
    hot-path timing gate is the >=5x speedup test below, which now runs
    through this dispatch; a registry-layer slowdown would surface there as
    a lost speedup margin.
    """
    from repro.sim.transport import create_transport

    machine = QuantumMachine(
        CONTENTION_GRID,
        num_qubits=CONTENTION_QUBITS,
        allocation=CONTENTION_ALLOCATION,
        layout="home_base",
    )
    engine = SimulationEngine()
    transport = create_transport("fluid", engine, machine, allocator="incremental")
    assert type(transport) is FlowTransport
    assert transport.allocator == "incremental"
    assert transport.engine is engine and transport.machine is machine


def test_incremental_allocator_speedup_on_64_channels(benchmark):
    start = time.perf_counter()
    reference = _contention_run("reference")
    reference_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    incremental = benchmark.pedantic(_contention_run, args=("incremental",), rounds=1, iterations=1)
    incremental_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = _contention_run("vectorized")
    vectorized_elapsed = time.perf_counter() - start

    incremental_speedup = reference_elapsed / incremental_elapsed
    vectorized_speedup = reference_elapsed / vectorized_elapsed
    print(
        f"\n64-channel contention ({CONTENTION_GRID}x{CONTENTION_GRID} Home Base, "
        f"{CONTENTION_QUBITS} qubits, {CONTENTION_ALLOCATION.label}):"
    )
    print(
        f"  reference  : {reference_elapsed:7.2f}s  makespan={reference.makespan_us:.6f} us\n"
        f"  incremental: {incremental_elapsed:7.2f}s  speedup={incremental_speedup:.1f}x\n"
        f"  vectorized : {vectorized_elapsed:7.2f}s  speedup={vectorized_speedup:.1f}x"
    )
    # The scenario really does keep 64 channels in flight.
    assert incremental.max_concurrent_channels() == 64
    # Same fluid dynamics, just computed incrementally / in numpy: the
    # makespans are bitwise identical, not merely within tolerance.
    assert incremental.makespan_us == reference.makespan_us
    assert vectorized.makespan_us == reference.makespan_us
    assert incremental.channel_count == reference.channel_count
    assert vectorized.channel_count == reference.channel_count
    # The headline: the numpy data plane is at least 12x faster under
    # contention, and the incremental core keeps its historical 5x floor.
    assert incremental_speedup >= INCREMENTAL_REQUIRED_SPEEDUP
    assert vectorized_speedup >= REQUIRED_SPEEDUP


def test_allocators_agree_on_fig16_benchmark_configs():
    """Figure 16 sweep configurations: identical makespans (±1e-6 us)."""
    stream = qft_stream(36)
    print("\nFigure 16 configs (6x6 QFT):")
    for layout in ("home_base", "mobile_qubit"):
        for ratio in (1, 4, 8):
            allocation = allocation_for_ratio(ratio, 18)
            makespans = {}
            for allocator in ("reference", "incremental", "vectorized"):
                machine = QuantumMachine(6, allocation=allocation, layout=layout)
                makespans[allocator] = (
                    CommunicationSimulator(machine, allocator=allocator)
                    .run(stream)
                    .makespan_us
                )
            difference = max(
                abs(makespans[allocator] - makespans["reference"])
                for allocator in ("incremental", "vectorized")
            )
            print(
                f"  {layout:13s} ratio={ratio}  makespan={makespans['incremental']:.3f} us  "
                f"|diff|={difference:.3e} us"
            )
            assert difference <= MAKESPAN_TOLERANCE_US


def test_allocators_agree_on_fig9_style_chained_channels():
    """Figure 9-style chained teleportation: staggered 64-hop channels."""
    machine = QuantumMachine(33, allocation=ResourceAllocation(2, 2, 1))
    # Eight long corner-to-corner channels sharing the mesh spine, started at
    # staggered times so flows join and leave an already-allocated system.
    specs = []
    for i in range(8):
        source = Coordinate(0, i)
        dest = Coordinate(32, 32 - i)
        specs.append((source, dest, 1000.0 * i))
    finals = {}
    for allocator in ("reference", "incremental", "vectorized"):
        engine = SimulationEngine()
        transport = FlowTransport(engine, machine, allocator=allocator)
        for qubit, (source, dest, delay) in enumerate(specs):
            plan = machine.planner.plan(source, dest)
            planned = PlannedCommunication(
                request=CommRequest(source=source, dest=dest, qubit=qubit), plan=plan
            )
            engine.schedule(delay, lambda p=planned: transport.start(p, lambda: None))
        engine.run()
        finals[allocator] = (engine.now, len(transport.records))
    print(
        f"\nChained 64-hop channels: makespan={finals['incremental'][0]:.3f} us, "
        f"|diff|={abs(finals['incremental'][0] - finals['reference'][0]):.3e} us"
    )
    for allocator in ("incremental", "vectorized"):
        assert finals[allocator][1] == finals["reference"][1] == len(specs)
        assert abs(finals[allocator][0] - finals["reference"][0]) <= MAKESPAN_TOLERANCE_US
