"""Allocator scaling on a big multi-path fabric: 10k flows, 1024 hosts.

``bench_allocator_scaling.py`` pinned the vectorized allocator at 1000
concurrent flows on a flat mesh.  The big-fabric library multiplies both
axes: a k=16 fat tree has 1024 hosts and 1344 nodes, ECMP spreads every
cross-pod flow over 64 equal-cost six-hop candidates, and a realistic storm
holds 10,000 flows in flight at once.  At that depth a *full* start storm is
allocator-bound in either implementation (every start reallocates over all
admitted flows), so this benchmark separates the two costs:

* **admission** — 10k flows are admitted through the real transport path
  (balancer choice, route bookkeeping, demand construction) with the
  per-start reallocation stubbed out, reaching exactly 10k concurrent flows;
* **reallocation at depth** — the progressive-filling kernel is then timed
  at the full 10k-flow incidence, where the gate holds: the vectorized
  allocator is **>=5x** faster than incremental (measured ~8x), and the two
  produce **bitwise**-identical per-flow rates and per-resource loads.

A second test pins the routing-policy makespan ordering end to end on a
small fat tree: ``least_loaded`` never loses to ``ecmp`` beyond tolerance,
and every balanced policy beats the unbalanced single-path baseline.

Set ``BENCH_FABRIC_OUT`` to a path to emit a ``BENCH_<sha>_fabric.json``
payload (CI does; the artifact records walls, the speedup and the per-policy
makespans for the perf trajectory).

Run with:  pytest benchmarks/bench_fabric_scaling.py -s -q
"""

import os
import random
import time

from repro.network.layout import CommRequest
from repro.scenarios import run
from repro.scenarios.bench import bench_payload, write_bench_file
from repro.scenarios.spec import ScenarioSpec
from repro.sim.control import PlannedCommunication
from repro.sim.engine import SimulationEngine
from repro.sim.flow import FlowTransport
from repro.sim.machine import QuantumMachine
from repro.network.nodes import ResourceAllocation

#: The storm: 10k random host-to-host flows on a k=16 fat tree (1024 hosts,
#: 1344 nodes) with the paper's scarce (2, 2, 1) per-node allocation.
FAT_TREE_ARITY = 16
FLOW_COUNT = 10_000
PAIR_SEED = 20060618

#: Timed reallocation repetitions; the best wall is compared (both
#: allocators recompute rates from scratch per call, so reps are identical).
REALLOC_REPS = 3

REQUIRED_VECTORIZED_SPEEDUP = 5.0

#: Policy-ordering scale: the fattree_smoke machine (k=4, 16 hosts).
POLICY_MAKESPAN_TOL = 0.05


def _fabric_machine():
    return QuantumMachine(
        FAT_TREE_ARITY,
        topology_kind="fat_tree",
        allocation=ResourceAllocation(2, 2, 1),
        routing_policy="ecmp",
    )


def _random_host_pairs(machine, count, seed=PAIR_SEED):
    hosts = machine.topology.qubit_capacity
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        a, b = rng.randrange(hosts), rng.randrange(hosts)
        if a != b:
            pairs.append((machine.topology.host(a), machine.topology.host(b)))
    return pairs


def _admit_storm(allocator, count=FLOW_COUNT):
    """Admit ``count`` concurrent flows without intermediate reallocations.

    The transport's real admission path runs — ECMP candidate enumeration
    and choice, per-link flow bookkeeping, demand-vector construction, pack
    insertion — but the per-start rate recomputation (the quantity under
    test) is stubbed to a no-op until the storm is fully admitted.
    """
    machine = _fabric_machine()
    pairs = _random_host_pairs(machine, count)
    engine = SimulationEngine()
    transport = FlowTransport(engine, machine, allocator=allocator)
    transport._reallocate = lambda: None  # shadow during admission only
    start = time.perf_counter()
    for qubit, (source, dest) in enumerate(pairs):
        plan = machine.planner.plan(source, dest)
        planned = PlannedCommunication(
            request=CommRequest(source=source, dest=dest, qubit=qubit), plan=plan
        )
        transport.start(planned, lambda: None)
    admit_wall = time.perf_counter() - start
    del transport._reallocate  # restore the real method
    return transport, admit_wall


def _time_reallocation(transport, reps=REALLOC_REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        transport._reallocate()
        best = min(best, time.perf_counter() - start)
    return best


def _flow_rates(transport):
    if transport._pack is not None:
        return {fid: transport._pack.rate_of(fid) for fid in transport._flows}
    return {fid: flow.rate for fid, flow in transport._flows.items()}


def test_vectorized_speedup_at_10k_flows_on_1024_host_fat_tree():
    walls = {}
    states = {}
    admits = {}
    for allocator in ("incremental", "vectorized"):
        transport, admit_wall = _admit_storm(allocator)
        assert transport.active_flows == FLOW_COUNT
        # The balancer really routed: per-link flow counts cover the fabric.
        assert transport._link_flows and max(transport._link_flows.values()) > 1
        admits[allocator] = admit_wall
        walls[allocator] = _time_reallocation(transport)
        states[allocator] = (_flow_rates(transport), transport.resource_loads())
    speedup = walls["incremental"] / walls["vectorized"]
    print(
        f"\n10k-flow reallocation (k={FAT_TREE_ARITY} fat tree, 1024 hosts, 2/2/1):\n"
        f"  admission  : {admits['incremental']:6.2f}s / {admits['vectorized']:6.2f}s"
        f" (incremental / vectorized)\n"
        f"  incremental: {walls['incremental']:6.3f}s per reallocation\n"
        f"  vectorized : {walls['vectorized']:6.3f}s per reallocation\n"
        f"  speedup    : {speedup:6.1f}x"
    )
    # Bitwise parity over all 10k concurrent flows, rates and loads.
    assert states["vectorized"][0] == states["incremental"][0]
    assert states["vectorized"][1] == states["incremental"][1]
    assert speedup >= REQUIRED_VECTORIZED_SPEEDUP
    _maybe_emit(walls, speedup, _policy_makespans_cached())


def _policy_spec(policy):
    data = {
        "name": f"fattree_policy_{policy or 'none'}",
        "topology": {"kind": "fat_tree", "width": 4},
        "workload": {"kind": "qft", "num_qubits": 12},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
    }
    if policy is not None:
        data["network"] = {"routing": {"policy": policy}}
    return ScenarioSpec.from_dict(data)


_POLICY_MAKESPANS = {}


def _policy_makespans_cached():
    if not _POLICY_MAKESPANS:
        for policy in (None, "ecmp", "least_loaded", "adaptive"):
            result = run(_policy_spec(policy))
            _POLICY_MAKESPANS[policy or "none"] = result.batch.makespan_us
    return dict(_POLICY_MAKESPANS)


def test_policy_makespan_ordering_on_small_fat_tree():
    """End-to-end policy sanity on the k=4 fat tree: load-aware routing
    helps, ECMP helps, and nothing loses to the single-path baseline."""
    makespans = _policy_makespans_cached()
    print("\nfat-tree k=4 qft-12 makespans (us):")
    for policy, makespan in makespans.items():
        print(f"  {policy:12s} {makespan:14.3f}")
    assert makespans["least_loaded"] <= makespans["ecmp"] * (1.0 + POLICY_MAKESPAN_TOL)
    for policy in ("ecmp", "least_loaded", "adaptive"):
        assert makespans[policy] <= makespans["none"]


def _maybe_emit(walls, speedup, makespans):
    """Emit the trajectory payload when CI asks for it (BENCH_FABRIC_OUT)."""
    out = os.environ.get("BENCH_FABRIC_OUT")
    if not out:
        return
    write_bench_file(out, fabric_payload(walls, speedup, makespans))
    print(f"  payload    : {out}")


def fabric_payload(walls, speedup, makespans):
    record = {
        "scenario": "fabric_fattree_10k",
        "flows": FLOW_COUNT,
        "arity": FAT_TREE_ARITY,
        "hosts": FAT_TREE_ARITY**3 // 4,
        "wall_time_s": walls["vectorized"],
        "incremental_wall_time_s": walls["incremental"],
        "vectorized_speedup": speedup,
        "policy_makespans_us": makespans,
    }
    return bench_payload([record])


def test_fabric_payload_records_speedup_and_policies(tmp_path):
    """The payload writer is deterministic plumbing — cover it without the storm."""
    payload = fabric_payload(
        {"incremental": 1.0, "vectorized": 0.1}, 10.0, {"ecmp": 123.0}
    )
    assert payload["scenarios"][0]["vectorized_speedup"] == 10.0
    assert payload["scenarios"][0]["policy_makespans_us"] == {"ecmp": 123.0}
    path = write_bench_file(str(tmp_path / "BENCH_test_fabric.json"), payload)
    assert os.path.exists(path)
