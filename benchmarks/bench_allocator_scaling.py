"""Allocator scaling at 1000+ concurrent flows: vectorized vs incremental.

The incremental allocator made the 64-channel regime cheap (see
``bench_flow_scaling.py``), but its per-reallocation cost still walks Python
dicts over every member flow of every contended resource — at 1000 concurrent
flows that is minutes per run.  The vectorized allocator packs the same
flow×resource incidence into :class:`~repro.sim.flowpack.FlowPack`'s CSR
arrays and runs progressive filling as numpy kernels.  This benchmark pins:

* **speed** — the vectorized allocator is ≥5x faster than incremental with
  1000 concurrent flows in flight (measured ~20x on the start storm and
  ~13x on the full run on the reference machine);
* **fidelity** — per-flow rates after the 1000-start storm are **bitwise**
  identical between the two allocators, as are the full-run makespan and
  channel records at a smaller scale (the bitwise contract has no
  tolerance — the property suite and ``repro verify`` pin it elsewhere).

Set ``BENCH_ALLOC_OUT`` to a path to emit a ``BENCH_<sha>_alloc.json``-style
payload (CI does; the artifact records the measured walls, the speedup and
the warm-start hit counters for the perf trajectory).

Run with:  pytest benchmarks/bench_allocator_scaling.py -s -q
"""

import os
import random
import time

from repro.network.geometry import Coordinate
from repro.network.layout import CommRequest
from repro.scenarios import build_machine, get_scenario
from repro.scenarios.bench import bench_payload, write_bench_file
from repro.scenarios.spec import ScenarioSpec, apply_overrides
from repro.sim.control import PlannedCommunication
from repro.sim.engine import SimulationEngine
from repro.sim.flow import FlowTransport

#: Contention scenario: 1000 random channels on a 24x24 mesh with the paper's
#: scarce (2, 2, 1) per-node allocation, all in flight at once.
CONTENTION_GRID = 24
FLOW_COUNT = 1000
PAIR_SEED = 20060618

#: Full-run parity scale (start + completion storms, both allocators).
PARITY_FLOW_COUNT = 200

REQUIRED_VECTORIZED_SPEEDUP = 5.0


def _contention_spec(width=CONTENTION_GRID):
    """The contention machine as a ScenarioSpec, so ``build_machine`` routes
    it through the warm-start cache (the payload records those counters)."""
    base = get_scenario("smoke").to_dict()
    data = apply_overrides(
        base,
        {
            "topology.width": width,
            "physics.teleporters": 2,
            "physics.generators": 2,
            "physics.purifiers": 1,
        },
    )
    return ScenarioSpec.from_dict(data, name="alloc_contention")


def _random_pairs(count, width, seed=PAIR_SEED):
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        source = Coordinate(rng.randrange(width), rng.randrange(width))
        dest = Coordinate(rng.randrange(width), rng.randrange(width))
        if source != dest:
            pairs.append((source, dest))
    return pairs


def _schedule_all(machine, engine, transport, pairs):
    for qubit, (source, dest) in enumerate(pairs):
        plan = machine.planner.plan(source, dest)
        planned = PlannedCommunication(
            request=CommRequest(source=source, dest=dest, qubit=qubit), plan=plan
        )
        engine.schedule(float(qubit), lambda p=planned: transport.start(p, lambda: None))


def _start_storm(allocator, pairs):
    """Dispatch exactly the ``len(pairs)`` start events; return wall + state.

    The storm is the allocator-bound regime: every start triggers a full
    reallocation over all flows admitted so far.  State is captured as the
    exact per-flow rate map and per-resource load map for bitwise comparison.
    """
    machine = build_machine(_contention_spec())
    engine = SimulationEngine()
    transport = FlowTransport(engine, machine, allocator=allocator)
    _schedule_all(machine, engine, transport, pairs)
    start = time.perf_counter()
    for _ in range(len(pairs)):
        assert engine.step()
    wall = time.perf_counter() - start
    rates = {flow_id: flow.rate for flow_id, flow in transport._flows.items()}
    if transport._pack is not None:
        rates = {flow_id: transport._pack.rate_of(flow_id) for flow_id in rates}
    return wall, transport.active_flows, rates, transport.resource_loads()


def test_vectorized_speedup_at_1000_concurrent_flows():
    pairs = _random_pairs(FLOW_COUNT, CONTENTION_GRID)
    walls = {}
    states = {}
    for allocator in ("incremental", "vectorized"):
        wall, active, rates, loads = _start_storm(allocator, pairs)
        assert active == FLOW_COUNT
        walls[allocator] = wall
        states[allocator] = (rates, loads)
    speedup = walls["incremental"] / walls["vectorized"]
    print(
        f"\n1000-flow start storm ({CONTENTION_GRID}x{CONTENTION_GRID} mesh, 2/2/1):\n"
        f"  incremental: {walls['incremental']:7.2f}s\n"
        f"  vectorized : {walls['vectorized']:7.2f}s\n"
        f"  speedup    : {speedup:7.1f}x"
    )
    # Bitwise state parity over all 1000 concurrent flows: same rates, same
    # per-resource loads, bit for bit.
    assert states["vectorized"][0] == states["incremental"][0]
    assert states["vectorized"][1] == states["incremental"][1]
    assert speedup >= REQUIRED_VECTORIZED_SPEEDUP
    _maybe_emit(walls, speedup)


def test_full_run_bitwise_parity_at_200_flows():
    """Start *and* completion storms: identical makespan and channel records."""
    pairs = _random_pairs(PARITY_FLOW_COUNT, CONTENTION_GRID)
    finals = {}
    for allocator in ("incremental", "vectorized"):
        machine = build_machine(_contention_spec())
        engine = SimulationEngine()
        transport = FlowTransport(engine, machine, allocator=allocator)
        _schedule_all(machine, engine, transport, pairs)
        engine.run()
        records = [tuple(sorted(vars(r).items())) for r in transport.records]
        finals[allocator] = (engine.now, records)
        assert transport.active_flows == 0
        assert len(records) == PARITY_FLOW_COUNT
    assert finals["vectorized"][0] == finals["incremental"][0]  # bitwise
    assert finals["vectorized"][1] == finals["incremental"][1]
    print(f"\n200-flow full run: makespan={finals['vectorized'][0]:.3f} us (bitwise equal)")


def _maybe_emit(walls, speedup):
    """Emit the trajectory payload when CI asks for it (BENCH_ALLOC_OUT)."""
    out = os.environ.get("BENCH_ALLOC_OUT")
    if not out:
        return
    write_bench_file(out, allocator_payload(walls, speedup))
    print(f"  payload    : {out}")


def allocator_payload(walls, speedup):
    """The flat bench record for the allocator-scaling gate.

    ``bench_payload`` attaches the process-global warm-start counters; the
    two ``build_machine`` calls above share one structural entry, so the
    payload demonstrates cross-run warm-start hits alongside the speedup.
    """
    record = {
        "scenario": "alloc_contention_1k",
        "flows": FLOW_COUNT,
        "grid": CONTENTION_GRID,
        "wall_time_s": walls["vectorized"],
        "incremental_wall_time_s": walls["incremental"],
        "vectorized_speedup": speedup,
    }
    return bench_payload([record])


def test_allocator_payload_records_speedup_and_warm_start(tmp_path):
    """The payload writer is deterministic plumbing — cover it without the storm."""
    payload = allocator_payload({"incremental": 10.0, "vectorized": 1.0}, 10.0)
    assert payload["scenarios"][0]["vectorized_speedup"] == 10.0
    assert set(payload["warm_start"]) == {"hits", "misses", "entries"}
    path = write_bench_file(str(tmp_path / "BENCH_test_alloc.json"), payload)
    assert os.path.exists(path)
