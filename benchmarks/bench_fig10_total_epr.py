"""Figure 10: total EPR pairs consumed vs distance per purification placement."""

from repro.analysis.fig10 import figure10


def test_figure10_total_epr_pairs(benchmark):
    figure = benchmark(figure10)
    print("\n" + figure.render())
    after_twice = figure.get("DEJMPS protocol twice after each teleport")
    after_once = figure.get("DEJMPS protocol once after each teleport")
    end_only = figure.get("DEJMPS protocol only at end")
    wire_once = figure.get("DEJMPS protocol once before teleport")
    # Shape claim 1: purifying after every teleport is by far the most
    # expensive and grows (super-)exponentially with distance.
    assert after_once.y[-1] > 100 * end_only.y[-1]
    assert after_twice.y[-1] > after_once.y[-1]
    assert after_once.y[-1] / after_once.y[0] > 1e3
    # Shape claim 2: endpoint-only and virtual-wire placements stay within a
    # small factor of each other and grow roughly linearly with distance.
    assert 0.1 < wire_once.y[-1] / end_only.y[-1] < 10
    assert end_only.y[-1] / end_only.y[0] < 100
    # Shape claim 3: at the simulated machine's distances the endpoint-only
    # scheme needs on the order of hundreds of pairs in total.
    assert 50 <= end_only.y_at(30) <= 5000
