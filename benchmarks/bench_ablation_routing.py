"""Ablation A1: dimension-order routing direction and layout contention.

The paper's router fixes XY dimension-order routing (Section 3.2).  This
ablation measures how much link/node load imbalance that choice creates for
the QFT traffic under both layouts, and confirms that XY and YX are mirror
images (so the choice is arbitrary, as the paper implies).
"""

from repro.network.layout import HomeBaseLayout, MobileQubitLayout
from repro.network.routing import DimensionOrder, dimension_order_route, link_load, node_load
from repro.network.topology import square_mesh
from repro.workloads.qft import qft_pairs


def _qft_paths(layout_cls, order, side=8):
    topology = square_mesh(side)
    layout = layout_cls(topology, side * side)
    paths = []
    for a, b in qft_pairs(side * side):
        for request in layout.communications_for(a, b):
            if not request.is_local:
                paths.append(dimension_order_route(request.source, request.dest, order=order))
    return paths


def test_routing_order_and_layout_contention(benchmark):
    def run():
        results = {}
        for layout_cls in (HomeBaseLayout, MobileQubitLayout):
            paths = _qft_paths(layout_cls, DimensionOrder.XY)
            loads = link_load(paths)
            nodes = node_load(paths)
            results[layout_cls.name] = (
                len(paths),
                sum(p.hops for p in paths) / len(paths),
                max(loads.values()),
                sum(loads.values()) / len(loads),
                max(nodes.values()),
            )
        return results

    results = benchmark(run)
    print("\n layout       | paths | avg hops | max link load | mean link load | max node load")
    for name, (count, hops, max_link, mean_link, max_node) in results.items():
        print(
            f" {name:12s} | {count:5d} | {hops:8.2f} | {max_link:13d} | {mean_link:14.1f} | {max_node:8d}"
        )
    home = results["home_base"]
    mobile = results["mobile_qubit"]
    # Home Base traffic travels much farther and concentrates more load on the
    # busiest router, which is why it is teleporter-bandwidth bound (Figure 16).
    assert home[1] > 2 * mobile[1]
    assert home[4] > mobile[4]


def test_xy_and_yx_are_mirror_images(benchmark):
    def run():
        xy = _qft_paths(HomeBaseLayout, DimensionOrder.XY, side=6)
        yx = _qft_paths(HomeBaseLayout, DimensionOrder.YX, side=6)
        return xy, yx

    xy, yx = benchmark(run)
    assert sum(p.hops for p in xy) == sum(p.hops for p in yx)
    assert max(link_load(xy).values()) == max(link_load(yx).values())
