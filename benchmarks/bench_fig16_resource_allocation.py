"""Figure 16: QFT runtime vs interconnect resource allocation.

The paper runs a 16x16 grid (256 logical qubits); that takes tens of minutes
in this simulator, so the benchmark defaults to a 6x6 grid, which exhibits the
same contention behaviour.  Set ``REPRO_FIG16_SIDE=16`` in the environment to
run the paper-scale configuration.
"""

import os

from repro.analysis.fig16 import figure16

GRID_SIDE = int(os.environ.get("REPRO_FIG16_SIDE", "6"))
RATIOS = (1, 4, 8)


def test_figure16_resource_allocation(benchmark):
    def run():
        return figure16(grid_side=GRID_SIDE, ratios=RATIOS, baseline_count=1024)

    figure, points = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + figure.render())
    for point in points:
        util = point.result.resource_utilisation
        print(
            f"  {point.layout:13s} ratio={point.ratio} {point.allocation.label:18s} "
            f"norm={point.normalised_runtime:7.2f} "
            f"purifier_util={util.get('purifier', 0):.2f} "
            f"teleporter_util={util.get('teleporter_x', 0):.2f}"
        )
    home = figure.get("home_base")
    mobile = figure.get("mobile_qubit")
    # Shape claim 1: every constrained configuration is slower than the
    # effectively unlimited baseline.
    assert all(v >= 1.0 for v in home.y) and all(v >= 1.0 for v in mobile.y)
    # Shape claim 2 (the paper's headline): starving the purifiers (t=g=8p)
    # hurts the Mobile Qubit layout more than the Home Base layout, relative
    # to their balanced configurations.
    home_slowdown = home.y_at(8) / home.y_at(1)
    mobile_slowdown = mobile.y_at(8) / mobile.y_at(1)
    print(f"\nSlowdown 8p vs 1p: home_base={home_slowdown:.2f}, mobile={mobile_slowdown:.2f}")
    assert mobile_slowdown > home_slowdown
    # Shape claim 3: the Mobile Qubit layout is the faster one in absolute
    # terms for the QFT (its walk pattern is mostly nearest-neighbour).
    home_abs = [p.result.makespan_us for p in points if p.layout == "home_base" and p.ratio == 4]
    mobile_abs = [p.result.makespan_us for p in points if p.layout == "mobile_qubit" and p.ratio == 4]
    assert mobile_abs[0] < home_abs[0]
