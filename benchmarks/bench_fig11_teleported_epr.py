"""Figure 11: EPR pairs teleported through the channel vs distance."""

from repro.analysis.fig11 import figure11


def test_figure11_teleported_epr_pairs(benchmark):
    figure = benchmark(figure11)
    print("\n" + figure.render())
    after_once = figure.get("DEJMPS protocol once after each teleport")
    end_only = figure.get("DEJMPS protocol only at end")
    wire_once = figure.get("DEJMPS protocol once before teleport")
    wire_twice = figure.get("DEJMPS protocol twice before teleport")
    # Shape claim 1 (paper ordering): after-teleport >> endpoint-only >= before-teleport.
    assert after_once.y[-1] > 100 * end_only.y[-1]
    assert wire_once.y[-1] <= end_only.y[-1] * 1.05
    assert wire_twice.y[-1] <= wire_once.y[-1] * 1.05
    # Shape claim 2: the channel traffic of the endpoint-only scheme is tens
    # of pairs per good pair at the paper's simulated distances (2^3 with yield).
    assert 4 <= end_only.y_at(30) <= 50
    # Shape claim 3: virtual-wire purification reduces strain on the endpoint
    # purifiers (fewer pairs arriving per good pair).
    assert wire_twice.y_at(30) < end_only.y_at(30)
