"""Figure 9: EPR error vs number of chained teleportations."""

from repro.analysis.fig9 import error_amplification, figure9
from repro.physics.constants import THRESHOLD_ERROR


def test_figure9_chained_teleportation_error(benchmark):
    figure = benchmark(figure9)
    print("\n" + figure.render())
    # Shape claim 1: error grows monotonically with hop count.
    for label in figure.labels:
        if label != "threshold error":
            assert figure.get(label).is_monotonic_increasing()
    # Shape claim 2: the 1e-4 curve crosses the threshold within a few hops,
    # the 1e-8 curve stays below it for the whole plotted range's first half.
    worst = figure.get("1e-04 initial error")
    best = figure.get("1e-08 initial error")
    assert worst.y_at(10) > THRESHOLD_ERROR
    assert best.y_at(5) < THRESHOLD_ERROR
    # Shape claim 3: the paper's "factor of 100" amplification at 64 hops.
    amplification = error_amplification(1e-4, 64)
    print(f"\nError amplification after 64 hops (1e-4 initial): {amplification:.0f}x")
    assert 30 <= amplification <= 150


def test_figure9_purification_is_needed_for_long_channels(benchmark):
    """Even good initial pairs violate the threshold over a 32x32 logical grid."""

    def run():
        return figure9(max_hops=64)

    figure = benchmark(run)
    series = figure.get("1e-05 initial error")
    assert series.y_at(64) > THRESHOLD_ERROR
