"""Ablation A2: queue purifier depth and hardware organisation (Section 5.1).

Compares the queue purifier against the naive tree implementation (hardware
units needed) and sweeps the tree depth to show the latency/throughput trade
the paper describes, using both the closed-form model and the event-driven
purifier.
"""

from repro.physics.parameters import IonTrapParameters
from repro.sim.engine import SimulationEngine
from repro.sim.qpurifier import QueuePurifier, QueuePurifierModel


def test_queue_purifier_depth_sweep(benchmark):
    def run():
        rows = []
        for depth in (1, 2, 3, 4):
            model = QueuePurifierModel(units=1, depth=depth)
            rows.append(
                (
                    depth,
                    model.raw_pairs_per_good_pair,
                    model.rounds_per_good_pair,
                    model.good_pair_period_us,
                    model.hardware_units_naive_tree(),
                )
            )
        return rows

    rows = benchmark(run)
    print("\n depth | raw pairs | rounds | period (us) | naive tree units")
    for depth, raw, rounds, period, naive in rows:
        print(f" {depth:5d} | {raw:9.1f} | {rounds:6.1f} | {period:11.1f} | {naive:4d} (queue: {depth})")
    # Exponential raw-pair and round cost per extra depth level.
    assert rows[3][1] == 2 * rows[2][1]
    # The queue purifier needs depth units; the naive tree needs 2^depth - 1.
    assert rows[3][4] == 15


def test_event_driven_purifier_matches_model_throughput(benchmark):
    params = IonTrapParameters.default()

    def run():
        engine = SimulationEngine()
        purifier = QueuePurifier(engine, units=2, depth=3, params=params)
        for _ in range(8 * 20):
            purifier.accept_raw_pair()
        engine.run()
        return engine.now, purifier.good_pairs_produced

    elapsed, good_pairs = benchmark(run)
    model = QueuePurifierModel(units=2, depth=3, round_time_us=params.times.purify_round(0.0))
    measured_period = elapsed / good_pairs
    print(
        f"\nEvent-driven period: {measured_period:.1f} us/good pair; "
        f"closed-form: {model.good_pair_period_us:.1f} us/good pair"
    )
    assert good_pairs == 20
    assert 0.8 * model.good_pair_period_us <= measured_period <= 1.5 * model.good_pair_period_us
