"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures, prints the
reproduced rows/series (so ``pytest benchmarks/ --benchmark-only -s`` doubles
as the reproduction report) and asserts the qualitative shape the paper
claims.  Timing is measured by pytest-benchmark.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
