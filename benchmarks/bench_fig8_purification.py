"""Figure 8: purification error vs rounds, DEJMPS vs BBPSSW."""

from repro.analysis.fig8 import figure8, rounds_to_converge


def test_figure8_purification_protocols(benchmark):
    figure = benchmark(figure8)
    print("\n" + figure.render())
    # Shape claim 1: DEJMPS reaches a lower error floor than BBPSSW.
    for fidelity in (0.99, 0.999, 0.9999):
        dejmps = figure.get(f"DEJMPS protocol, initial fidelity={fidelity}")
        bbpssw = figure.get(f"BBPSSW protocol, initial fidelity={fidelity}")
        assert min(dejmps.y) < min(bbpssw.y)
        # Shape claim 2: after 5 rounds DEJMPS is already far ahead.
        assert dejmps.y[5] < bbpssw.y[5]
    # Shape claim 3: BBPSSW needs ~5-10x more rounds to converge.
    ratio = rounds_to_converge("bbpssw", 0.99) / max(rounds_to_converge("dejmps", 0.99), 1)
    print(f"\nBBPSSW/DEJMPS convergence-round ratio at F0=0.99: {ratio:.1f}x")
    assert ratio >= 4


def test_figure8_floor_set_by_operation_errors(benchmark):
    from repro.physics.parameters import IonTrapParameters

    def run():
        return figure8(IonTrapParameters.uniform_error(1e-6), max_rounds=15)

    degraded = benchmark(run)
    baseline = figure8(max_rounds=15)
    label = "DEJMPS protocol, initial fidelity=0.999"
    assert min(degraded.get(label).y) > min(baseline.get(label).y)
