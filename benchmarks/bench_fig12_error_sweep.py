"""Figure 12: EPR pairs teleported vs uniform operation error rate."""

import math

from repro.analysis.fig12 import breakdown_error_rate, figure12


def test_figure12_operation_error_sensitivity(benchmark):
    figure = benchmark(figure12)
    print("\n" + figure.render())
    # Shape claim 1: every placement becomes infeasible at 1e-4 and all of
    # them break down at (roughly) the same error rate, near 1e-5.
    for label in figure.labels:
        series = figure.get(label)
        assert math.isinf(series.y[-1])
        assert math.isfinite(series.y_at(1e-7))
    breakdown = breakdown_error_rate()
    print(f"\nBreakdown error rate (endpoint-only placement): {breakdown:.1e}")
    assert 3e-6 <= breakdown <= 1e-4
    # Shape claim 2: within the working regime resources vary by roughly two
    # orders of magnitude across the four-decade error sweep.
    end_only = figure.get("DEJMPS protocol only at end")
    finite = end_only.finite_y
    assert 10 <= max(finite) / min(finite) <= 1e4


def test_figure12_breakdown_common_to_all_placements(benchmark):
    def run():
        return figure12(error_rates=[1e-6, 1e-5, 3e-5, 1e-4], distance_hops=32)

    figure = benchmark(run)
    # All placements stop working within the same decade (the paper notes the
    # breakdown is set by the protocol's max achievable fidelity, not the
    # incoming pair fidelity).
    first_infeasible = []
    for label in figure.labels:
        series = figure.get(label)
        for x, y in zip(series.x, series.y):
            if math.isinf(y):
                first_infeasible.append(x)
                break
    assert max(first_infeasible) / min(first_infeasible) <= 30
