"""Ablation A3: purification protocol choice in the end-to-end budget.

The paper argues (Section 4.7) that the BBPSSW protocol would need orders of
magnitude more EPR pairs than DEJMPS, which is why all its budget analysis
uses DEJMPS.  This ablation quantifies that decision with the full budget
model rather than the bare recurrence.
"""

from repro.core.budget import EPRBudgetModel
from repro.physics.parameters import IonTrapParameters


def test_protocol_choice_ablation(benchmark):
    params = IonTrapParameters.default()

    def run():
        results = {}
        for protocol in ("dejmps", "bbpssw"):
            model = EPRBudgetModel(params, protocol=protocol)
            results[protocol] = {hops: model.budget(hops) for hops in (10, 20, 30)}
        return results

    results = benchmark(run)
    print("\n protocol | hops | rounds | pairs teleported | total pairs")
    for protocol, budgets in results.items():
        for hops, budget in budgets.items():
            print(
                f" {protocol:8s} | {hops:4d} | {budget.endpoint_rounds:6d} | "
                f"{budget.pairs_teleported:16.3g} | {budget.total_pairs:11.3g}"
            )
    for hops in (10, 20, 30):
        dejmps = results["dejmps"][hops]
        bbpssw = results["bbpssw"][hops]
        # BBPSSW needs more purification rounds, hence exponentially more pairs.
        assert bbpssw.endpoint_rounds > dejmps.endpoint_rounds
        assert bbpssw.pairs_teleported > 10 * dejmps.pairs_teleported
