"""Tables 1 and 2 plus the derived text claims (crossover, 392 pairs)."""

from repro.analysis.tables import derived_channel_table, table1, table2


def test_table1_operation_times(benchmark):
    table = benchmark(table1)
    print("\n" + table.render())
    times = dict(zip(table.column("Variable"), table.column("Time (us)")))
    assert times["t_1q"] == 1.0
    assert times["t_2q"] == 20.0
    assert times["t_mv"] == 0.2
    assert times["t_ms"] == 100.0
    # Derived aggregate operations land on the paper's ~122/121 us values.
    assert 120.0 <= times["t_tprt"] <= 124.0
    assert 119.0 <= times["t_prfy"] <= 123.0


def test_table2_error_probabilities(benchmark):
    table = benchmark(table2)
    print("\n" + table.render())
    errors = dict(zip(table.column("Variable"), table.column("Error probability")))
    assert errors == {"p_1q": 1e-8, "p_2q": 1e-7, "p_mv": 1e-6, "p_ms": 1e-8}


def test_derived_claims_crossover_and_pairs(benchmark):
    table = benchmark(derived_channel_table)
    print("\n" + table.render())
    values = dict(zip(table.column("Quantity"), table.column("Value")))
    assert 550 <= values["Ballistic/teleport latency crossover"] <= 650
    assert values["Corner-to-corner ballistic error (1000x1000 grid)"] > 1e-3
    assert values["EPR pairs per logical communication (2^rounds x 49)"] == 392
