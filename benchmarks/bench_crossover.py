"""Text claim (Section 4.6): ballistic vs teleportation latency crossover."""

from repro.core.crossover import crossover_distance_cells, crossover_series, latency_comparison


def test_crossover_near_600_cells(benchmark):
    crossover = benchmark(crossover_distance_cells)
    print(f"\nLatency crossover: {crossover} cells (paper: ~600)")
    assert 550 <= crossover <= 650


def test_crossover_series_shape(benchmark):
    series = benchmark(lambda: crossover_series(1200, step=100))
    rows = [
        (c.distance_cells, round(c.ballistic_us, 1), round(c.teleportation_us, 1))
        for c in series
    ]
    print("\n cells | ballistic us | teleport us")
    for cells, ballistic, teleport in rows:
        print(f" {cells:5.0f} | {ballistic:12.1f} | {teleport:11.1f}")
    # Ballistic wins below the crossover, teleportation above it.
    assert not latency_comparison(300).teleportation_faster
    assert latency_comparison(1200).teleportation_faster
