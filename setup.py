"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` works on minimal environments that lack
the ``wheel`` package (PEP 660 editable installs require it).
"""

from setuptools import setup

setup()
