"""Tests for the QFT, MM, ME, Shor and synthetic workload generators."""

import pytest

from repro.errors import SchedulingError
from repro.workloads.modexp import modular_exponentiation_stream
from repro.workloads.modmult import bipartite_pairs, modular_multiplication_stream
from repro.workloads.qft import qft_operation_count, qft_pairs, qft_stream
from repro.workloads.shor import shor_kernel_streams, shor_stream
from repro.workloads.synthetic import (
    all_to_all_stream,
    nearest_neighbour_stream,
    permutation_stream,
    random_stream,
)


class TestQFT:
    def test_operation_count(self):
        assert qft_operation_count(16) == 120
        assert len(qft_stream(16)) == 120
        assert qft_operation_count(256) == 32640

    def test_all_pairs_present_exactly_once(self):
        pairs = qft_pairs(8)
        assert len(pairs) == len(set(pairs)) == 28
        assert all(a < b for a, b in pairs)

    def test_every_qubit_interacts_with_every_other(self):
        stream = qft_stream(6)
        matrix = stream.communication_matrix()
        for i in range(1, 7):
            for j in range(i + 1, 7):
                assert matrix[(i, j)] == 1

    def test_ordering_by_wavefront(self):
        pairs = qft_pairs(6)
        sums = [a + b for a, b in pairs]
        assert sums == sorted(sums)

    def test_critical_path_scales_linearly(self):
        # All-to-all with per-qubit serialisation has a ~2n critical path.
        stream = qft_stream(12)
        assert 2 * 12 - 3 <= stream.critical_path_length() <= 2 * 12

    def test_rejects_single_qubit(self):
        with pytest.raises(SchedulingError):
            qft_stream(1)


class TestModMult:
    def test_bipartite_pairs_cover_product(self):
        pairs = bipartite_pairs([1, 2, 3], [4, 5])
        assert len(pairs) == 6
        assert len(set(pairs)) == 6

    def test_no_intra_register_communication(self):
        stream = modular_multiplication_stream(10)
        for op in stream:
            assert (op.qubit_a <= 5) != (op.qubit_b <= 5)

    def test_rejects_overlapping_sets(self):
        with pytest.raises(SchedulingError):
            bipartite_pairs([1, 2], [2, 3])

    def test_rejects_empty_set(self):
        with pytest.raises(SchedulingError):
            bipartite_pairs([], [1])

    def test_interleaving_gives_parallelism(self):
        stream = modular_multiplication_stream(16)
        assert stream.max_parallelism() >= 4


class TestModExp:
    def test_contains_both_phases(self):
        stream = modular_exponentiation_stream(8, steps=1)
        squaring_ops = [op for op in stream if op.qubit_a <= 4 and op.qubit_b <= 4]
        bipartite_ops = [op for op in stream if (op.qubit_a <= 4) != (op.qubit_b <= 4)]
        assert squaring_ops and bipartite_ops

    def test_steps_multiply_length(self):
        one = modular_exponentiation_stream(8, steps=1)
        two = modular_exponentiation_stream(8, steps=2)
        assert len(two) == 2 * len(one)

    def test_rejects_too_few_qubits(self):
        with pytest.raises(SchedulingError):
            modular_exponentiation_stream(3)

    def test_rejects_zero_steps(self):
        with pytest.raises(SchedulingError):
            modular_exponentiation_stream(8, steps=0)


class TestShor:
    def test_kernels_present(self):
        kernels = shor_kernel_streams(8)
        assert set(kernels) == {"qft", "modexp", "modmult"}

    def test_composed_stream_length(self):
        kernels = shor_kernel_streams(8)
        total = sum(len(s) for s in kernels.values())
        assert len(shor_stream(8)) == total

    def test_composed_stream_name(self):
        assert shor_stream(8).name == "shor_8"


class TestSynthetic:
    def test_all_to_all_matches_qft_pairs(self):
        assert len(all_to_all_stream(10)) == len(qft_stream(10))

    def test_nearest_neighbour_brick_wall(self):
        stream = nearest_neighbour_stream(8, rounds=2)
        assert len(stream) == 2 * 7
        assert all(abs(op.qubit_a - op.qubit_b) == 1 for op in stream)

    def test_permutation_each_qubit_once(self):
        stream = permutation_stream(10, seed=3)
        counts = {}
        for op in stream:
            for qubit in op.qubits:
                counts[qubit] = counts.get(qubit, 0) + 1
        assert all(count == 1 for count in counts.values())

    def test_random_stream_is_deterministic_per_seed(self):
        a = random_stream(10, 20, seed=7)
        b = random_stream(10, 20, seed=7)
        assert [op.qubits for op in a] == [op.qubits for op in b]

    def test_random_stream_respects_qubit_range(self):
        stream = random_stream(5, 50, seed=1)
        assert all(1 <= q <= 5 for op in stream for q in op.qubits)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SchedulingError):
            nearest_neighbour_stream(1)
        with pytest.raises(SchedulingError):
            random_stream(4, 0)
