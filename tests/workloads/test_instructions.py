"""Tests for instruction streams and dependency analysis."""

import pytest

from repro.errors import SchedulingError
from repro.workloads.instructions import InstructionStream, TwoQubitOp


def make_stream(pairs, num_qubits=8, name="test"):
    return InstructionStream.from_pairs(name, num_qubits, pairs)


class TestTwoQubitOp:
    def test_touches(self):
        op = TwoQubitOp(0, 1, 2)
        assert op.touches(1) and op.touches(2) and not op.touches(3)

    def test_rejects_same_qubit(self):
        with pytest.raises(SchedulingError):
            TwoQubitOp(0, 3, 3)

    def test_rejects_zero_index(self):
        with pytest.raises(SchedulingError):
            TwoQubitOp(0, 0, 1)


class TestStreamBasics:
    def test_from_pairs_assigns_indices(self):
        stream = make_stream([(1, 2), (2, 3)])
        assert [op.index for op in stream] == [0, 1]
        assert len(stream) == 2

    def test_qubits_used(self):
        stream = make_stream([(1, 2), (5, 6)])
        assert stream.qubits_used() == {1, 2, 5, 6}

    def test_rejects_out_of_range_qubits(self):
        with pytest.raises(SchedulingError):
            make_stream([(1, 9)], num_qubits=8)

    def test_rejects_single_qubit_machine(self):
        with pytest.raises(SchedulingError):
            InstructionStream("x", 1, [])

    def test_extended_concatenates_and_reindexes(self):
        a = make_stream([(1, 2)])
        b = make_stream([(3, 4)])
        combined = a.extended(b)
        assert len(combined) == 2
        assert combined[1].index == 1
        assert combined[1].qubits == (3, 4)

    def test_communication_matrix(self):
        stream = make_stream([(1, 2), (2, 1), (3, 4)])
        matrix = stream.communication_matrix()
        assert matrix[(1, 2)] == 2
        assert matrix[(3, 4)] == 1

    def test_describe(self):
        assert "2 ops" in make_stream([(1, 2), (3, 4)]).describe()


class TestDependencies:
    def test_independent_ops_have_no_dependencies(self):
        stream = make_stream([(1, 2), (3, 4)])
        deps = stream.dependencies()
        assert deps[0] == set() and deps[1] == set()

    def test_shared_qubit_creates_dependency(self):
        stream = make_stream([(1, 2), (2, 3)])
        assert stream.dependencies()[1] == {0}

    def test_dependency_is_most_recent_toucher(self):
        stream = make_stream([(1, 2), (2, 3), (3, 4)])
        assert stream.dependencies()[2] == {1}

    def test_dependents_inverse_of_dependencies(self):
        stream = make_stream([(1, 2), (2, 3), (1, 4)])
        assert stream.dependents()[0] == {1, 2}

    def test_wavefronts_respect_dependencies(self):
        stream = make_stream([(1, 2), (2, 3), (3, 4), (5, 6)])
        fronts = stream.wavefronts()
        assert [op.qubits for op in fronts[0]] == [(1, 2), (5, 6)]
        assert [op.qubits for op in fronts[1]] == [(2, 3)]
        assert [op.qubits for op in fronts[2]] == [(3, 4)]

    def test_paper_qft_wavefront_listing(self):
        # The paper's example: 1-2, 1-3, (1-4, 2-3), (1-5, 2-4), (1-6, 2-5, 3-4).
        from repro.workloads.qft import qft_stream

        fronts = qft_stream(6).wavefronts()
        as_pairs = [[op.qubits for op in front] for front in fronts[:5]]
        assert as_pairs[0] == [(1, 2)]
        assert as_pairs[1] == [(1, 3)]
        assert as_pairs[2] == [(1, 4), (2, 3)]
        assert as_pairs[3] == [(1, 5), (2, 4)]
        assert as_pairs[4] == [(1, 6), (2, 5), (3, 4)]

    def test_critical_path_and_parallelism(self):
        stream = make_stream([(1, 2), (2, 3), (3, 4), (5, 6)])
        assert stream.critical_path_length() == 3
        assert stream.max_parallelism() == 2
