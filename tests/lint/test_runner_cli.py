"""Runner and CLI behavior, plus the self-check: the tree lints clean."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import LINT_SCHEMA_VERSION, Project, collect_files, lint_file, run_lint
from repro.lint.cli import main as lint_main
from repro.runtime import cli as runtime_cli

ROOT = Path(__file__).resolve().parents[2]

BAD_SIM_SOURCE = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)


def _write_fixture_tree(tmp_path, source=BAD_SIM_SOURCE):
    """A file whose path resolves to a ``repro.sim`` module for the checkers."""
    target = tmp_path / "repro" / "sim" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(source, encoding="utf-8")
    return target


# -- self-check: the repository honours its own contracts ---------------------------


def test_repro_lint_is_clean_on_src():
    report = run_lint([str(ROOT / "src")], root=str(ROOT))
    assert report.files_scanned > 50
    assert report.suppressed >= 1  # the documented bitwise/seed exceptions
    assert report.findings == []
    assert report.clean


# -- file collection ----------------------------------------------------------------


def test_collect_files_sorts_dedups_and_skips_caches(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n", encoding="utf-8")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-310.py").write_text("", encoding="utf-8")
    files = collect_files([str(tmp_path), str(tmp_path / "pkg" / "a.py")])
    assert files == [str(tmp_path / "pkg" / "a.py"), str(tmp_path / "pkg" / "b.py")]


def test_collect_files_rejects_missing_paths(tmp_path):
    with pytest.raises(ConfigurationError):
        collect_files([str(tmp_path / "nowhere")])


# -- runner semantics ---------------------------------------------------------------


def test_run_lint_reports_fixture_findings(tmp_path):
    target = _write_fixture_tree(tmp_path)
    report = run_lint([str(tmp_path)], root=str(ROOT))
    assert [f.rule for f in report.findings] == ["DET001"]
    assert report.findings[0].path == str(target)
    assert not report.clean


def test_run_lint_select_and_ignore_filter_rules(tmp_path):
    _write_fixture_tree(tmp_path)
    selected = run_lint([str(tmp_path)], select=["DET"], root=str(ROOT))
    assert [f.rule for f in selected.findings] == ["DET001"]
    ignored = run_lint([str(tmp_path)], ignore=["DET001"], root=str(ROOT))
    assert ignored.findings == []
    off_target = run_lint([str(tmp_path)], select=["TRC"], root=str(ROOT))
    assert off_target.findings == []


def test_run_lint_rejects_unknown_rule_patterns(tmp_path):
    with pytest.raises(ConfigurationError):
        run_lint([str(tmp_path)], select=["NOPE"], root=str(ROOT))


def test_lint_file_reports_syntax_errors_as_lnt003(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n", encoding="utf-8")
    findings, suppressed = lint_file(str(target), Project(str(ROOT)))
    assert suppressed == 0
    assert [f.rule for f in findings] == ["LNT003"]


# -- CLI ----------------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    _write_fixture_tree(tmp_path)
    assert lint_main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "1 finding(s)" in out

    clean = tmp_path / "repro" / "sim" / "bad.py"
    clean.write_text("def jitter():\n    return 0.5\n", encoding="utf-8")
    assert lint_main(["lint", str(tmp_path)]) == 0
    assert "repro lint: clean" in capsys.readouterr().out

    assert lint_main(["lint", str(tmp_path), "--select", "NOPE"]) == 2


def test_cli_json_output_matches_the_schema(tmp_path, capsys):
    _write_fixture_tree(tmp_path)
    assert lint_main(["lint", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == LINT_SCHEMA_VERSION
    assert payload["files_scanned"] == 1
    assert payload["summary"] == {"DET001": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "DET001"
    assert finding["severity"] == "error"


def test_cli_list_rules_documents_the_catalogue(capsys):
    assert lint_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "TRC004", "SPEC001", "FLT002", "API001", "LNT001"):
        assert rule_id in out


def test_lint_subcommand_is_wired_into_the_repro_cli(tmp_path, capsys):
    _write_fixture_tree(tmp_path)
    assert runtime_cli.main(["lint", str(tmp_path)]) == 1
    assert "DET001" in capsys.readouterr().out
