"""Fixture-snippet tests: each checker fires on bad code and stays quiet on good.

Every test lints a small source fixture *as if* it lived at a chosen dotted
module path (``LintContext.for_source`` takes the module literally), which is
how the package-scoped checkers are driven without touching the real tree.
"""

import textwrap

from repro.lint import LintContext, Project, all_checkers, all_rules


def lint_source(source, *, module, path="fixture.py", project=None):
    """All findings every applicable checker raises on ``source``."""
    context = LintContext.for_source(
        textwrap.dedent(source),
        path=path,
        module=module,
        project=project if project is not None else Project(),
    )
    findings = []
    for checker_cls in all_checkers():
        checker = checker_cls()
        if checker.applies_to(context):
            findings.extend(checker.check(context))
    return findings


def rule_ids(findings):
    return sorted(f.rule for f in findings)


def test_rule_catalogue_has_five_distinct_checkers():
    prefixes = {rule_id[:3] for rule_id in all_rules() if not rule_id.startswith("LNT")}
    assert {"DET", "TRC", "SPE", "FLT", "API"} <= prefixes
    assert len(all_rules()) >= 10


# -- DET: determinism ---------------------------------------------------------------


def test_det001_flags_ambient_randomness_and_from_imports():
    findings = lint_source(
        """
        import random
        from random import randint

        def jitter(base_us):
            return base_us + random.random() + randint(0, 3)
        """,
        module="repro.workloads.traffic",
    )
    assert rule_ids(findings) == ["DET001", "DET001"]


def test_det001_flags_wall_clocks_and_uuid():
    findings = lint_source(
        """
        import time
        import uuid

        def stamp():
            return time.time(), uuid.uuid4()
        """,
        module="repro.sim.engine",
    )
    assert rule_ids(findings) == ["DET001", "DET001"]


def test_det002_flags_set_iteration_in_loops_and_comprehensions():
    findings = lint_source(
        """
        def drain(items):
            pending = set(items)
            for item in pending:
                yield item
            return [x for x in {1, 2} | pending]
        """,
        module="repro.network.router",
    )
    assert rule_ids(findings) == ["DET002", "DET002"]


def test_det002_tracks_annotated_self_attributes_across_methods():
    findings = lint_source(
        """
        from typing import Set

        class Tracker:
            def __init__(self):
                self.dirty: Set[str] = set()

            def flush(self):
                for key in self.dirty:
                    print(key)
        """,
        module="repro.sim.flow_like",
    )
    assert rule_ids(findings) == ["DET002"]


def test_det_clean_on_sorted_iteration_and_substream_rng():
    findings = lint_source(
        """
        def drain(pending):
            for item in sorted(pending):
                yield item

        def draw(rng):
            return rng.substream("traffic").random()
        """,
        module="repro.workloads.traffic",
    )
    assert findings == []


def test_det_does_not_apply_outside_the_sim_packages():
    findings = lint_source(
        """
        import random

        def sample():
            return random.random()
        """,
        module="repro.analysis.report",
    )
    assert findings == []


# -- TRC: trace-record contract -----------------------------------------------------


RECORD_MODULE_BAD = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class TraceRecord:
        kind: str

    @dataclass
    class Mutable(TraceRecord):
        t_us: float

    @dataclass(frozen=True)
    class Unserializable(TraceRecord):
        payload: dict

    RECORD_TYPES = {"mutable": Mutable, "unserializable": Unserializable}

    @dataclass(frozen=True)
    class Unregistered(TraceRecord):
        t_us: float
"""


def test_trc_flags_mutable_unserializable_and_unregistered_records():
    findings = lint_source(RECORD_MODULE_BAD, module="repro.trace.records")
    assert rule_ids(findings) == ["TRC001", "TRC002", "TRC003"]
    by_rule = {f.rule: f.message for f in findings}
    assert "Mutable" in by_rule["TRC001"]
    assert "dict" in by_rule["TRC002"]
    assert "Unregistered" in by_rule["TRC003"]


def test_trc_clean_on_frozen_registered_jsonl_safe_records():
    findings = lint_source(
        """
        from dataclasses import dataclass
        from typing import Optional, Tuple

        @dataclass(frozen=True)
        class TraceRecord:
            kind: str

        @dataclass(frozen=True)
        class ChannelOpened(TraceRecord):
            t_us: float
            path: Tuple[int, ...]
            note: Optional[str] = None

        RECORD_TYPES = {"channel_opened": ChannelOpened}
        """,
        module="repro.trace.records",
    )
    assert findings == []


def test_trc004_flags_untyped_emission_sites():
    project = Project(record_names=["ChannelOpened"], factory_names=["machine_record"])
    findings = lint_source(
        """
        def run(bus, payload):
            bus.emit(payload)
            bus.emit(make_payload())
        """,
        module="repro.sim.engine",
        project=project,
    )
    assert rule_ids(findings) == ["TRC004", "TRC004"]


def test_trc004_accepts_record_classes_and_typed_factories():
    project = Project(record_names=["ChannelOpened"], factory_names=["machine_record"])
    findings = lint_source(
        """
        def run(bus, machine):
            bus.emit(ChannelOpened(t_us=0.0))
            bus.emit(machine_record(machine, workload="smoke"))
        """,
        module="repro.sim.engine",
        project=project,
    )
    assert findings == []


# -- SPEC: spec-field coverage ------------------------------------------------------


def test_spec001_flags_fields_missing_from_from_dict():
    findings = lint_source(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class NoiseSpec:
            target: float
            hidden_knob: int = 0

            @classmethod
            def from_dict(cls, payload):
                return cls(target=float(payload["target"]))
        """,
        module="repro.scenarios.noise_like",
    )
    assert rule_ids(findings) == ["SPEC001"]
    assert "hidden_knob" in findings[0].message


def test_spec001_resolves_module_tuple_constants():
    findings = lint_source(
        """
        from dataclasses import dataclass

        KEYS = ("target", "hidden_knob")

        @dataclass(frozen=True)
        class NoiseSpec:
            target: float
            hidden_knob: int = 0

            @classmethod
            def from_dict(cls, payload):
                for key in KEYS:
                    payload[key]
                return cls(**payload)
        """,
        module="repro.scenarios.noise_like",
    )
    assert findings == []


def test_spec001_flags_spec_dataclasses_without_from_dict():
    findings = lint_source(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class OrphanSpec:
            target: float
        """,
        module="repro.scenarios.noise_like",
    )
    assert rule_ids(findings) == ["SPEC001"]


def test_spec002_flags_unconditional_non_cosmetic_pops():
    findings = lint_source(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class NoiseSpec:
            name: str
            target: float

            @classmethod
            def from_dict(cls, payload):
                return cls(name=payload["name"], target=payload["target"])

            def canonical_dict(self):
                payload = {"name": self.name, "target": self.target}
                payload.pop("name")
                payload.pop("target")
                return payload
        """,
        module="repro.scenarios.noise_like",
    )
    assert rule_ids(findings) == ["SPEC002"]
    assert "'target'" in findings[0].message


def test_spec002_allows_guarded_pops_of_unset_sections():
    findings = lint_source(
        """
        from dataclasses import dataclass
        from typing import Optional

        @dataclass(frozen=True)
        class TopSpec:
            noise: Optional[float] = None

            @classmethod
            def from_dict(cls, payload):
                return cls(noise=payload.get("noise"))

            def canonical_dict(self):
                payload = {"noise": self.noise}
                if self.noise is None:
                    payload.pop("noise")
                return payload
        """,
        module="repro.scenarios.noise_like",
    )
    assert findings == []


# -- FLT: float discipline ----------------------------------------------------------


def test_flt001_flags_bare_equality_on_float_quantities():
    findings = lint_source(
        """
        def same(makespan_us, expected_us, value):
            return makespan_us == expected_us or value != 1.0
        """,
        module="repro.verify.parity",
    )
    assert rule_ids(findings) == ["FLT001", "FLT001"]


def test_flt001_clean_on_toleranced_comparison():
    findings = lint_source(
        """
        import math

        def same(makespan_us, expected_us):
            return math.isclose(makespan_us, expected_us, rel_tol=1e-9)
        """,
        module="repro.verify.parity",
    )
    assert findings == []


def test_flt002_flags_validators_without_a_finiteness_gate():
    findings = lint_source(
        """
        def validate_fidelity(fidelity: float) -> float:
            if not 0.0 <= fidelity <= 1.0:
                raise ValueError(fidelity)
            return fidelity
        """,
        module="repro.physics.states_like",
    )
    assert rule_ids(findings) == ["FLT002"]


def test_flt002_clean_when_validator_rejects_non_finite():
    findings = lint_source(
        """
        import math

        def validate_fidelity(fidelity: float) -> float:
            if not math.isfinite(fidelity):
                raise ValueError(fidelity)
            if not 0.0 <= fidelity <= 1.0:
                raise ValueError(fidelity)
            return fidelity
        """,
        module="repro.physics.states_like",
    )
    assert findings == []


# -- API: layering ------------------------------------------------------------------


def test_api001_flags_upward_imports_absolute_and_relative():
    findings = lint_source(
        """
        import repro.runtime.cli
        from repro.scenarios.spec import ScenarioSpec
        from ..verify import harness
        """,
        module="repro.sim.transport",
        path="src/repro/sim/transport.py",
    )
    assert rule_ids(findings) == ["API001", "API001", "API001"]


def test_api001_resolves_relative_imports_from_a_package_init():
    findings = lint_source(
        """
        from ..analysis import report
        """,
        module="repro.sim",
        path="src/repro/sim/__init__.py",
    )
    assert rule_ids(findings) == ["API001"]


def test_api001_clean_on_sideways_and_downward_imports():
    findings = lint_source(
        """
        from ..trace.bus import TraceBus
        from .flow import FlowNetwork
        from ..network.routing import DimensionOrder
        """,
        module="repro.sim.transport",
        path="src/repro/sim/transport.py",
    )
    assert findings == []
