"""Suppression semantics: justified markers silence, bad markers are findings."""

from repro.lint import Finding, apply_suppressions, parse_suppressions


def _finding(rule, line, path="mod.py"):
    return Finding(rule=rule, message="m", path=path, line=line)


def test_trailing_marker_suppresses_its_own_line():
    lines = ["x = pick()  # lint-ok: DET001 -- seeded upstream by the harness"]
    suppressions = parse_suppressions("mod.py", lines)
    active, suppressed = apply_suppressions([_finding("DET001", 1)], suppressions)
    assert active == []
    assert suppressed == 1


def test_comment_line_marker_covers_the_next_code_line():
    lines = [
        "# lint-ok: FLT001 -- allocator parity is a bitwise contract",
        "if a.makespan_us != b.makespan_us:",
        "    raise RuntimeError",
    ]
    suppressions = parse_suppressions("mod.py", lines)
    assert suppressions[0].covers == (1, 2)
    active, suppressed = apply_suppressions([_finding("FLT001", 2)], suppressions)
    assert active == []
    assert suppressed == 1


def test_justification_may_wrap_over_several_comment_lines():
    lines = [
        "# lint-ok: DET001 -- the substream service is the one sanctioned",
        "# consumer of the stdlib RNG; everything else draws from it.",
        "return random.Random(seed)",
    ]
    suppressions = parse_suppressions("mod.py", lines)
    assert suppressions[0].covers == (1, 3)
    active, suppressed = apply_suppressions([_finding("DET001", 3)], suppressions)
    assert active == []
    assert suppressed == 1


def test_marker_without_justification_keeps_the_finding_and_adds_lnt001():
    lines = ["x = pick()  # lint-ok: DET001"]
    suppressions = parse_suppressions("mod.py", lines)
    active, suppressed = apply_suppressions([_finding("DET001", 1)], suppressions)
    assert suppressed == 0
    assert sorted(f.rule for f in active) == ["DET001", "LNT001"]


def test_stale_justified_marker_is_lnt002():
    lines = ["x = 1  # lint-ok: TRC004 -- was needed before the refactor"]
    suppressions = parse_suppressions("mod.py", lines)
    active, suppressed = apply_suppressions([], suppressions)
    assert suppressed == 0
    assert [f.rule for f in active] == ["LNT002"]
    assert "TRC004" in active[0].message


def test_marker_only_covers_its_named_rules():
    lines = ["x = pick()  # lint-ok: DET001 -- justified for DET001 only"]
    suppressions = parse_suppressions("mod.py", lines)
    active, suppressed = apply_suppressions(
        [_finding("DET001", 1), _finding("FLT001", 1)], suppressions
    )
    assert suppressed == 1
    assert [f.rule for f in active] == ["FLT001"]


def test_one_marker_may_name_several_rules():
    lines = ["x = pick()  # lint-ok: DET001, DET002 -- both excused at this site"]
    suppressions = parse_suppressions("mod.py", lines)
    assert suppressions[0].rules == ("DET001", "DET002")
    active, suppressed = apply_suppressions(
        [_finding("DET001", 1), _finding("DET002", 1)], suppressions
    )
    assert suppressed == 2
    assert active == []


def test_marker_on_a_different_line_does_not_suppress():
    lines = [
        "x = pick()  # lint-ok: DET001 -- excuses line one only",
        "y = pick()",
    ]
    suppressions = parse_suppressions("mod.py", lines)
    active, suppressed = apply_suppressions([_finding("DET001", 2)], suppressions)
    assert suppressed == 0
    assert sorted(f.rule for f in active) == ["DET001", "LNT002"]
