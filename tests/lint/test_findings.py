"""Finding and payload semantics: validation plus the exact JSON round trip."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    LINT_SCHEMA_VERSION,
    Finding,
    Rule,
    findings_from_payload,
    findings_payload,
)


def _sample_findings():
    return [
        Finding(rule="DET002", message="set loop", path="src/a.py", line=4, col=8),
        Finding(rule="FLT001", message="bare ==", path="src/b.py", line=12),
        Finding(
            rule="TRC004",
            message="untyped emit",
            path="src/b.py",
            line=30,
            col=4,
            severity="error",
        ),
    ]


def test_rule_ids_are_validated():
    Rule("DET001", "ok")
    Rule("SPEC001", "four-letter prefixes are fine")
    for bad in ("det001", "DET1", "D001", "TOOLONG001", "DET0001"):
        with pytest.raises(ConfigurationError):
            Rule(bad, "bad id")


def test_finding_severity_is_validated():
    with pytest.raises(ConfigurationError):
        Finding(rule="DET001", message="m", path="a.py", line=1, severity="fatal")


def test_finding_str_is_location_rule_message():
    finding = Finding(rule="DET002", message="set loop", path="src/a.py", line=4, col=8)
    assert str(finding) == "src/a.py:4:8: DET002 set loop"


def test_finding_payload_round_trip_is_exact():
    for finding in _sample_findings():
        assert Finding.from_payload(finding.to_payload()) == finding


def test_finding_from_payload_rejects_unknown_and_missing_keys():
    payload = _sample_findings()[0].to_payload()
    with pytest.raises(ConfigurationError):
        Finding.from_payload({**payload, "extra": 1})
    incomplete = dict(payload)
    del incomplete["line"]
    with pytest.raises(ConfigurationError):
        Finding.from_payload(incomplete)
    with pytest.raises(ConfigurationError):
        Finding.from_payload("not a dict")


def test_findings_payload_document_shape_and_round_trip():
    findings = _sample_findings()
    payload = findings_payload(findings, files_scanned=7, suppressed=2)
    assert payload["schema"] == LINT_SCHEMA_VERSION
    assert payload["files_scanned"] == 7
    assert payload["suppressed"] == 2
    assert payload["summary"] == {"DET002": 1, "FLT001": 1, "TRC004": 1}
    # The document is JSON-safe and the findings list survives serialization.
    rebuilt = findings_from_payload(json.loads(json.dumps(payload)))
    assert rebuilt == findings


def test_findings_from_payload_rejects_malformed_documents():
    with pytest.raises(ConfigurationError):
        findings_from_payload({"schema": LINT_SCHEMA_VERSION})
    with pytest.raises(ConfigurationError):
        findings_from_payload({"findings": "not a list"})
