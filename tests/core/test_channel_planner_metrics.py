"""Tests for QuantumChannel, ChannelPlanner and the six-metric report."""

import pytest

from repro.core.channel import QuantumChannel
from repro.core.logical import STEANE_LEVEL_1
from repro.core.metrics import evaluate_channel_metrics
from repro.core.placement import virtual_wire
from repro.core.planner import ChannelPlanner
from repro.errors import ConfigurationError, RoutingError
from repro.network.geometry import Coordinate
from repro.network.topology import square_mesh
from repro.physics.parameters import IonTrapParameters


@pytest.fixture(scope="module")
def params():
    return IonTrapParameters.default()


class TestQuantumChannel:
    def test_build_produces_feasible_report(self, params):
        report = QuantumChannel(20, params).build()
        assert report.feasible
        assert report.hops == 20
        assert report.distance_cells == 20 * params.cells_per_hop

    def test_data_fidelity_above_threshold_after_teleport(self, params):
        report = QuantumChannel(30, params).build(data_fidelity_in=1.0)
        # One teleportation through an endpoint-purified pair keeps the data
        # qubit within the fault-tolerance budget.
        assert 1 - report.data_fidelity_out <= 2 * params.threshold_error

    def test_pairs_per_logical_communication_scales_with_encoding(self, params):
        level2 = QuantumChannel(20, params).build()
        level1 = QuantumChannel(20, params, encoding=STEANE_LEVEL_1).build()
        ratio = level2.pairs_per_logical_communication / level1.pairs_per_logical_communication
        assert ratio == pytest.approx(7.0)

    def test_ballistic_distribution_option(self, params):
        report = QuantumChannel(5, params, distribution="ballistic").build()
        assert report.distribution.teleport_operations == 0

    def test_placement_option_respected(self, params):
        report = QuantumChannel(20, params, placement=virtual_wire(1)).build()
        assert report.placement.virtual_wire_rounds == 1

    def test_describe_contains_key_fields(self, params):
        text = QuantumChannel(10, params).build().describe()
        assert "pairs teleported" in text
        assert "setup latency" in text

    def test_rejects_zero_hops(self, params):
        with pytest.raises(ConfigurationError):
            QuantumChannel(0, params)

    def test_rejects_unknown_distribution(self, params):
        with pytest.raises(ConfigurationError):
            QuantumChannel(5, params, distribution="postal")


class TestChannelMetrics:
    def test_metrics_are_consistent_with_report(self, params):
        report = QuantumChannel(20, params).build()
        metrics = evaluate_channel_metrics(report, teleporters_per_node=4)
        assert metrics.error_rate == pytest.approx(report.budget.arrival_error)
        assert metrics.epr_pair_count == pytest.approx(report.pairs_per_logical_communication)
        assert metrics.latency_us == pytest.approx(report.setup_latency_us)
        assert metrics.router_storage_cells == 16
        assert metrics.endpoint_purifier_units == report.budget.endpoint_rounds
        assert metrics.classical_messages > 0

    def test_describe(self, params):
        metrics = evaluate_channel_metrics(QuantumChannel(10, params).build())
        assert "latency" in metrics.describe()


class TestChannelPlanner:
    def test_plan_uses_manhattan_distance(self, params):
        planner = ChannelPlanner(square_mesh(16), params)
        plan = planner.plan(Coordinate(0, 0), Coordinate(5, 7))
        assert plan.hops == 12
        assert plan.path.source == Coordinate(0, 0)
        assert plan.path.destination == Coordinate(5, 7)

    def test_generator_is_near_the_middle(self, params):
        planner = ChannelPlanner(square_mesh(16), params)
        plan = planner.plan(Coordinate(0, 0), Coordinate(10, 0))
        assert plan.generator_node == Coordinate(5, 0)

    def test_budget_cached_per_distance(self, params):
        planner = ChannelPlanner(square_mesh(16), params)
        a = planner.plan(Coordinate(0, 0), Coordinate(3, 3))
        b = planner.plan(Coordinate(10, 10), Coordinate(13, 13))
        assert a.budget is b.budget

    def test_worst_case_plan_spans_the_mesh(self, params):
        planner = ChannelPlanner(square_mesh(8), params)
        assert planner.worst_case_plan().hops == 14

    def test_plan_many_skips_local_requests(self, params):
        planner = ChannelPlanner(square_mesh(4), params)
        plans = planner.plan_many(
            [(Coordinate(0, 0), Coordinate(0, 0)), (Coordinate(0, 0), Coordinate(1, 1))]
        )
        assert len(plans) == 1

    def test_same_endpoint_rejected(self, params):
        planner = ChannelPlanner(square_mesh(4), params)
        with pytest.raises(RoutingError):
            planner.plan(Coordinate(1, 1), Coordinate(1, 1))

    def test_out_of_grid_rejected(self, params):
        planner = ChannelPlanner(square_mesh(4), params)
        with pytest.raises(RoutingError):
            planner.plan(Coordinate(0, 0), Coordinate(9, 0))

    def test_planner_adopts_topology_hop_length(self, params):
        topology = square_mesh(4, cells_per_hop=300)
        planner = ChannelPlanner(topology, params)
        assert planner.params.cells_per_hop == 300

    def test_plan_describe(self, params):
        planner = ChannelPlanner(square_mesh(8), params)
        assert "hops" in planner.plan(Coordinate(0, 0), Coordinate(3, 4)).describe()
