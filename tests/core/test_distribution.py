"""Tests for the two EPR distribution methodologies."""

import pytest

from repro.core.distribution import (
    BallisticDistribution,
    ChainedTeleportationDistribution,
    get_distribution,
)
from repro.core.placement import virtual_wire
from repro.errors import ConfigurationError
from repro.physics.epr import generation_fidelity
from repro.physics.parameters import IonTrapParameters


@pytest.fixture
def params():
    return IonTrapParameters.default()


class TestBallistic:
    def test_fidelity_decays_with_distance(self, params):
        dist = BallisticDistribution(params)
        short = dist.distribute(2)
        long = dist.distribute(20)
        assert long.arrival_fidelity < short.arrival_fidelity

    def test_latency_linear_in_distance(self, params):
        dist = BallisticDistribution(params)
        d10 = dist.distribute(10).latency_us
        d20 = dist.distribute(20).latency_us
        # Doubling the distance roughly doubles the (movement-dominated) latency.
        assert d20 > 1.8 * d10 - 200

    def test_no_teleporters_used(self, params):
        assert BallisticDistribution(params).distribute(10).teleport_operations == 0

    def test_arrival_error_close_to_eq1_prediction(self, params):
        dist = BallisticDistribution(params)
        result = dist.distribute(10)
        cells = 10 * params.cells_per_hop + 2 * params.endpoint_local_cells
        predicted = 1 - generation_fidelity(params) * (1 - params.errors.move_cell) ** cells
        assert result.arrival_error == pytest.approx(predicted, rel=0.05)


class TestChained:
    def test_link_state_error_includes_generation_and_movement(self, params):
        dist = ChainedTeleportationDistribution(params)
        raw = dist.raw_link_state()
        gen_error = 1 - generation_fidelity(params)
        move_error = 1 - (1 - params.errors.move_cell) ** params.cells_per_hop
        assert raw.error == pytest.approx(gen_error + move_error, rel=0.05)

    def test_link_purification_improves_link(self, params):
        raw = ChainedTeleportationDistribution(params)
        purified = ChainedTeleportationDistribution(params, placement=virtual_wire(2))
        assert purified.link_state().fidelity > raw.link_state().fidelity

    def test_link_cost_grows_with_purification(self, params):
        raw = ChainedTeleportationDistribution(params)
        once = ChainedTeleportationDistribution(params, placement=virtual_wire(1))
        twice = ChainedTeleportationDistribution(params, placement=virtual_wire(2))
        assert raw.link_cost() == 1.0
        assert 2.0 < once.link_cost() < 2.5
        assert 4.0 < twice.link_cost() < 5.5

    def test_error_grows_with_hops(self, params):
        dist = ChainedTeleportationDistribution(params)
        errors = [dist.distribute(h).arrival_error for h in (2, 10, 30)]
        assert errors == sorted(errors)

    def test_latency_nearly_distance_independent(self, params):
        dist = ChainedTeleportationDistribution(params)
        d5 = dist.distribute(5).latency_us
        d40 = dist.distribute(40).latency_us
        # Links are pre-distributed, so only the classical term grows.
        assert d40 < d5 + 2 * params.times.classical(40 * params.cells_per_hop) + 1.0

    def test_teleports_and_links_counted(self, params):
        dist = ChainedTeleportationDistribution(params)
        result = dist.distribute(10)
        assert result.teleport_operations == 9
        assert result.link_pairs_consumed == pytest.approx(10.0)

    def test_chained_and_ballistic_fidelity_approximately_equal(self, params):
        # Section 4.6: "The final fidelity of these two techniques is
        # approximately the same" — the chained pair inherits the ballistic
        # error its link pairs accumulated, plus per-hop generation/gate error.
        chained = ChainedTeleportationDistribution(params).distribute(40)
        ballistic = BallisticDistribution(params).distribute(40)
        ratio = chained.arrival_error / ballistic.arrival_error
        assert 0.3 < ratio < 3.0

    def test_chained_latency_beats_ballistic_at_long_distance(self, params):
        chained = ChainedTeleportationDistribution(params).distribute(40)
        ballistic = BallisticDistribution(params).distribute(40)
        assert chained.latency_us < ballistic.latency_us

    def test_rejects_negative_hops(self, params):
        with pytest.raises(ConfigurationError):
            ChainedTeleportationDistribution(params).distribute(-1)


class TestFactory:
    def test_get_by_name(self, params):
        assert isinstance(get_distribution("ballistic", params), BallisticDistribution)
        assert isinstance(get_distribution("chained", params), ChainedTeleportationDistribution)
        assert isinstance(
            get_distribution("teleportation", params), ChainedTeleportationDistribution
        )

    def test_unknown_name_rejected(self, params):
        with pytest.raises(ConfigurationError):
            get_distribution("carrier-pigeon", params)
