"""Tests for the EPR budget engine (Figures 10-12 machinery)."""

import math

import pytest

from repro.core.budget import EPRBudgetModel, compare_placements
from repro.core.logical import STEANE_LEVEL_2
from repro.core.placement import between_teleports, endpoint_only, standard_schemes, virtual_wire
from repro.errors import ConfigurationError
from repro.physics.parameters import IonTrapParameters


@pytest.fixture(scope="module")
def params():
    return IonTrapParameters.default()


@pytest.fixture(scope="module")
def endpoint_model(params):
    return EPRBudgetModel(params, placement=endpoint_only())


class TestEndpointOnlyBudget:
    def test_depth_three_at_simulated_distances(self, endpoint_model):
        # Section 5.3: "a maximum purification tree of depth three" on the
        # 16x16 machine (max Manhattan distance 30 hops).
        assert endpoint_model.budget(10).endpoint_rounds == 3
        assert endpoint_model.budget(30).endpoint_rounds == 3

    def test_pairs_per_logical_communication_near_392(self, endpoint_model):
        budget = endpoint_model.budget(30)
        pairs = budget.pairs_per_logical_communication(STEANE_LEVEL_2)
        # 2^3 * 49 = 392 ideal; the yield-adjusted figure is slightly above.
        assert 392 <= pairs <= 480

    def test_arrival_error_grows_with_distance(self, endpoint_model):
        errors = [endpoint_model.budget(h).arrival_error for h in (5, 15, 30, 60)]
        assert errors == sorted(errors)

    def test_total_includes_link_pairs(self, endpoint_model):
        budget = endpoint_model.budget(20)
        assert budget.total_pairs > budget.pairs_teleported
        assert budget.total_pairs == pytest.approx(
            budget.link_cost * (budget.pairs_teleported + budget.teleport_operations)
        )

    def test_feasible_with_default_parameters(self, endpoint_model):
        assert endpoint_model.budget(60).feasible

    def test_setup_latency_positive_and_growing(self, endpoint_model):
        short = endpoint_model.budget(5).setup_latency_us
        long = endpoint_model.budget(40).setup_latency_us
        assert 0 < short < long

    def test_sweep_returns_budget_per_distance(self, endpoint_model):
        budgets = endpoint_model.sweep([5, 10, 15])
        assert [b.hops for b in budgets] == [5, 10, 15]

    def test_rejects_negative_hops(self, endpoint_model):
        with pytest.raises(ConfigurationError):
            endpoint_model.budget(-1)

    def test_describe_mentions_distance(self, endpoint_model):
        assert "D=10" in endpoint_model.budget(10).describe()


class TestPlacementComparison:
    """The Figure 10 / Figure 11 qualitative orderings."""

    def test_after_teleport_schemes_dominate_teleported_count(self, params):
        budgets = {b.placement.label: b for b in compare_placements(20, standard_schemes(), params)}
        assert (
            budgets["once after each teleport"].pairs_teleported
            > 10 * budgets["only at end"].pairs_teleported
        )
        assert (
            budgets["twice after each teleport"].pairs_teleported
            > budgets["once after each teleport"].pairs_teleported
        )

    def test_virtual_wire_minimises_teleported_count(self, params):
        budgets = {b.placement.label: b for b in compare_placements(30, standard_schemes(), params)}
        assert (
            budgets["twice before teleport"].pairs_teleported
            <= budgets["only at end"].pairs_teleported
        )

    def test_after_teleport_total_grows_exponentially(self, params):
        model = EPRBudgetModel(params, placement=between_teleports(1))
        t10 = model.budget(10).total_pairs
        t30 = model.budget(30).total_pairs
        assert t30 > 100 * t10

    def test_endpoint_and_virtual_wire_totals_within_small_factor(self, params):
        budgets = {b.placement.label: b for b in compare_placements(30, standard_schemes(), params)}
        end = budgets["only at end"].total_pairs
        wire = budgets["once before teleport"].total_pairs
        assert 0.2 < wire / end < 5.0

    def test_virtual_wire_reduces_endpoint_rounds_or_keeps_them(self, params):
        end = EPRBudgetModel(params, placement=endpoint_only()).budget(30)
        wire = EPRBudgetModel(params, placement=virtual_wire(2)).budget(30)
        assert wire.endpoint_rounds <= end.endpoint_rounds
        assert wire.arrival_error < end.arrival_error

    def test_per_hop_costs_only_for_between_teleports(self, params):
        end = EPRBudgetModel(params, placement=endpoint_only()).budget(10)
        after = EPRBudgetModel(params, placement=between_teleports(1)).budget(10)
        assert all(c == 1.0 for c in end.per_hop_costs)
        assert all(c > 2.0 for c in after.per_hop_costs)


class TestFeasibility:
    """The Figure 12 breakdown behaviour."""

    def test_infeasible_at_high_uniform_error(self):
        params = IonTrapParameters.uniform_error(1e-4)
        budget = EPRBudgetModel(params).budget(32)
        assert not budget.feasible
        assert math.isinf(budget.pairs_teleported)
        assert math.isinf(budget.total_pairs)

    def test_feasible_at_low_uniform_error(self):
        params = IonTrapParameters.uniform_error(1e-7)
        assert EPRBudgetModel(params).budget(32).feasible

    def test_breakdown_happens_between_1e6_and_1e4(self):
        feasible, infeasible = None, None
        for error in (1e-6, 3e-6, 1e-5, 3e-5, 1e-4):
            budget = EPRBudgetModel(IonTrapParameters.uniform_error(error)).budget(32)
            if budget.feasible:
                feasible = error
            elif infeasible is None:
                infeasible = error
        assert feasible is not None and infeasible is not None
        assert 1e-6 <= feasible < infeasible <= 1e-4

    def test_resources_grow_as_error_grows(self):
        values = []
        for error in (1e-9, 1e-7, 1e-6):
            budget = EPRBudgetModel(IonTrapParameters.uniform_error(error)).budget(32)
            values.append(budget.pairs_teleported)
        assert values == sorted(values)
