"""Tests for logical encodings, purification placement and the latency crossover."""

import pytest

from repro.core.crossover import (
    crossover_distance_cells,
    crossover_series,
    latency_comparison,
    recommended_hop_cells,
)
from repro.core.logical import (
    STEANE_LEVEL_1,
    STEANE_LEVEL_2,
    STEANE_LEVEL_3,
    LogicalQubitEncoding,
    expected_pairs_per_logical_communication,
    pairs_per_logical_communication,
)
from repro.core.placement import (
    PlacementScheme,
    PurificationPlacement,
    between_teleports,
    endpoint_only,
    standard_schemes,
    virtual_wire,
)
from repro.errors import ConfigurationError
from repro.physics.parameters import IonTrapParameters, OperationTimes


class TestLogicalEncoding:
    def test_steane_level_counts(self):
        assert STEANE_LEVEL_1.physical_qubits == 7
        assert STEANE_LEVEL_2.physical_qubits == 49
        assert STEANE_LEVEL_3.physical_qubits == 343

    def test_level_zero_is_unencoded(self):
        assert LogicalQubitEncoding(level=0).physical_qubits == 1

    def test_paper_392_pairs(self):
        assert pairs_per_logical_communication(3) == 392

    def test_pairs_scale_with_rounds(self):
        assert pairs_per_logical_communication(4) == 2 * pairs_per_logical_communication(3)

    def test_expected_pairs_with_yield(self):
        assert expected_pairs_per_logical_communication(8.5) == pytest.approx(8.5 * 49)

    def test_rejects_negative_rounds(self):
        with pytest.raises(ConfigurationError):
            pairs_per_logical_communication(-1)

    def test_rejects_sub_unity_yield(self):
        with pytest.raises(ConfigurationError):
            expected_pairs_per_logical_communication(0.5)

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            LogicalQubitEncoding(level=-1)

    def test_describe(self):
        assert "49" in STEANE_LEVEL_2.describe()


class TestPlacement:
    def test_endpoint_only_scheme(self):
        placement = endpoint_only()
        assert placement.scheme is PlacementScheme.ENDPOINTS_ONLY
        assert not placement.purifies_links
        assert not placement.purifies_per_hop
        assert placement.label == "only at end"

    def test_virtual_wire_scheme(self):
        placement = virtual_wire(2)
        assert placement.scheme is PlacementScheme.VIRTUAL_WIRE
        assert placement.purifies_links
        assert placement.label == "twice before teleport"

    def test_between_teleports_scheme(self):
        placement = between_teleports(1)
        assert placement.scheme is PlacementScheme.BETWEEN_TELEPORTS
        assert placement.label == "once after each teleport"

    def test_standard_schemes_are_the_five_from_the_paper(self):
        labels = [p.label for p in standard_schemes()]
        assert labels == [
            "twice after each teleport",
            "once after each teleport",
            "twice before teleport",
            "once before teleport",
            "only at end",
        ]

    def test_custom_label_preserved(self):
        placement = PurificationPlacement(virtual_wire_rounds=1, label="custom")
        assert placement.label == "custom"

    def test_rejects_negative_rounds(self):
        with pytest.raises(ConfigurationError):
            PurificationPlacement(virtual_wire_rounds=-1)
        with pytest.raises(ConfigurationError):
            virtual_wire(0)
        with pytest.raises(ConfigurationError):
            between_teleports(0)


class TestCrossover:
    def test_crossover_near_600_cells(self):
        # The paper quotes "about 600 cells".
        assert 550 <= crossover_distance_cells() <= 650

    def test_recommended_hop_rounds_to_600(self):
        assert recommended_hop_cells() == 600

    def test_teleportation_wins_beyond_crossover(self):
        crossover = crossover_distance_cells()
        assert latency_comparison(crossover + 10).teleportation_faster
        assert not latency_comparison(crossover - 100).teleportation_faster

    def test_comparison_ratio(self):
        comparison = latency_comparison(1220)
        assert comparison.ratio == pytest.approx(
            comparison.ballistic_us / comparison.teleportation_us
        )

    def test_series_covers_range(self):
        series = crossover_series(1000, step=100)
        assert len(series) == 11
        assert series[0].distance_cells == 0

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            latency_comparison(-1)

    def test_no_crossover_when_classical_is_slow(self):
        slow_classical = IonTrapParameters(
            times=OperationTimes(classical_per_cell=0.5)
        )
        with pytest.raises(ConfigurationError):
            crossover_distance_cells(slow_classical)
