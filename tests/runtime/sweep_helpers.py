"""Importable sweep workloads for the runtime tests.

The runner ships work to pool workers as (module, qualname, params) triples,
so test workloads must be module-level functions in an importable module —
closures and lambdas are rejected by design.  These helpers also record
their invocations to files so tests can count *actual executions* across
process boundaries (a resumed sweep must not recompute journaled points).
"""

import os
import time


def record_and_square(value, log_path):
    """Append one line per invocation, then return value**2."""
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value * value


def executed_values(log_path):
    """The values record_and_square was actually invoked with."""
    if not os.path.exists(log_path):
        return []
    with open(log_path, encoding="utf-8") as handle:
        return [int(line) for line in handle.read().split()]


def fail_on(value, bad, log_path=None):
    """Raise for the poisoned value, square everything else."""
    if log_path is not None:
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{value}\n")
    if value == bad:
        raise ValueError(f"poisoned point {value}")
    return value * value


def fail_until_marker(value, marker_path):
    """Raise until the marker file exists — a transient failure to retry.

    The first run of a sweep sees the failure; a test then plants the marker
    and resumes, which must retry (and now succeed at) exactly this point.
    """
    if not os.path.exists(marker_path):
        raise RuntimeError(f"transient failure for {value}")
    return value * value


def fail_once(value, marker_dir):
    """Raise on the first attempt for each value, succeed on the second."""
    marker = os.path.join(marker_dir, f"attempted-{value}")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("attempted\n")
        raise RuntimeError(f"first attempt for {value}")
    return value * value


def sleep_then_return(value, seconds):
    """Sleep, then return — the hung-worker stand-in for timeout tests."""
    time.sleep(seconds)
    return value


def unpicklable_result(value):
    """Return something JSON cannot serialize (for journal-mode errors)."""
    return {value: object()}
