"""The noun-verb CLI surface: serve, --format json, and deprecated aliases."""

import json

from repro.runtime.cli import main


class TestServe:
    def test_serve_catalog_scenario_text_report(self, capsys):
        assert main(["serve", "--scenario", "service_smoke"]) == 0
        out = capsys.readouterr().out
        assert "offered" in out
        assert "p99" in out
        assert "drop rate" in out
        assert "bulk" in out and "latency" in out

    def test_serve_json_report_is_the_typed_result(self, capsys):
        assert main(["serve", "--scenario", "service_smoke", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "service"
        assert payload["batch"] is None
        assert payload["service"]["offered"] > 0
        assert payload["service"]["admitted"] + payload["service"]["dropped"] == (
            payload["service"]["offered"]
        )

    def test_serve_backend_override(self, capsys):
        assert main(
            ["serve", "--scenario", "service_smoke", "--backend", "detailed",
             "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["backend"] == "detailed"

    def test_serve_spec_file(self, tmp_path, capsys):
        from repro.scenarios import get_scenario

        path = tmp_path / "svc.json"
        path.write_text(json.dumps(get_scenario("service_smoke").to_dict()))
        assert main(["serve", "--spec", str(path)]) == 0
        assert "offered" in capsys.readouterr().out

    def test_serve_requires_exactly_one_source(self, capsys):
        assert main(["serve"]) == 2
        err = capsys.readouterr().err
        assert "--scenario" in err and "--spec" in err
        assert main(["serve", "--scenario", "a", "--spec", "b"]) == 2

    def test_serve_rejects_batch_scenarios(self, capsys):
        assert main(["serve", "--scenario", "smoke"]) == 2
        assert "traffic" in capsys.readouterr().err

    def test_serve_emit_bench_records_service_columns(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        assert main(
            ["serve", "--scenario", "service_smoke", "--emit-bench", str(bench)]
        ) == 0
        payload = json.loads(bench.read_text())
        (record,) = payload["scenarios"]
        assert record["name"] == "service_smoke"
        assert record["cached"] is False
        assert "latency_p99_us" in record and "drop_rate" in record


class TestFormatOption:
    def test_scenarios_run_format_json(self, tmp_path, capsys):
        assert main(
            ["scenarios", "run", "smoke", "--format", "json",
             "--cache-dir", str(tmp_path)]
        ) == 0
        records = json.loads(capsys.readouterr().out)
        assert [record["name"] for record in records] == ["smoke"]

    def test_scenarios_list_format_json(self, capsys):
        assert main(["scenarios", "list", "--format", "json"]) == 0
        names = [entry["name"] for entry in json.loads(capsys.readouterr().out)]
        assert "smoke" in names and "service_smoke" in names

    def test_mixed_batch_and_service_table(self, tmp_path, capsys):
        assert main(
            ["scenarios", "run", "smoke", "service_smoke",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "p99=" in out  # the service row renders steady-state columns


class TestSweepStatus:
    def _journaled_sweep(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        assert main(
            ["scenarios", "run", "smoke", "--no-cache", "--workers", "1",
             "--journal", str(journal)]
        ) == 0
        return journal

    def test_status_text_reports_complete_journal(self, tmp_path, capsys):
        journal = self._journaled_sweep(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "status", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "1/1 ok" in out
        assert "complete" in out

    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        journal = self._journaled_sweep(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "status", str(journal), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1
        assert payload["ok"] == 1
        assert payload["missing"] == 0
        assert payload["complete"] is True
        assert payload["errors"] == []

    def test_status_missing_journal_fails_cleanly(self, tmp_path, capsys):
        assert main(["sweep", "status", str(tmp_path / "nope.jsonl")]) == 2
        assert "no sweep journal" in capsys.readouterr().err

    def test_journaled_rerun_reports_journal_provenance(self, tmp_path, capsys):
        journal = self._journaled_sweep(tmp_path)
        capsys.readouterr()
        assert main(
            ["scenarios", "run", "smoke", "--no-cache", "--workers", "1",
             "--journal", str(journal), "--format", "json"]
        ) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert record["journaled"] is True
        assert record["cached"] is False


class TestDeprecatedAliases:
    def test_legacy_list_warns_but_keeps_stdout(self, capsys):
        assert main(["experiments", "list"]) == 0
        modern = capsys.readouterr()
        assert main(["list"]) == 0
        legacy = capsys.readouterr()
        assert legacy.out == modern.out
        assert "deprecated" in legacy.err
        assert "deprecated" not in modern.err

    def test_legacy_run_warns_but_keeps_stdout(self, tmp_path, capsys):
        assert main(["experiments", "run", "table1", "--cache-dir", str(tmp_path)]) == 0
        modern = capsys.readouterr()
        assert main(["run", "table1", "--cache-dir", str(tmp_path)]) == 0
        legacy = capsys.readouterr()
        assert legacy.out == modern.out
        assert "deprecated" in legacy.err

    def test_legacy_aliases_are_hidden_from_help(self, capsys):
        try:
            main(["--help"])
        except SystemExit:
            pass
        help_text = capsys.readouterr().out
        assert "experiments" in help_text
        assert "serve" in help_text
        # The usage metavar lists only the public nouns.
        assert "{backends,experiments,scenarios,sweep,serve,verify,lint}" in help_text
        for line in help_text.splitlines():
            stripped = line.strip()
            assert not stripped.startswith("list "), line
            assert stripped != "list"
