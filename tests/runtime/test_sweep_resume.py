"""Crash-resume integration tests: killed sweeps restart without recomputing.

The scenarios the ISSUE demands, end to end through ExperimentRunner:

* a sweep interrupted mid-run (simulated by a truncated final journal line
  and by workers raising partway through the grid) resumes computing only
  the missing points, byte-identical to a clean run;
* a grid with one always-raising point finishes every other point, with the
  failure captured as a structured error record (and retried on resume).
"""

import json

import pytest

import sweep_helpers
from repro.errors import SweepError
from repro.runtime.journal import journal_status, read_journal
from repro.runtime.runner import ExperimentRunner


def _grid(tmp_path, values, log_name="calls.log"):
    log_path = str(tmp_path / log_name)
    return log_path, [{"value": v, "log_path": log_path} for v in values]


def _runner(tmp_path, **kwargs):
    return ExperimentRunner(workers=1, cache_dir=str(tmp_path / "cache"), **kwargs)


class TestJournalResume:
    def test_completed_journal_recomputes_nothing(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        log_path, grid = _grid(tmp_path, range(6))
        runner = _runner(tmp_path)
        first = runner.sweep_records(
            sweep_helpers.record_and_square, grid, journal=journal
        )
        assert [p.result for p in first] == [v * v for v in range(6)]
        assert sorted(sweep_helpers.executed_values(log_path)) == list(range(6))

        again = runner.sweep_records(
            sweep_helpers.record_and_square, grid, journal=journal
        )
        # No new executions: every point came back from the journal.
        assert sorted(sweep_helpers.executed_values(log_path)) == list(range(6))
        assert all(p.journaled for p in again)
        assert [p.result for p in again] == [p.result for p in first]

    def test_truncated_tail_resumes_only_the_lost_point(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        log_path, grid = _grid(tmp_path, range(6))
        runner = _runner(tmp_path)
        clean = runner.sweep_records(
            sweep_helpers.record_and_square, grid, journal=journal
        )

        # Simulate a crash mid-write: cut the final journal line in half.
        raw = (tmp_path / "sweep.jsonl").read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n") + 12
        (tmp_path / "sweep.jsonl").write_bytes(raw[:cut])
        lost_key = clean[-1].cache_key
        assert lost_key not in read_journal(journal).points

        resumed = runner.sweep_records(
            sweep_helpers.record_and_square, grid, journal=journal
        )
        # Exactly one extra execution: the point whose line was truncated.
        executed = sweep_helpers.executed_values(log_path)
        assert len(executed) == 7
        assert executed[-1] == 5
        # The resumed records match the clean run bitwise.
        assert [p.result for p in resumed] == [p.result for p in clean]
        assert [p.params for p in resumed] == [p.params for p in clean]
        assert [p.journaled for p in resumed] == [True] * 5 + [False]
        assert journal_status(journal)["complete"] is True

    def test_worker_raising_after_n_points_resumes_missing(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        marker = str(tmp_path / "healed.marker")
        grid = [{"value": v, "marker_path": marker} for v in range(5)]
        runner = _runner(tmp_path)

        # First run: every point fails (the marker does not exist yet) —
        # the batch still completes, journaling five structured failures.
        first = runner.sweep_records(
            sweep_helpers.fail_until_marker, grid, journal=journal
        )
        assert all(p.error is not None for p in first)
        assert all(p.error["type"] == "RuntimeError" for p in first)
        status = journal_status(journal)
        assert status["error_count"] == 5 and status["ok"] == 0

        # Heal the fault and resume: the failed points are retried.
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("healed\n")
        resumed = runner.sweep_records(
            sweep_helpers.fail_until_marker, grid, journal=journal
        )
        assert [p.result for p in resumed] == [v * v for v in range(5)]
        assert journal_status(journal)["complete"] is True

    def test_journaled_results_match_clean_run_bitwise(self, tmp_path):
        """The scenario path: flat records survive the JSON round trip exactly."""
        from repro.scenarios import default_grid
        from repro.scenarios.run import run_record

        specs = default_grid(topologies=["mesh", "ring"], workloads=["permutation"])
        grid = [{"spec": spec.canonical_dict()} for spec in specs]
        runner = _runner(tmp_path, use_cache=False)
        clean = runner.sweep_records(run_record, grid)

        journal = str(tmp_path / "scenarios.jsonl")
        journaled = _runner(tmp_path, use_cache=False).sweep_records(
            run_record, grid, journal=journal
        )
        resumed = _runner(tmp_path, use_cache=False).sweep_records(
            run_record, grid, journal=journal
        )
        assert all(p.journaled for p in resumed)

        def strip_wall(points):
            records = []
            for point in points:
                record = dict(point.result)
                record.pop("wall_time_s")  # the only nondeterministic column
                records.append(record)
            return records

        assert strip_wall(resumed) == strip_wall(journaled)
        assert json.dumps(strip_wall(resumed), sort_keys=True) == json.dumps(
            strip_wall(clean), sort_keys=True
        )


class TestFaultIsolation:
    def test_poisoned_point_does_not_kill_the_batch(self, tmp_path):
        log_path, _ = _grid(tmp_path, [])
        grid = [{"value": v, "bad": 2, "log_path": log_path} for v in range(5)]
        runner = _runner(tmp_path)
        points = runner.sweep_records(sweep_helpers.fail_on, grid)
        assert [p.ok for p in points] == [True, True, False, True, True]
        assert [p.result for p in points] == [0, 1, None, 9, 16]
        failure = points[2].error
        assert failure["type"] == "ValueError"
        assert "poisoned point 2" in failure["message"]
        assert "ValueError" in failure["traceback"]
        # Every point — the poisoned one included — actually executed.
        assert sorted(sweep_helpers.executed_values(log_path)) == list(range(5))

    def test_failures_are_never_cached(self, tmp_path):
        grid = [{"value": 2, "bad": 2}]
        runner = _runner(tmp_path)
        first = runner.sweep_records(sweep_helpers.fail_on, grid)
        assert first[0].error is not None
        assert len(runner.cache) == 0  # the failure did not poison the slot
        healed = runner.sweep_records(
            sweep_helpers.fail_on, [{"value": 2, "bad": -1}]
        )
        assert healed[0].result == 4

    def test_sweep_results_surface_raises_after_isolation(self, tmp_path):
        log_path, _ = _grid(tmp_path, [])
        grid = [{"value": v, "bad": 1, "log_path": log_path} for v in range(3)]
        runner = _runner(tmp_path)
        with pytest.raises(SweepError, match="1 of 3 sweep points failed"):
            runner.sweep(sweep_helpers.fail_on, grid)
        # Fault isolation still ran the siblings before raising.
        assert sorted(sweep_helpers.executed_values(log_path)) == [0, 1, 2]

    def test_retries_heal_transient_failures(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        grid = [{"value": v, "marker_dir": str(marker_dir)} for v in range(3)]
        runner = _runner(tmp_path)
        points = runner.sweep_records(sweep_helpers.fail_once, grid, retries=1)
        assert [p.result for p in points] == [0, 1, 4]
        assert all(p.attempts == 2 for p in points)


class TestJournalModeContracts:
    def test_journal_bypasses_the_pickle_cache(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        log_path, grid = _grid(tmp_path, range(3))
        runner = _runner(tmp_path)
        runner.sweep_records(sweep_helpers.record_and_square, grid, journal=journal)
        assert len(runner.cache) == 0  # one store per sweep, not one pickle per point

    def test_force_recomputes_journaled_points(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        log_path, grid = _grid(tmp_path, range(3))
        runner = _runner(tmp_path)
        runner.sweep_records(sweep_helpers.record_and_square, grid, journal=journal)
        runner.sweep_records(
            sweep_helpers.record_and_square, grid, journal=journal, force=True
        )
        assert len(sweep_helpers.executed_values(log_path)) == 6

    def test_unserializable_result_fails_loudly(self, tmp_path):
        from repro.errors import ConfigurationError

        journal = str(tmp_path / "sweep.jsonl")
        runner = _runner(tmp_path)
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            runner.sweep_records(
                sweep_helpers.unpicklable_result,
                [{"value": "k"}],
                journal=journal,
            )
