"""Unit tests for the sharded work queue (repro.runtime.queue)."""

import pytest

import sweep_helpers
from repro.errors import ConfigurationError
from repro.runtime.queue import ShardedWorkQueue


def _square_task(task):
    value, bad = task
    if value == bad:
        raise ValueError(f"poisoned point {value}")
    return value * value


def _sleepy_task(task):
    return sweep_helpers.sleep_then_return(task["value"], task["seconds"])


class TestFaultIsolation:
    def test_in_process_exception_becomes_error_outcome(self):
        queue = ShardedWorkQueue(_square_task, workers=1)
        outcomes = queue.run([(1, 2), (2, 2), (3, 2)])
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]
        assert [o.value for o in outcomes] == [1, None, 9]
        error = outcomes[1].error
        assert error["type"] == "ValueError"
        assert "poisoned point 2" in error["message"]
        assert "ValueError" in error["traceback"]

    def test_pool_exception_becomes_error_outcome(self):
        queue = ShardedWorkQueue(_square_task, workers=2)
        outcomes = queue.run([(v, 3) for v in range(5)])
        assert [o.status for o in outcomes] == ["ok", "ok", "ok", "error", "ok"]
        assert outcomes[3].error["type"] == "ValueError"

    def test_results_stream_through_on_result(self):
        queue = ShardedWorkQueue(_square_task, workers=1, shard_size=2)
        seen = []
        queue.run([(v, -1) for v in range(5)], on_result=lambda i, o: seen.append(i))
        assert sorted(seen) == [0, 1, 2, 3, 4]


class TestRetries:
    def test_bounded_retry_counts_attempts(self):
        queue = ShardedWorkQueue(_square_task, workers=1, retries=2)
        (outcome,) = queue.run([(2, 2)])
        assert outcome.status == "error"
        assert outcome.attempts == 3  # 1 original + 2 retries

    def test_transient_failure_heals_within_one_run(self, tmp_path):
        def flaky(task):
            return sweep_helpers.fail_once(task, str(tmp_path))

        queue = ShardedWorkQueue(flaky, workers=1, retries=1)
        outcomes = queue.run([1, 2])
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [1, 4]
        assert all(o.attempts == 2 for o in outcomes)

    def test_retry_does_not_block_healthy_points(self):
        queue = ShardedWorkQueue(_square_task, workers=1, retries=5, shard_size=2)
        order = []
        queue.run(
            [(0, 0), (1, -1), (2, -1)],
            on_result=lambda i, o: order.append((i, o.status)),
        )
        # The healthy points finish before the poisoned point exhausts its
        # retries at the back of the queue.
        assert order[-1] == (0, "error")


class TestTimeout:
    def test_hung_point_times_out_and_siblings_survive(self):
        queue = ShardedWorkQueue(_sleepy_task, workers=2, timeout_s=1.0)
        outcomes = queue.run(
            [
                {"value": 1, "seconds": 0.01},
                {"value": 2, "seconds": 30.0},
                {"value": 3, "seconds": 0.01},
            ]
        )
        assert outcomes[0].ok and outcomes[0].value == 1
        assert outcomes[1].status == "error"
        assert outcomes[1].error["type"] == "TimeoutError"
        # The pool restarted after the kill and the last point still ran.
        assert outcomes[2].ok and outcomes[2].value == 3


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedWorkQueue(_square_task, workers=0)
        with pytest.raises(ConfigurationError):
            ShardedWorkQueue(_square_task, timeout_s=0)
        with pytest.raises(ConfigurationError):
            ShardedWorkQueue(_square_task, retries=-1)
        with pytest.raises(ConfigurationError):
            ShardedWorkQueue(_square_task, shard_size=0)

    def test_empty_task_list(self):
        assert ShardedWorkQueue(_square_task).run([]) == []
