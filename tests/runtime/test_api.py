"""The repro.api facade: load, run, serve, sweep — the stable surface."""

import json

import pytest

from repro import api
from repro.errors import ScenarioError
from repro.scenarios import ScenarioSpec, get_scenario, list_scenarios


class TestLoadScenario:
    def test_catalog_name_resolves(self):
        spec = api.load_scenario("smoke")
        assert spec == get_scenario("smoke")

    def test_catalog_name_with_mismatched_name_rejected(self):
        with pytest.raises(ScenarioError, match="does not contain"):
            api.load_scenario("smoke", name="other")

    def test_file_with_one_scenario_loads(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps({**get_scenario("smoke").to_dict(), "name": "solo"}))
        assert api.load_scenario(str(path)).name == "solo"

    def test_file_with_many_scenarios_needs_a_name(self, tmp_path):
        body = get_scenario("smoke").to_dict()
        path = tmp_path / "many.json"
        path.write_text(
            json.dumps({"scenarios": [{**body, "name": "a"}, {**body, "name": "b"}]})
        )
        with pytest.raises(ScenarioError, match="pass name="):
            api.load_scenario(str(path))
        assert api.load_scenario(str(path), name="b").name == "b"
        with pytest.raises(ScenarioError, match="no scenario named"):
            api.load_scenario(str(path), name="c")

    def test_missing_source_lists_the_catalog(self):
        with pytest.raises(ScenarioError, match="neither a built-in"):
            api.load_scenario("no_such_scenario.yaml")


class TestRunAndServe:
    def test_run_returns_a_typed_batch_result(self):
        result = api.run(api.load_scenario("smoke"))
        assert result.mode == "batch"
        assert result.batch is not None

    def test_run_accepts_plain_mappings_and_backend_override(self):
        payload = get_scenario("smoke").to_dict()
        result = api.run(payload, backend="detailed")
        assert result.backend == "detailed"

    def test_serve_returns_a_typed_service_result(self):
        result = api.serve(api.load_scenario("service_smoke"))
        assert result.mode == "service"
        assert result.service is not None
        assert result.service.offered > 0

    def test_serve_rejects_batch_scenarios(self):
        with pytest.raises(ScenarioError, match="no traffic section"):
            api.serve(api.load_scenario("smoke"))

    def test_run_dispatches_service_specs_transparently(self):
        assert api.run(api.load_scenario("service_smoke")).mode == "service"


class TestSweep:
    def test_sweep_returns_labelled_flat_records(self, tmp_path):
        specs = [get_scenario("smoke"), get_scenario("service_smoke")]
        records = api.sweep(specs, cache_dir=str(tmp_path), workers=1)
        assert [record["name"] for record in records] == ["smoke", "service_smoke"]
        assert all("cached" in record for record in records)
        assert "offered" in records[1] and "offered" not in records[0]

    def test_sweep_cache_round_trips(self, tmp_path):
        spec = get_scenario("smoke")
        first = api.sweep([spec], cache_dir=str(tmp_path), workers=1)
        second = api.sweep([spec], cache_dir=str(tmp_path), workers=1)
        assert first[0]["cached"] is False
        assert second[0]["cached"] is True
        assert first[0]["spec_hash"] == second[0]["spec_hash"]

    def test_sweep_rejects_empty_input(self):
        with pytest.raises(ScenarioError, match="at least one"):
            api.sweep([])

    def test_facade_exports_are_pinned(self):
        assert api.__all__ == ["load_scenario", "run", "serve", "sweep"]
        assert "service_smoke" in list_scenarios()
        assert isinstance(api.load_scenario("service_smoke"), ScenarioSpec)
