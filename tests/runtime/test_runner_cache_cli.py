"""Tests for the runtime layer: cache, parallel runner and CLI."""

import os
import shutil
import time

import pytest

from repro.analysis.fig16 import allocation_for_ratio
from repro.analysis.series import TableData
from repro.analysis.sweeps import linear_space
from repro.errors import ConfigurationError
from repro.network.nodes import ResourceAllocation
from repro.runtime.cache import (
    ResultCache,
    fingerprinted_files,
    parameter_hash,
    source_fingerprint,
)
from repro.runtime.cli import main
from repro.runtime.runner import ExperimentRunner


class TestParameterHash:
    def test_stable_across_calls(self):
        params = {"layout": "home_base", "ratio": 4}
        assert parameter_hash(params) == parameter_hash(params)

    def test_dict_order_insensitive(self):
        assert parameter_hash({"a": 1, "b": 2}) == parameter_hash({"b": 2, "a": 1})

    def test_different_params_differ(self):
        assert parameter_hash({"ratio": 1}) != parameter_hash({"ratio": 2})

    def test_dataclasses_hash_by_value(self):
        assert parameter_hash(ResourceAllocation(2, 2, 1)) == parameter_hash(
            ResourceAllocation(2, 2, 1)
        )
        assert parameter_hash(ResourceAllocation(2, 2, 1)) != parameter_hash(
            ResourceAllocation(2, 2, 2)
        )

    def test_nested_structures(self):
        a = {"grid": [4, 8], "alloc": ResourceAllocation(1, 1, 1)}
        b = {"alloc": ResourceAllocation(1, 1, 1), "grid": [4, 8]}
        assert parameter_hash(a) == parameter_hash(b)

    def test_key_type_collision_regression(self):
        # str(k) coercion used to make these four hash identically, so
        # {1: x} could be served {"1": x}'s cached result.
        assert parameter_hash({1: "x"}) != parameter_hash({"1": "x"})
        assert parameter_hash({True: "x"}) != parameter_hash({1: "x"})
        assert parameter_hash({1.0: "x"}) != parameter_hash({1: "x"})
        # Equal keys of equal type still collapse to one slot.
        assert parameter_hash({1: "x"}) == parameter_hash({1: "x"})

    def test_mixed_type_keys_stay_order_insensitive(self):
        assert parameter_hash({1: "a", "b": 2}) == parameter_hash({"b": 2, 1: "a"})
        assert parameter_hash({(1, "x"): 1, "y": 2}) == parameter_hash(
            {"y": 2, (1, "x"): 1}
        )

    def test_source_fingerprint_is_stable(self):
        # The fingerprint ties cache entries to the package source; within a
        # process it must be a constant.
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 16

    def test_source_fingerprint_covers_scenarios_package(self):
        # Cached artefacts must be invalidated by spec-schema edits, so the
        # scenario modules have to be part of the fingerprint.
        covered = set(fingerprinted_files())
        assert os.path.join("scenarios", "spec.py") in covered
        assert os.path.join("scenarios", "catalog.py") in covered
        assert os.path.join("runtime", "cache.py") in covered
        assert not any("__pycache__" in path for path in covered)

    def test_scenario_edit_changes_fingerprint(self, tmp_path):
        # Simulate a spec-schema edit on a copy of the package: the
        # fingerprint must change, which is what flushes stale cache entries.
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        copy_root = str(tmp_path / "repro")
        shutil.copytree(
            package_root,
            copy_root,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        before = source_fingerprint(copy_root)
        assert before == source_fingerprint(package_root)
        with open(os.path.join(copy_root, "scenarios", "spec.py"), "a") as handle:
            handle.write("\n# schema tweak\n")
        assert source_fingerprint(copy_root) != before


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = parameter_hash({"x": 1})
        cache.put(key, {"value": 42})
        assert key in cache
        assert cache.get(key) == {"value": 42}
        assert len(cache) == 1

    def test_missing_key_returns_default(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("nope", default="fallback") == "fallback"

    def test_corrupt_entry_is_a_miss_and_healed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = parameter_hash({"x": 1})
        with open(cache.path_for(key), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get(key) is None
        assert key not in cache

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(parameter_hash({"i": i}), i)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_transient_io_error_is_a_miss_that_leaves_the_entry(self, tmp_path, monkeypatch):
        # EACCES/EMFILE-style failures must not delete a valid entry: the
        # next (healthy) read should still find it.
        cache = ResultCache(str(tmp_path))
        key = parameter_hash({"x": 1})
        cache.put(key, {"value": 42})

        import builtins

        real_open = builtins.open

        def flaky_open(path, *args, **kwargs):
            if str(path) == cache.path_for(key):
                raise PermissionError(13, "Permission denied", str(path))
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", flaky_open)
        assert cache.get(key, default="miss") == "miss"
        monkeypatch.undo()
        assert cache.get(key) == {"value": 42}  # entry survived the fault

    def test_stale_tmp_files_reaped_on_init(self, tmp_path):
        # Plant the leak a crashed put() writer leaves behind, aged past the
        # concurrent-writer grace period.
        stale = tmp_path / "deadbeef.tmp"
        stale.write_bytes(b"half a pickle")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = tmp_path / "live.tmp"
        fresh.write_bytes(b"concurrent writer")

        ResultCache(str(tmp_path))
        assert not stale.exists()  # reaped
        assert fresh.exists()  # a live writer's file is left alone

    def test_clear_reaps_tmp_files_regardless_of_age(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(parameter_hash({"x": 1}), 1)
        planted = tmp_path / "crashed.tmp"
        planted.write_bytes(b"leftover")
        assert cache.clear() == 2  # the entry and the leaked temp file
        assert list(tmp_path.iterdir()) == []


class TestExperimentRunner:
    def test_runs_registry_experiments(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        results = runner.run(["table1", "table2"])
        assert set(results) == {"table1", "table2"}
        assert isinstance(results["table1"], TableData)

    def test_second_run_hits_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        first = runner.run(["table1"])
        assert len(runner.cache) == 1
        # Poison the cached artifact; a cache hit returns the poisoned value.
        key = next(iter(runner.cache.keys()))
        runner.cache.put(key, "poisoned")
        assert runner.run(["table1"]) == {"table1": "poisoned"}
        # force recomputes and heals the entry.
        healed = runner.run(["table1"], force=True)
        assert isinstance(healed["table1"], TableData)
        assert healed["table1"].title == first["table1"].title

    def test_unknown_identifier_rejected_before_running(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        with pytest.raises(ConfigurationError):
            runner.run(["definitely_not_an_experiment"])

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path), use_cache=False)
        runner.run(["table1"])
        assert runner.cache is None
        assert list(tmp_path.iterdir()) == []

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(workers=0)

    def test_sweep_runs_grid_in_order(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        grid = [{"start": 0.0, "stop": 1.0, "count": n} for n in (2, 3)]
        results = runner.sweep(linear_space, grid)
        assert results == [[0.0, 1.0], [0.0, 0.5, 1.0]]

    def test_sweep_caches_points(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        grid = [{"ratio": 1}, {"ratio": 8}]
        first = runner.sweep(allocation_for_ratio, grid)
        assert len(runner.cache) == 2
        second = runner.sweep(allocation_for_ratio, grid)
        assert second == first

    def test_sweep_rejects_unimportable_callables(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        with pytest.raises(ConfigurationError):
            runner.sweep(lambda x: x, [{"x": 1}])

    def test_pool_path_with_multiple_workers(self, tmp_path):
        runner = ExperimentRunner(workers=2, cache_dir=str(tmp_path))
        grid = [{"start": 0.0, "stop": 2.0, "count": n} for n in (2, 3, 5)]
        results = runner.sweep(linear_space, grid)
        assert [len(r) for r in results] == [2, 3, 5]


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure16" in out and "[heavy]" in out

    def test_run_command_prints_artifacts(self, tmp_path, capsys):
        code = main(["run", "table1", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[table1]" in out and "Teleport" in out

    def test_run_unknown_experiment_fails_cleanly(self, tmp_path, capsys):
        code = main(["run", "nope", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_command(self, tmp_path, capsys):
        code = main(["report", "--cache-dir", str(tmp_path), "--points", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "[figure12]" in out
