"""Unit tests for the append-only sweep journal (repro.runtime.journal)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalPoint,
    SweepJournal,
    journal_status,
    read_journal,
)


def _point(key, *, status="ok", result=None, error=None, attempts=1):
    return JournalPoint(
        key=key,
        index=0,
        status=status,
        result=result,
        error=error,
        attempts=attempts,
        elapsed_s=0.5,
    )


def _open(path, *, sweep_id="sweep-a", total=3, meta=None):
    journal = SweepJournal(str(path))
    state = journal.open(sweep_id=sweep_id, total=total, meta=meta)
    return journal, state


class TestRoundTrip:
    def test_create_append_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, state = _open(path, meta={"func": "m:f"})
        assert state.points == {}
        journal.append(_point("k1", result={"makespan_us": 1.5}))
        journal.append(_point("k2", status="error", error={"type": "ValueError"}))
        journal.close()

        state = read_journal(str(path))
        assert state.header["sweep_id"] == "sweep-a"
        assert state.header["total"] == 3
        assert state.header["meta"] == {"func": "m:f"}
        assert set(state.points) == {"k1", "k2"}
        assert state.points["k1"].ok
        assert state.points["k1"].result == {"makespan_us": 1.5}
        assert not state.points["k2"].ok
        assert state.points["k2"].error == {"type": "ValueError"}
        assert state.truncated_bytes == 0

    def test_last_entry_per_key_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, _ = _open(path)
        journal.append(_point("k1", status="error", error={"type": "RuntimeError"}))
        journal.append(_point("k1", result=42, attempts=2))
        journal.close()

        state = read_journal(str(path))
        assert state.points["k1"].ok
        assert state.points["k1"].result == 42
        assert state.points["k1"].attempts == 2
        assert state.line_count == 2  # both entries counted, one survives

    def test_unserializable_result_is_a_clear_error(self, tmp_path):
        journal, _ = _open(tmp_path / "j.jsonl")
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            journal.append(_point("k1", result=object()))
        journal.close()


class TestCrashTolerance:
    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, _ = _open(path)
        journal.append(_point("k1", result=1))
        journal.append(_point("k2", result=2))
        journal.close()
        # Simulate a writer killed mid-line: chop the last line in half.
        raw = path.read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n") + 10
        path.write_bytes(raw[:cut])

        state = read_journal(str(path))
        assert set(state.points) == {"k1"}
        assert state.truncated_bytes > 0

    def test_resume_truncates_partial_tail_before_appending(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, _ = _open(path)
        journal.append(_point("k1", result=1))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "key": "k2", "st')  # crashed writer

        journal, state = _open(path)
        assert set(state.points) == {"k1"}
        journal.append(_point("k3", result=3))
        journal.close()
        # Every line of the repaired file parses again.
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "header",
            "point",
            "point",
        ]
        assert set(read_journal(str(path)).points) == {"k1", "k3"}

    def test_unterminated_but_parseable_tail_is_distrusted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, _ = _open(path)
        journal.append(_point("k1", result=1))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            # Parses as JSON, but without its newline it may be a prefix of a
            # longer record — the reader must drop it.
            handle.write('{"kind": "point", "key": "k2", "index": 0, "status": "ok"}')
        assert set(read_journal(str(path)).points) == {"k1"}


class TestIdentity:
    def test_mismatched_sweep_id_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, _ = _open(path, sweep_id="sweep-a")
        journal.close()
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepJournal(str(path)).open(sweep_id="sweep-b", total=3)

    def test_non_journal_file_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("just some text\n")
        with pytest.raises(ConfigurationError):
            read_journal(str(path))

    def test_missing_file_is_a_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no sweep journal"):
            read_journal(str(tmp_path / "absent.jsonl"))

    def test_future_schema_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {
            "kind": "header",
            "schema": JOURNAL_SCHEMA_VERSION + 1,
            "sweep_id": "x",
            "total": 1,
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ConfigurationError, match="schema"):
            read_journal(str(path))


class TestStatus:
    def test_status_counts(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal, _ = _open(path, total=4)
        journal.append(_point("k1", result=1))
        journal.append(_point("k2", status="error", error={"type": "ValueError", "message": "boom"}))
        journal.append(_point("k2", status="error", error={"type": "ValueError", "message": "boom"}, attempts=2))
        journal.close()

        status = journal_status(str(path))
        assert status["total"] == 4
        assert status["ok"] == 1
        assert status["error_count"] == 1
        assert status["missing"] == 2
        assert status["complete"] is False
        assert status["retries"] == 1
        (error,) = status["errors"]
        assert error["type"] == "ValueError"
        assert error["key"] == "k2"
        assert error["attempts"] == 2
