"""Admission controllers: registry contract and per-policy invariants."""

import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Coordinate
from repro.scenarios.spec import ADMISSION_NAMES
from repro.service.admission import (
    AdmissionController,
    AlwaysAdmit,
    QueueBound,
    TokenBucket,
    admission_descriptions,
    admission_names,
    create_admission,
    register_admission,
)
from repro.service.arrivals import ServiceRequest


def _request(request_id=0, arrival_us=0.0):
    return ServiceRequest(
        request_id=request_id,
        tenant="t",
        arrival_us=arrival_us,
        channels=1,
        source=Coordinate(0, 0),
        dest=Coordinate(1, 0),
    )


class TestRegistry:
    def test_builtin_controllers_are_registered(self):
        assert admission_names() == ("always", "queue_bound", "token_bucket")

    def test_registry_matches_spec_admission_names(self):
        # The scenario schema keeps a literal copy so validating a spec never
        # imports the service stack; this pins the two in sync.
        assert set(admission_names()) == set(ADMISSION_NAMES)

    def test_descriptions_are_one_liners(self):
        for name, description in admission_descriptions().items():
            assert description, f"admission controller {name} has no description"
            assert "\n" not in description

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown admission controller"):
            create_admission("bogus")

    def test_create_dispatches_policy_parameters(self):
        bucket = create_admission("token_bucket", rate_per_ms=2.0, burst=3)
        assert isinstance(bucket, TokenBucket)
        assert bucket.rate_per_ms == 2.0
        assert bucket.burst == 3
        bound = create_admission("queue_bound", queue_limit=5)
        assert isinstance(bound, QueueBound)
        assert bound.queue_limit == 5
        assert isinstance(create_admission("always"), AlwaysAdmit)

    def test_register_rejects_anonymous_controller(self):
        class Nameless(AdmissionController):
            def admit(self, request, *, now_us, queue_depth):
                return None

        with pytest.raises(ConfigurationError, match="distinct 'name'"):
            register_admission(Nameless)


class TestAlwaysAdmit:
    def test_admits_everything(self):
        policy = AlwaysAdmit()
        for depth in (0, 10, 10_000):
            assert policy.admit(_request(), now_us=0.0, queue_depth=depth) is None


class TestTokenBucket:
    def test_burst_admits_then_rate_limits(self):
        policy = TokenBucket(rate_per_ms=1.0, burst=3)
        verdicts = [
            policy.admit(_request(i), now_us=0.0, queue_depth=0) for i in range(5)
        ]
        assert verdicts == [None, None, None, "rate_limited", "rate_limited"]

    def test_tokens_refill_at_the_configured_rate(self):
        policy = TokenBucket(rate_per_ms=1.0, burst=1)
        assert policy.admit(_request(0), now_us=0.0, queue_depth=0) is None
        assert policy.admit(_request(1), now_us=500.0, queue_depth=0) == "rate_limited"
        # A full millisecond refills exactly one token.
        assert policy.admit(_request(2), now_us=1600.0, queue_depth=0) is None

    def test_refill_never_exceeds_burst(self):
        policy = TokenBucket(rate_per_ms=100.0, burst=2)
        assert policy.admit(_request(0), now_us=1_000_000.0, queue_depth=0) is None
        assert policy.admit(_request(1), now_us=1_000_000.0, queue_depth=0) is None
        assert (
            policy.admit(_request(2), now_us=1_000_000.0, queue_depth=0)
            == "rate_limited"
        )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            TokenBucket(rate_per_ms=0.0, burst=1)
        with pytest.raises(ConfigurationError, match="burst"):
            TokenBucket(rate_per_ms=1.0, burst=0)


class TestQueueBound:
    def test_drops_only_at_the_limit(self):
        policy = QueueBound(queue_limit=2)
        assert policy.admit(_request(), now_us=0.0, queue_depth=0) is None
        assert policy.admit(_request(), now_us=0.0, queue_depth=1) is None
        assert policy.admit(_request(), now_us=0.0, queue_depth=2) == "queue_full"

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError, match="queue limit"):
            QueueBound(queue_limit=0)
