"""Steady-state metrics: nearest-rank percentiles and trace-driven reduction."""

from repro.service.metrics import SteadyStateCollector, percentile
from repro.trace import (
    REQUEST_KINDS,
    RequestAdmitted,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    RequestDropped,
    TraceBus,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank_returns_observed_values(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 1) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile([1.0, 2.0, 3.0], 50)

    def test_single_value_is_every_percentile(self):
        assert percentile([7.5], 1) == 7.5
        assert percentile([7.5], 99) == 7.5


def _feed(collector):
    """Two tenants: 'a' completes two requests, 'b' offers one and drops it."""
    records = [
        RequestArrived(t_us=0.0, request_id=0, tenant="a", channels=2,
                       source=(0, 0), destination=(1, 0)),
        RequestAdmitted(t_us=0.0, request_id=0, tenant="a", queue_depth=1),
        RequestArrived(t_us=10.0, request_id=1, tenant="b", channels=1,
                       source=(0, 0), destination=(1, 0)),
        RequestDropped(t_us=10.0, request_id=1, tenant="b", reason="rate_limited"),
        RequestArrived(t_us=20.0, request_id=2, tenant="a", channels=1,
                       source=(0, 0), destination=(1, 0)),
        RequestAdmitted(t_us=20.0, request_id=2, tenant="a", queue_depth=2),
        RequestDispatched(t_us=30.0, request_id=0, tenant="a", waited_us=30.0,
                          queue_depth=1),
        RequestCompleted(t_us=130.0, request_id=0, tenant="a", channels=2,
                         waited_us=30.0, service_us=100.0),
        RequestDispatched(t_us=130.0, request_id=2, tenant="a", waited_us=110.0,
                          queue_depth=0),
        RequestCompleted(t_us=330.0, request_id=2, tenant="a", channels=1,
                         waited_us=110.0, service_us=200.0),
    ]
    for record in records:
        collector(record)


class TestSteadyStateCollector:
    def test_lifecycle_counters(self):
        collector = SteadyStateCollector(duration_us=1000.0)
        _feed(collector)
        assert collector.offered == 3
        assert collector.admitted == 2
        assert collector.dropped == 1
        assert collector.completed == 2
        assert collector.drop_rate == 1 / 3
        assert collector.max_queue_depth == 2

    def test_summary_loads_and_percentiles(self):
        collector = SteadyStateCollector(duration_us=1000.0)
        _feed(collector)
        summary = collector.summary(makespan_us=2000.0)
        # 4 channels offered over the 1 ms horizon; 3 delivered over 2 ms.
        assert summary["offered_channels"] == 4
        assert summary["completed_channels"] == 3
        assert summary["offered_load_per_ms"] == 4.0
        assert summary["delivered_load_per_ms"] == 1.5
        assert summary["latency_p50_us"] == 130.0
        assert summary["latency_p99_us"] == 310.0
        assert summary["wait_p50_us"] == 30.0
        assert summary["wait_p99_us"] == 110.0

    def test_summary_defaults_span_to_horizon(self):
        collector = SteadyStateCollector(duration_us=1000.0)
        _feed(collector)
        assert collector.summary()["delivered_load_per_ms"] == 3.0
        assert collector.summary(makespan_us=0.0)["delivered_load_per_ms"] == 3.0

    def test_per_tenant_summaries(self):
        collector = SteadyStateCollector(duration_us=1000.0)
        _feed(collector)
        tenants = collector.summary(makespan_us=2000.0)["tenants"]
        assert sorted(tenants) == ["a", "b"]
        assert tenants["a"]["offered"] == 2
        assert tenants["a"]["completed"] == 2
        assert tenants["a"]["drop_rate"] == 0.0
        assert tenants["b"]["offered"] == 1
        assert tenants["b"]["dropped"] == 1
        assert tenants["b"]["drop_rate"] == 1.0
        assert tenants["b"]["drop_reasons"] == {"rate_limited": 1}
        assert tenants["b"]["latency_p50_us"] == 0.0

    def test_collector_subscribes_to_a_trace_bus(self):
        # The collector is a plain probe: wiring it through a bus filtered to
        # the request kinds must reduce to the same counters as direct calls.
        bus = TraceBus(kinds=REQUEST_KINDS, keep_records=False)
        collector = SteadyStateCollector(duration_us=1000.0)
        bus.subscribe(collector, kinds=REQUEST_KINDS)
        direct = SteadyStateCollector(duration_us=1000.0)
        _feed(direct)
        _feed(bus.emit)
        assert collector.summary() == direct.summary()
