"""Open-loop traffic generation: determinism, ordering, stream isolation."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.spec import TenantSpec, TrafficSpec
from repro.service.arrivals import generate_requests, tenant_requests
from repro.sim import QuantumMachine

NODES = list(QuantumMachine(4).topology.nodes())


def _traffic(**overrides):
    payload = {
        "duration_us": 5000.0,
        "seed": 7,
        "tenants": {
            "alpha": {"arrival_process": "poisson", "mean_interarrival_us": 400.0},
            "beta": {
                "arrival_process": "fixed",
                "mean_interarrival_us": 750.0,
                "size_dist": "pareto",
                "channels": 2,
                "max_channels": 5,
            },
        },
    }
    payload.update(overrides)
    return TrafficSpec.from_dict(payload)


class TestTenantStreams:
    def test_same_spec_yields_bitwise_identical_stream(self):
        traffic = _traffic()
        first = generate_requests(traffic, NODES)
        second = generate_requests(traffic, NODES)
        assert first == second

    def test_fixed_process_arrives_on_the_grid(self):
        tenant = TenantSpec.from_dict(
            {"arrival_process": "fixed", "mean_interarrival_us": 500.0}
        )
        requests = tenant_requests("grid", tenant, NODES, duration_us=2600.0, seed=1)
        assert [r.arrival_us for r in requests] == [500.0, 1000.0, 1500.0, 2000.0, 2500.0]

    def test_arrivals_stay_inside_the_horizon(self):
        for request in generate_requests(_traffic(), NODES):
            assert 0.0 < request.arrival_us < 5000.0

    def test_pareto_sizes_respect_floor_and_cap(self):
        tenant = TenantSpec.from_dict(
            {
                "arrival_process": "fixed",
                "mean_interarrival_us": 50.0,
                "size_dist": "pareto",
                "channels": 2,
                "max_channels": 4,
                "alpha": 1.1,
            }
        )
        requests = tenant_requests("tail", tenant, NODES, duration_us=5000.0, seed=3)
        sizes = {r.channels for r in requests}
        assert sizes and all(1 <= size <= 4 for size in sizes)

    def test_endpoints_are_distinct_nodes(self):
        for request in generate_requests(_traffic(), NODES):
            assert request.source != request.dest

    def test_tenant_metadata_reaches_every_request(self):
        tenant = TenantSpec.from_dict(
            {
                "arrival_process": "fixed",
                "mean_interarrival_us": 900.0,
                "priority": 2,
                "target_fidelity": 0.999,
            }
        )
        for request in tenant_requests("meta", tenant, NODES, duration_us=4000.0, seed=0):
            assert request.priority == 2
            assert request.target_fidelity == 0.999


class TestMergedStream:
    def test_global_ids_are_dense_and_ordered_by_arrival(self):
        requests = generate_requests(_traffic(), NODES)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_us for r in requests]
        assert arrivals == sorted(arrivals)

    def test_adding_a_tenant_never_perturbs_existing_draws(self):
        # Stream isolation: each tenant draws from substreams addressed by
        # its own name, so a third tenant must leave alpha/beta untouched.
        base = generate_requests(_traffic(), NODES)
        widened = _traffic(
            tenants={
                "alpha": {"arrival_process": "poisson", "mean_interarrival_us": 400.0},
                "beta": {
                    "arrival_process": "fixed",
                    "mean_interarrival_us": 750.0,
                    "size_dist": "pareto",
                    "channels": 2,
                    "max_channels": 5,
                },
                "gamma": {"arrival_process": "mmpp", "mean_interarrival_us": 600.0},
            }
        )
        merged = generate_requests(widened, NODES)

        def key(request):
            return (request.tenant, request.arrival_us, request.channels)

        survivors = [key(r) for r in merged if r.tenant != "gamma"]
        assert survivors == [key(r) for r in base]

    def test_seed_change_moves_the_random_streams(self):
        base = generate_requests(_traffic(), NODES)
        reseeded = generate_requests(_traffic(seed=8), NODES)
        assert [r.arrival_us for r in base] != [r.arrival_us for r in reseeded]

    def test_mmpp_offers_more_than_its_quiet_phase(self):
        bursty = TrafficSpec.from_dict(
            {
                "duration_us": 20000.0,
                "seed": 5,
                "tenants": {
                    "b": {
                        "arrival_process": "mmpp",
                        "mean_interarrival_us": 500.0,
                        "burst_factor": 8.0,
                        "phase_us": 2000.0,
                    }
                },
            }
        )
        assert len(generate_requests(bursty, NODES)) > 0

    def test_needs_two_nodes_for_distinct_endpoints(self):
        with pytest.raises(ScenarioError, match="at least 2"):
            generate_requests(_traffic(), NODES[:1])
