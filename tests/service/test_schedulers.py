"""Request schedulers: registry contract and dispatch-order disciplines."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.network.geometry import Coordinate
from repro.scenarios.spec import SCHEDULER_NAMES
from repro.service.arrivals import ServiceRequest
from repro.service.schedulers import (
    FidelityScheduler,
    FifoScheduler,
    PriorityScheduler,
    RequestScheduler,
    create_scheduler,
    register_scheduler,
    scheduler_descriptions,
    scheduler_names,
)


def _request(request_id, *, priority=0, target_fidelity=None):
    return ServiceRequest(
        request_id=request_id,
        tenant="t",
        arrival_us=float(request_id),
        channels=1,
        source=Coordinate(0, 0),
        dest=Coordinate(1, 0),
        priority=priority,
        target_fidelity=target_fidelity,
    )


def _drain(scheduler):
    order = []
    while len(scheduler):
        order.append(scheduler.pop().request_id)
    return order


class TestRegistry:
    def test_builtin_schedulers_are_registered(self):
        assert scheduler_names() == ("fidelity", "fifo", "priority")

    def test_registry_matches_spec_scheduler_names(self):
        # The scenario schema keeps a literal copy so validating a spec never
        # imports the service stack; this pins the two in sync.
        assert set(scheduler_names()) == set(SCHEDULER_NAMES)

    def test_descriptions_are_one_liners(self):
        for name, description in scheduler_descriptions().items():
            assert description, f"scheduler {name} has no description"
            assert "\n" not in description

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown request scheduler"):
            create_scheduler("bogus")

    def test_create_dispatches(self):
        assert isinstance(create_scheduler("fifo"), FifoScheduler)
        assert isinstance(create_scheduler("priority"), PriorityScheduler)
        assert isinstance(create_scheduler("fidelity"), FidelityScheduler)

    def test_register_rejects_anonymous_scheduler(self):
        class Nameless(RequestScheduler):
            def push(self, request):
                pass

            def pop(self):
                raise SimulationError("empty")

            def __len__(self):
                return 0

        with pytest.raises(ConfigurationError, match="distinct 'name'"):
            register_scheduler(Nameless)


class TestDisciplines:
    def test_fifo_preserves_push_order(self):
        scheduler = FifoScheduler()
        for request_id in (3, 1, 2):
            scheduler.push(_request(request_id))
        assert _drain(scheduler) == [3, 1, 2]

    def test_priority_ranks_then_fifo_within_rank(self):
        scheduler = PriorityScheduler()
        scheduler.push(_request(0, priority=2))
        scheduler.push(_request(1, priority=0))
        scheduler.push(_request(2, priority=2))
        scheduler.push(_request(3, priority=1))
        assert _drain(scheduler) == [1, 3, 0, 2]

    def test_fidelity_tightest_class_first_classless_last(self):
        scheduler = FidelityScheduler()
        scheduler.push(_request(0))
        scheduler.push(_request(1, target_fidelity=0.99))
        scheduler.push(_request(2, target_fidelity=0.9999))
        scheduler.push(_request(3))
        assert _drain(scheduler) == [2, 1, 0, 3]

    def test_fidelity_is_fifo_within_a_class(self):
        scheduler = FidelityScheduler()
        for request_id in range(4):
            scheduler.push(_request(request_id, target_fidelity=0.999))
        assert _drain(scheduler) == [0, 1, 2, 3]

    def test_pop_on_empty_raises(self):
        for name in scheduler_names():
            with pytest.raises(SimulationError, match="empty request queue"):
                create_scheduler(name).pop()

    def test_len_tracks_queue_depth(self):
        scheduler = create_scheduler("priority")
        assert len(scheduler) == 0
        scheduler.push(_request(0))
        scheduler.push(_request(1))
        assert len(scheduler) == 2
        scheduler.pop()
        assert len(scheduler) == 1
