"""ServiceSimulator end-to-end: conservation, determinism, backend parity."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import get_scenario
from repro.scenarios.run import build_machine
from repro.scenarios.spec import TrafficSpec
from repro.service import ServiceResult, ServiceSimulator, completion_time_percentiles
from repro.trace import CANONICAL_KINDS, TraceBus

TRAFFIC = TrafficSpec.from_dict(
    {
        "duration_us": 3000.0,
        "seed": 4,
        "max_inflight": 2,
        "tenants": {
            "alpha": {"arrival_process": "poisson", "mean_interarrival_us": 500.0},
            "beta": {"arrival_process": "fixed", "mean_interarrival_us": 800.0},
        },
    }
)


def _machine():
    return build_machine(get_scenario("smoke"))


def _run(traffic=TRAFFIC, *, backend="fluid", trace=None):
    return ServiceSimulator(_machine(), backend=backend).run(traffic, trace=trace)


class TestServiceRun:
    def test_lifecycle_conservation_with_always_admit(self):
        result = _run()
        metrics = result.metrics
        assert result.offered > 0
        assert result.admitted == result.offered
        assert result.dropped == 0
        assert result.completed == result.admitted
        assert metrics["completed_channels"] == metrics["offered_channels"]
        assert result.channel_count == metrics["completed_channels"]

    def test_makespan_covers_the_drain(self):
        result = _run()
        assert result.makespan_us >= result.duration_us or result.completed == 0
        assert result.delivered_fidelities() == []  # smoke has no noise section

    def test_completion_order_is_deterministic(self):
        first = _run()
        second = _run()
        assert first.completion_order == second.completion_order
        assert first.metrics == second.metrics

    def test_both_backends_complete_the_same_requests(self):
        fluid = _run(backend="fluid")
        detailed = _run(backend="detailed")
        assert fluid.backend == "fluid"
        assert detailed.backend == "detailed"
        assert sorted(fluid.completion_order) == sorted(detailed.completion_order)
        assert fluid.metrics["offered"] == detailed.metrics["offered"]

    def test_queue_bound_admission_drops_under_pressure(self):
        traffic = TrafficSpec.from_dict(
            {
                "duration_us": 3000.0,
                "seed": 4,
                "max_inflight": 1,
                "admission": "queue_bound",
                "queue_limit": 1,
                "tenants": {
                    "hot": {"arrival_process": "fixed", "mean_interarrival_us": 40.0}
                },
            }
        )
        result = _run(traffic)
        assert result.dropped > 0
        assert result.admitted + result.dropped == result.offered
        assert result.completed == result.admitted
        reasons = result.metrics["tenants"]["hot"]["drop_reasons"]
        assert reasons == {"queue_full": result.dropped}

    def test_trace_bus_must_accept_request_kinds(self):
        narrow = TraceBus(kinds=("run_end",), keep_records=False)
        with pytest.raises(ConfigurationError, match="request-lifecycle"):
            _run(trace=narrow)

    def test_canonical_bus_carries_the_request_lifecycle(self):
        bus = TraceBus(kinds=CANONICAL_KINDS)
        result = _run(trace=bus)
        kinds = {record.kind for record in bus.records}
        assert {"req_arrive", "req_admit", "req_dispatch", "req_complete"} <= kinds
        arrivals = [r for r in bus.records if r.kind == "req_arrive"]
        assert len(arrivals) == result.offered

    def test_result_duck_types_simulation_result(self):
        # The verify harness and CLI lean on these SimulationResult fields.
        result = _run()
        assert isinstance(result, ServiceResult)
        assert result.operation_count == result.completed
        assert result.channel_count == len(result.channels)
        assert result.resource_utilisation
        assert all(0.0 <= v <= 1.0 for v in result.resource_utilisation.values())
        assert result.fidelity_summary() is None
        assert "requests" in result.metadata

    def test_percentile_helper_matches_metrics(self):
        result = _run()
        p50, p99 = completion_time_percentiles(result)
        assert p50 == result.metrics["latency_p50_us"]
        assert p99 == result.metrics["latency_p99_us"]
        assert 0.0 < p50 <= p99

    def test_describe_renders_the_steady_state(self):
        text = _run().describe()
        assert "offered load" in text
        assert "alpha" in text and "beta" in text


class TestNoiseTrackedService:
    def test_noise_section_yields_fidelity_summary(self):
        spec = get_scenario("service_smoke")
        assert spec.traffic is not None
        machine = build_machine(spec)
        result = ServiceSimulator(machine).run(spec.traffic)
        summary = result.fidelity_summary()
        if machine.track_fidelity:
            assert summary is not None
            assert 0.0 < summary["min"] <= summary["mean"] <= 1.0
        else:
            assert summary is None
