"""Tests for EPR generation, the noise model helpers and threshold checks."""

import pytest

from repro.physics.epr import EPRPair, generate_pair, generation_fidelity, generation_state, generation_time
from repro.physics.gates import NoiseModel
from repro.physics.parameters import IonTrapParameters
from repro.physics.states import BellDiagonalState
from repro.physics.threshold import check_fidelity, check_state, meets_threshold


class TestGeneration:
    def test_eq4_formula(self):
        params = IonTrapParameters.default()
        expected = (1 - 1e-8) * (1 - 1e-7) * params.zero_prep_fidelity
        assert generation_fidelity(params) == pytest.approx(expected)

    def test_zero_prep_override(self):
        params = IonTrapParameters.default()
        assert generation_fidelity(params, zero_prep_fidelity=0.9) < 0.91

    def test_generation_state_is_werner(self):
        state = generation_state()
        assert state.psi_plus == pytest.approx(state.phi_minus)

    def test_generation_time_matches_table1(self):
        assert generation_time() == pytest.approx(122.0, rel=0.02)


class TestEPRPair:
    def test_generate_pair_has_unique_ids(self):
        a, b = generate_pair(), generate_pair()
        assert a.pair_id != b.pair_id

    def test_after_move_accumulates_distance_and_error(self):
        pair = generate_pair()
        moved = pair.after_move(600)
        assert moved.moved_cells == 600
        assert moved.fidelity < pair.fidelity

    def test_after_teleport_hop_increments_counter(self):
        pair = generate_pair()
        hopped = pair.after_teleport_hop(pair.state)
        assert hopped.teleport_hops == 1

    def test_after_purification_increments_counter(self):
        pair = generate_pair()
        purified = pair.after_purification(BellDiagonalState.werner(0.9999))
        assert purified.purification_rounds == 1

    def test_meets_threshold(self):
        good = EPRPair(state=BellDiagonalState.werner(0.99999))
        bad = EPRPair(state=BellDiagonalState.werner(0.99))
        assert good.meets_threshold()
        assert not bad.meets_threshold()

    def test_locations_tracking(self):
        pair = generate_pair(generator="G(1,1)").at_locations("T(0,0)", "T(2,2)")
        assert pair.locations == ("T(0,0)", "T(2,2)")


class TestNoiseModel:
    def test_two_qubit_gate_noise_reduces_fidelity(self):
        noise = NoiseModel(IonTrapParameters.default())
        state = BellDiagonalState.perfect()
        assert noise.after_two_qubit_gate(state).fidelity < 1.0

    def test_measurement_flip_probability_small(self):
        noise = NoiseModel(IonTrapParameters.default())
        assert noise.measurement_flip_probability(2) == pytest.approx(2e-8, rel=0.01)

    def test_measurement_flip_zero_measurements(self):
        noise = NoiseModel(IonTrapParameters.default())
        assert noise.measurement_flip_probability(0) == 0.0

    def test_teleport_operation_noise_bounded(self):
        noise = NoiseModel(IonTrapParameters.default())
        out = noise.teleport_operation_noise(BellDiagonalState.perfect())
        assert 1 - out.fidelity < 1e-6


class TestThreshold:
    def test_check_fidelity_margin(self):
        check = check_fidelity(1 - 1e-5)
        assert check.satisfied
        assert check.margin > 0

    def test_check_fidelity_failure(self):
        check = check_fidelity(1 - 1e-3)
        assert not check.satisfied
        assert check.margin < 0

    def test_check_state(self):
        assert check_state(BellDiagonalState.werner(0.99999)).satisfied

    def test_meets_threshold_uses_params(self):
        lenient = IonTrapParameters(threshold_error=0.01)
        assert meets_threshold(0.995, lenient)
        assert not meets_threshold(0.995)
