"""Tests for the DEJMPS and BBPSSW purification protocols."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.parameters import ErrorRates, IonTrapParameters
from repro.physics.purification import BBPSSWProtocol, DEJMPSProtocol, get_protocol
from repro.physics.states import BellDiagonalState

NOISELESS = IonTrapParameters(
    errors=ErrorRates(one_qubit_gate=0.0, two_qubit_gate=0.0, move_cell=0.0, measure=0.0),
    purify_move_cells=0,
)


@pytest.fixture
def dejmps():
    return get_protocol("dejmps", IonTrapParameters.default())


@pytest.fixture
def bbpssw():
    return get_protocol("bbpssw", IonTrapParameters.default())


class TestFactory:
    def test_get_protocol_by_name(self):
        assert isinstance(get_protocol("dejmps"), DEJMPSProtocol)
        assert isinstance(get_protocol("BBPSSW"), BBPSSWProtocol)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            get_protocol("nested")


class TestSingleRound:
    def test_round_improves_werner_fidelity(self, dejmps, bbpssw):
        state = BellDiagonalState.werner(0.9)
        assert dejmps.purify_identical(state).fidelity > 0.9
        assert bbpssw.purify_identical(state).fidelity > 0.9

    def test_success_probability_reasonable(self, dejmps):
        outcome = dejmps.purify_identical(BellDiagonalState.werner(0.95))
        assert 0.8 < outcome.success_probability <= 1.0

    def test_expected_input_pairs_above_two(self, dejmps):
        outcome = dejmps.purify_identical(BellDiagonalState.werner(0.9))
        assert outcome.expected_input_pairs > 2.0

    def test_noiseless_dejmps_converges_to_one(self):
        protocol = DEJMPSProtocol(NOISELESS, noisy=False)
        state = BellDiagonalState.werner(0.9)
        for _ in range(12):
            state = protocol.purify_identical(state).state
        assert state.fidelity > 1 - 1e-9

    def test_noiseless_bbpssw_converges_to_one(self):
        protocol = BBPSSWProtocol(NOISELESS, noisy=False)
        state = BellDiagonalState.werner(0.9)
        for _ in range(80):
            state = protocol.purify_identical(state).state
        assert state.fidelity > 1 - 1e-6

    def test_output_normalised(self, dejmps):
        outcome = dejmps.purify_identical(BellDiagonalState(0.9, 0.06, 0.03, 0.01))
        assert sum(outcome.state.coefficients) == pytest.approx(1.0)


class TestConvergenceShape:
    """The Figure 8 qualitative claims."""

    def test_dejmps_reaches_floor_within_few_rounds(self, dejmps):
        errors = dejmps.error_series(BellDiagonalState.werner(0.99), 10)
        floor = min(errors)
        # Within 5 rounds DEJMPS is essentially at its floor.
        assert errors[5] <= floor * 2

    def test_bbpssw_needs_many_more_rounds(self, dejmps, bbpssw):
        state = BellDiagonalState.werner(0.99)
        target = 1 - 7.5e-5
        dejmps_rounds = dejmps.rounds_to_fidelity(state, target)
        bbpssw_rounds = bbpssw.rounds_to_fidelity(state, target)
        assert dejmps_rounds is not None and bbpssw_rounds is not None
        assert bbpssw_rounds >= 3 * dejmps_rounds

    def test_dejmps_floor_below_bbpssw_floor(self, dejmps, bbpssw):
        state = BellDiagonalState.werner(0.99)
        assert dejmps.max_achievable_fidelity(state) > bbpssw.max_achievable_fidelity(state)

    def test_bbpssw_error_ratio_near_two_thirds(self, bbpssw):
        # Near F = 1 the BBPSSW recurrence reduces error by ~2/3 per round.
        errors = bbpssw.error_series(BellDiagonalState.werner(0.999), 3)
        ratio = errors[1] / errors[0]
        assert 0.6 < ratio < 0.75

    def test_floor_set_by_operation_errors(self):
        good = get_protocol("dejmps", IonTrapParameters.default())
        bad = get_protocol("dejmps", IonTrapParameters.uniform_error(1e-4))
        state = BellDiagonalState.werner(0.99)
        assert good.max_achievable_fidelity(state) > bad.max_achievable_fidelity(state)

    def test_higher_initial_fidelity_needs_fewer_rounds(self, dejmps):
        target = 1 - 7.5e-5
        r_low = dejmps.rounds_to_fidelity(BellDiagonalState.werner(0.99), target)
        r_high = dejmps.rounds_to_fidelity(BellDiagonalState.werner(0.9999), target)
        assert r_high <= r_low


class TestRoundsToFidelity:
    def test_already_above_target_needs_zero_rounds(self, dejmps):
        state = BellDiagonalState.werner(0.99999)
        assert dejmps.rounds_to_fidelity(state, 1 - 7.5e-5) == 0

    def test_unreachable_target_returns_none(self):
        protocol = get_protocol("dejmps", IonTrapParameters.uniform_error(1e-3))
        state = BellDiagonalState.werner(0.99)
        assert protocol.rounds_to_fidelity(state, 1 - 7.5e-5) is None

    def test_iterate_rejects_negative_rounds(self, dejmps):
        with pytest.raises(ConfigurationError):
            dejmps.iterate(BellDiagonalState.werner(0.99), -1)

    def test_error_series_starts_at_input(self, dejmps):
        series = dejmps.error_series(BellDiagonalState.werner(0.99), 4)
        assert series[0] == pytest.approx(0.01)
        assert len(series) == 5
