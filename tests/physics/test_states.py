"""Tests for the Bell-diagonal / Werner state algebra."""

import pytest

from repro.errors import FidelityError
from repro.physics.states import BellDiagonalState, WernerState


class TestConstruction:
    def test_perfect_state(self):
        state = BellDiagonalState.perfect()
        assert state.fidelity == 1.0
        assert state.error == 0.0

    def test_maximally_mixed(self):
        state = BellDiagonalState.maximally_mixed()
        assert state.fidelity == pytest.approx(0.25)

    def test_werner_spreads_error_evenly(self):
        state = BellDiagonalState.werner(0.97)
        assert state.fidelity == pytest.approx(0.97)
        assert state.psi_plus == pytest.approx(0.01)
        assert state.psi_minus == pytest.approx(0.01)
        assert state.phi_minus == pytest.approx(0.01)

    def test_from_error_with_custom_split(self):
        state = BellDiagonalState.from_error(0.3, split=(1.0, 0.0, 0.0))
        assert state.psi_plus == pytest.approx(0.3)
        assert state.psi_minus == 0.0

    def test_from_coefficients_normalises(self):
        state = BellDiagonalState.from_coefficients([2.0, 1.0, 1.0, 0.0])
        assert sum(state.coefficients) == pytest.approx(1.0)
        assert state.fidelity == pytest.approx(0.5)

    def test_rejects_negative_coefficient(self):
        with pytest.raises(FidelityError):
            BellDiagonalState(1.1, -0.1, 0.0, 0.0)

    def test_rejects_unnormalised(self):
        with pytest.raises(FidelityError):
            BellDiagonalState(0.5, 0.1, 0.1, 0.1)

    def test_rejects_bad_werner_fidelity(self):
        with pytest.raises(FidelityError):
            BellDiagonalState.werner(1.2)


class TestChannels:
    def test_depolarize_mixes_toward_quarter(self):
        state = BellDiagonalState.perfect().depolarize(1.0)
        assert state.fidelity == pytest.approx(0.25)

    def test_depolarize_zero_is_identity(self):
        state = BellDiagonalState.werner(0.9)
        assert state.depolarize(0.0).coefficients == pytest.approx(state.coefficients)

    def test_local_depolarize_reduces_fidelity(self):
        state = BellDiagonalState.perfect().local_depolarize(0.1)
        assert state.fidelity == pytest.approx(0.9)
        assert sum(state.coefficients) == pytest.approx(1.0)

    def test_dephase_moves_weight_to_phi_minus(self):
        state = BellDiagonalState.perfect().dephase(0.2)
        assert state.phi_minus == pytest.approx(0.2)
        assert state.psi_plus == 0.0

    def test_bit_flip_moves_weight_to_psi_plus(self):
        state = BellDiagonalState.perfect().bit_flip(0.2)
        assert state.psi_plus == pytest.approx(0.2)

    def test_movement_decay_matches_eq1(self):
        # Eq. 1: F_new = F_old * (1 - p)^D
        state = BellDiagonalState.perfect().movement_decay(1e-6, 1000)
        assert state.fidelity == pytest.approx((1 - 1e-6) ** 1000)

    def test_movement_decay_preserves_normalisation(self):
        state = BellDiagonalState.werner(0.98).movement_decay(1e-4, 500)
        assert sum(state.coefficients) == pytest.approx(1.0)

    def test_movement_zero_cells_is_identity(self):
        state = BellDiagonalState.werner(0.9)
        assert state.movement_decay(1e-6, 0).fidelity == pytest.approx(0.9)

    def test_mix(self):
        a = BellDiagonalState.perfect()
        b = BellDiagonalState.maximally_mixed()
        mixed = a.mix(b, 0.5)
        assert mixed.fidelity == pytest.approx(0.625)

    def test_permute_errors(self):
        state = BellDiagonalState(0.9, 0.06, 0.03, 0.01)
        swapped = state.permute_errors((2, 1, 0))
        assert swapped.psi_plus == pytest.approx(0.01)
        assert swapped.phi_minus == pytest.approx(0.06)
        assert swapped.fidelity == pytest.approx(0.9)

    def test_permute_errors_rejects_bad_order(self):
        with pytest.raises(FidelityError):
            BellDiagonalState.werner(0.9).permute_errors((0, 0, 1))

    def test_sorted_errors_descending(self):
        state = BellDiagonalState(0.9, 0.01, 0.06, 0.03)
        result = state.sorted_errors()
        assert result.psi_plus <= result.psi_minus <= result.phi_minus

    def test_twirl_preserves_fidelity(self):
        state = BellDiagonalState(0.9, 0.08, 0.01, 0.01)
        assert state.twirl().fidelity == pytest.approx(0.9)

    def test_rejects_invalid_probability(self):
        with pytest.raises(FidelityError):
            BellDiagonalState.perfect().depolarize(1.5)


class TestWernerState:
    def test_round_trip_to_bell_diagonal(self):
        werner = WernerState(0.95)
        assert werner.to_bell_diagonal().fidelity == pytest.approx(0.95)

    def test_depolarize(self):
        werner = WernerState(1.0).depolarize(0.4)
        assert werner.fidelity == pytest.approx(0.7)

    def test_error_property(self):
        assert WernerState(0.99).error == pytest.approx(0.01)

    def test_rejects_invalid_fidelity(self):
        with pytest.raises(FidelityError):
            WernerState(-0.1)
