"""Tests for repro.physics.parameters and repro.physics.constants."""

import pytest

from repro.errors import ConfigurationError
from repro.physics import constants as C
from repro.physics.parameters import ErrorRates, IonTrapParameters, OperationTimes


class TestOperationTimes:
    def test_defaults_match_table1(self):
        times = OperationTimes()
        assert times.one_qubit_gate == 1.0
        assert times.two_qubit_gate == 20.0
        assert times.move_cell == 0.2
        assert times.measure == 100.0

    def test_teleport_time_matches_table1(self):
        # Eq. 5: 2*t_1q + t_2q + t_ms = 122 us, the Table 1 value.
        assert OperationTimes().teleport(0.0) == pytest.approx(122.0)

    def test_purify_round_matches_table1(self):
        # Eq. 6: t_2q + t_ms = 120 us, which the paper rounds to ~121 us.
        assert OperationTimes().purify_round(0.0) == pytest.approx(120.0)

    def test_generate_time_close_to_table1(self):
        assert OperationTimes().generate == pytest.approx(122.0, rel=0.02)

    def test_teleport_time_grows_with_distance(self):
        times = OperationTimes()
        assert times.teleport(10_000) > times.teleport(0)

    def test_ballistic_time_linear_in_distance(self):
        times = OperationTimes()
        assert times.ballistic(600) == pytest.approx(120.0)
        assert times.ballistic(1200) == pytest.approx(2 * times.ballistic(600))

    def test_classical_much_faster_than_ballistic(self):
        times = OperationTimes()
        assert times.classical(600) < times.ballistic(600) / 100

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            OperationTimes().teleport(-1)

    def test_rejects_non_positive_gate_time(self):
        with pytest.raises(ConfigurationError):
            OperationTimes(one_qubit_gate=0.0)


class TestErrorRates:
    def test_defaults_match_table2(self):
        errors = ErrorRates()
        assert errors.one_qubit_gate == 1e-8
        assert errors.two_qubit_gate == 1e-7
        assert errors.move_cell == 1e-6
        assert errors.measure == 1e-8

    def test_uniform_sets_all_rates(self):
        errors = ErrorRates.uniform(1e-5)
        assert errors.one_qubit_gate == 1e-5
        assert errors.two_qubit_gate == 1e-5
        assert errors.move_cell == 1e-5
        assert errors.measure == 1e-5

    def test_scaled_multiplies_rates(self):
        errors = ErrorRates().scaled(10)
        assert errors.move_cell == pytest.approx(1e-5)

    def test_scaled_clips_below_one(self):
        errors = ErrorRates.uniform(0.5).scaled(10)
        assert errors.move_cell < 1.0

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ConfigurationError):
            ErrorRates().scaled(-1)

    def test_rejects_probability_of_one(self):
        with pytest.raises(ConfigurationError):
            ErrorRates(move_cell=1.0)

    def test_rejects_negative_probability(self):
        with pytest.raises(ConfigurationError):
            ErrorRates(measure=-0.1)


class TestIonTrapParameters:
    def test_default_threshold(self):
        params = IonTrapParameters.default()
        assert params.threshold_error == pytest.approx(7.5e-5)
        assert params.threshold_fidelity == pytest.approx(1 - 7.5e-5)

    def test_uniform_error_sets_preparation_by_default(self):
        params = IonTrapParameters.uniform_error(1e-4)
        assert params.errors.move_cell == 1e-4
        assert params.zero_prep_fidelity == pytest.approx(1 - 1e-4)

    def test_uniform_error_can_exclude_preparation(self):
        params = IonTrapParameters.uniform_error(1e-4, include_preparation=False)
        assert params.zero_prep_fidelity == C.DEFAULT_ZERO_PREP_FIDELITY

    def test_with_hop_cells_returns_copy(self):
        params = IonTrapParameters.default()
        other = params.with_hop_cells(300)
        assert other.cells_per_hop == 300
        assert params.cells_per_hop == 600

    def test_with_errors_returns_copy(self):
        params = IonTrapParameters.default()
        other = params.with_errors(ErrorRates.uniform(1e-3))
        assert other.errors.move_cell == 1e-3
        assert params.errors.move_cell == 1e-6

    def test_rejects_bad_zero_prep_fidelity(self):
        with pytest.raises(ConfigurationError):
            IonTrapParameters(zero_prep_fidelity=0.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            IonTrapParameters(threshold_error=1.5)

    def test_rejects_non_positive_hop_cells(self):
        with pytest.raises(ConfigurationError):
            IonTrapParameters(cells_per_hop=0)

    def test_describe_mentions_key_values(self):
        text = IonTrapParameters.default().describe()
        assert "threshold" in text
        assert "600" in text

    def test_frozen_dataclass(self):
        params = IonTrapParameters.default()
        with pytest.raises(AttributeError):
            params.cells_per_hop = 100  # type: ignore[misc]
