"""Tests for tree/queue purification cost accounting."""

import pytest

from repro.errors import ConfigurationError, InfeasibleError
from repro.physics.parameters import IonTrapParameters
from repro.physics.purification import get_protocol
from repro.physics.purification_tree import (
    build_schedule,
    expected_pairs_for_rounds,
    hardware_purifiers_for_tree,
    schedule_to_threshold,
)
from repro.physics.states import BellDiagonalState


@pytest.fixture
def protocol():
    return get_protocol("dejmps", IonTrapParameters.default())


class TestExpectedPairs:
    def test_zero_rounds_costs_one_pair(self):
        assert expected_pairs_for_rounds([]) == 1.0

    def test_cost_exceeds_power_of_two(self, protocol):
        outcomes = protocol.iterate(BellDiagonalState.werner(0.95), 3)
        cost = expected_pairs_for_rounds(outcomes)
        assert cost > 8.0
        assert cost < 12.0

    def test_cost_is_monotone_in_rounds(self, protocol):
        state = BellDiagonalState.werner(0.95)
        costs = [
            expected_pairs_for_rounds(protocol.iterate(state, rounds))
            for rounds in range(5)
        ]
        assert costs == sorted(costs)


class TestSchedule:
    def test_schedule_reaches_threshold(self, protocol):
        params = IonTrapParameters.default()
        state = BellDiagonalState.werner(0.97)
        schedule = schedule_to_threshold(protocol, state, params=params)
        assert schedule.output_fidelity >= params.threshold_fidelity
        assert schedule.rounds >= 1

    def test_schedule_is_minimal(self, protocol):
        params = IonTrapParameters.default()
        state = BellDiagonalState.werner(0.97)
        schedule = schedule_to_threshold(protocol, state, params=params)
        if schedule.rounds > 0:
            shorter = build_schedule(protocol, state, schedule.rounds - 1)
            assert shorter.output_fidelity < params.threshold_fidelity

    def test_infeasible_raises(self):
        protocol = get_protocol("dejmps", IonTrapParameters.uniform_error(1e-3))
        state = BellDiagonalState.werner(0.99)
        with pytest.raises(InfeasibleError):
            schedule_to_threshold(protocol, state)

    def test_build_schedule_zero_rounds(self, protocol):
        state = BellDiagonalState.werner(0.999)
        schedule = build_schedule(protocol, state, 0)
        assert schedule.output_state is state
        assert schedule.expected_input_pairs == 1.0

    def test_build_schedule_rejects_negative(self, protocol):
        with pytest.raises(ConfigurationError):
            build_schedule(protocol, BellDiagonalState.werner(0.99), -1)

    def test_describe_mentions_rounds(self, protocol):
        schedule = build_schedule(protocol, BellDiagonalState.werner(0.99), 2)
        assert "rounds=2" in schedule.describe()


class TestHardwareCount:
    def test_queue_purifier_uses_depth_units(self):
        assert hardware_purifiers_for_tree(3) == 3

    def test_naive_tree_uses_exponential_units(self):
        assert hardware_purifiers_for_tree(3, queue_based=False) == 7

    def test_zero_rounds_needs_no_hardware(self):
        assert hardware_purifiers_for_tree(0) == 0

    def test_rejects_negative_rounds(self):
        with pytest.raises(ConfigurationError):
            hardware_purifiers_for_tree(-1)
