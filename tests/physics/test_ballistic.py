"""Tests for the ballistic transport model (Eqs. 1 and 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.ballistic import (
    ballistic_error,
    ballistic_fidelity,
    ballistic_move_state,
    ballistic_time,
    max_ballistic_distance,
)
from repro.physics.parameters import ErrorRates, IonTrapParameters
from repro.physics.states import BellDiagonalState


class TestFidelity:
    def test_eq1_exact(self):
        params = IonTrapParameters.default()
        assert ballistic_fidelity(1.0, 1000, params) == pytest.approx((1 - 1e-6) ** 1000)

    def test_zero_distance_is_identity(self):
        assert ballistic_fidelity(0.97, 0) == pytest.approx(0.97)

    def test_scales_with_initial_fidelity(self):
        assert ballistic_fidelity(0.5, 100) == pytest.approx(0.5 * ballistic_fidelity(1.0, 100))

    def test_paper_corner_to_corner_claim(self):
        # A 1000x1000 grid corner-to-corner trip (~2000 cells) exceeds 1e-3 error.
        assert ballistic_error(0.0, 1998) > 1e-3

    def test_single_cell_error_close_to_pmv(self):
        assert ballistic_error(0.0, 1) == pytest.approx(1e-6, rel=1e-6)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            ballistic_fidelity(1.0, -5)


class TestTime:
    def test_eq2_linear(self):
        assert ballistic_time(600) == pytest.approx(120.0)
        assert ballistic_time(1) == pytest.approx(0.2)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            ballistic_time(-1)


class TestStateMovement:
    def test_state_fidelity_matches_scalar_model(self):
        params = IonTrapParameters.default()
        state = ballistic_move_state(BellDiagonalState.perfect(), 500, params)
        assert state.fidelity == pytest.approx(ballistic_fidelity(1.0, 500, params))

    def test_normalisation_preserved(self):
        state = ballistic_move_state(BellDiagonalState.werner(0.99), 2000)
        assert sum(state.coefficients) == pytest.approx(1.0)


class TestMaxDistance:
    def test_budget_bound_is_consistent(self):
        params = IonTrapParameters.default()
        distance = max_ballistic_distance(1e-3, params)
        assert ballistic_error(0.0, distance, params) <= 1e-3
        assert ballistic_error(0.0, distance + 1, params) > 1e-3 * 0.999

    def test_higher_error_rate_shortens_distance(self):
        worse = IonTrapParameters(errors=ErrorRates(move_cell=1e-5))
        assert max_ballistic_distance(1e-3, worse) < max_ballistic_distance(
            1e-3, IonTrapParameters.default()
        )

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            max_ballistic_distance(0.0)
