"""Tests for fidelity helpers and Werner-parameter algebra."""

import pytest

from repro.errors import FidelityError
from repro.physics.fidelity import (
    clamp_fidelity,
    combine_werner,
    error_to_fidelity,
    fidelity_from_werner_parameter,
    fidelity_to_error,
    validate_error,
    validate_fidelity,
    werner_parameter,
)


class TestValidation:
    def test_validate_fidelity_accepts_bounds(self):
        assert validate_fidelity(0.0) == 0.0
        assert validate_fidelity(1.0) == 1.0

    def test_validate_fidelity_rejects_out_of_range(self):
        with pytest.raises(FidelityError):
            validate_fidelity(1.0001)
        with pytest.raises(FidelityError):
            validate_fidelity(-0.0001)

    def test_validate_error_rejects_out_of_range(self):
        with pytest.raises(FidelityError):
            validate_error(2.0)

    def test_non_finite_inputs_rejected(self):
        # Regression: NaN compares False against both bounds, so only an
        # explicit finiteness check classifies it; infinities must fail with
        # the same clear message rather than a generic range error.
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(FidelityError, match="finite"):
                validate_fidelity(bad)
            with pytest.raises(FidelityError, match="finite"):
                validate_error(bad)

    def test_werner_parameter_inverse_rejects_non_finite(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(FidelityError, match="finite"):
                fidelity_from_werner_parameter(bad)

    def test_clamp_rejects_nan_but_clamps_infinities(self):
        with pytest.raises(FidelityError, match="NaN"):
            clamp_fidelity(float("nan"))
        assert clamp_fidelity(float("inf")) == 1.0
        assert clamp_fidelity(float("-inf")) == 0.0

    def test_bell_state_rejects_nan_coefficients(self):
        from repro.physics.states import BellDiagonalState

        with pytest.raises(FidelityError, match="finite"):
            BellDiagonalState(float("nan"), 0.0, 0.0, 0.0)

    def test_conversions_are_inverse(self):
        assert fidelity_to_error(0.999) == pytest.approx(0.001)
        assert error_to_fidelity(0.001) == pytest.approx(0.999)
        assert error_to_fidelity(fidelity_to_error(0.42)) == pytest.approx(0.42)


class TestWernerAlgebra:
    def test_werner_parameter_at_extremes(self):
        assert werner_parameter(1.0) == pytest.approx(1.0)
        assert werner_parameter(0.25) == pytest.approx(0.0)

    def test_round_trip(self):
        for fidelity in (0.3, 0.5, 0.9, 0.999):
            w = werner_parameter(fidelity)
            assert fidelity_from_werner_parameter(w) == pytest.approx(fidelity)

    def test_combine_werner_is_commutative(self):
        assert combine_werner(0.99, 0.95) == pytest.approx(combine_werner(0.95, 0.99))

    def test_combine_with_perfect_is_identity(self):
        assert combine_werner(0.97, 1.0) == pytest.approx(0.97)

    def test_combined_errors_approximately_add_when_small(self):
        f = combine_werner(1 - 1e-4, 1 - 2e-4)
        assert 1 - f == pytest.approx(3e-4, rel=0.05)

    def test_combine_never_exceeds_inputs(self):
        assert combine_werner(0.99, 0.98) <= 0.98 + 1e-12

    def test_rejects_invalid_werner_parameter(self):
        with pytest.raises(FidelityError):
            fidelity_from_werner_parameter(1.5)


class TestClamp:
    def test_clamp_inside_range(self):
        assert clamp_fidelity(0.5) == 0.5

    def test_clamp_above(self):
        assert clamp_fidelity(1.0000001) == 1.0

    def test_clamp_below(self):
        assert clamp_fidelity(-1e-9) == 0.0
