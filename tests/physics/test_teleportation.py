"""Tests for the teleportation model (Eqs. 3 and 5) and chained teleportation."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.parameters import ErrorRates, IonTrapParameters
from repro.physics.states import BellDiagonalState
from repro.physics.teleportation import (
    chained_teleport_state,
    chained_teleportation_fidelity,
    chained_teleportation_series,
    teleport_state,
    teleportation_fidelity,
    teleportation_time,
)

PERFECT_PARAMS = IonTrapParameters(
    errors=ErrorRates(one_qubit_gate=0.0, two_qubit_gate=0.0, move_cell=0.0, measure=0.0)
)


class TestEquation3:
    def test_perfect_everything_is_lossless(self):
        assert teleportation_fidelity(1.0, 1.0, PERFECT_PARAMS) == pytest.approx(1.0)

    def test_epr_error_transfers_to_data(self):
        f = teleportation_fidelity(1.0, 1 - 1e-3, PERFECT_PARAMS)
        assert 1 - f == pytest.approx(1e-3, rel=0.35)

    def test_formula_matches_direct_evaluation(self):
        params = IonTrapParameters.default()
        f_old, f_epr = 0.999, 0.995
        p1q, p2q, pms = (
            params.errors.one_qubit_gate,
            params.errors.two_qubit_gate,
            params.errors.measure,
        )
        expected = 0.25 * (
            1
            + 3
            * (1 - p1q)
            * (1 - p2q)
            * ((4 * (1 - pms) ** 2 - 1) / 3)
            * ((4 * f_old - 1) * (4 * f_epr - 1) / 9)
        )
        assert teleportation_fidelity(f_old, f_epr, params) == pytest.approx(expected)

    def test_maximally_mixed_epr_gives_quarter(self):
        assert teleportation_fidelity(1.0, 0.25, PERFECT_PARAMS) == pytest.approx(0.25)

    def test_monotone_in_epr_fidelity(self):
        params = IonTrapParameters.default()
        values = [teleportation_fidelity(0.999, f) for f in (0.9, 0.95, 0.99, 0.999)]
        assert values == sorted(values)

    def test_gate_errors_bound_the_output(self):
        params = IonTrapParameters.default()
        f = teleportation_fidelity(1.0, 1.0, params)
        floor = params.errors.two_qubit_gate
        assert 1 - f >= floor * 0.5
        assert 1 - f < 1e-5


class TestEquation5:
    def test_base_latency_is_122us(self):
        assert teleportation_time(0.0) == pytest.approx(122.0)

    def test_classical_term_grows_with_distance(self):
        assert teleportation_time(100_000) > teleportation_time(0.0)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            teleportation_time(-1)


class TestStateLevel:
    def test_teleport_state_matches_scalar_for_werner(self):
        params = IonTrapParameters.default()
        data = BellDiagonalState.werner(0.999)
        epr = BellDiagonalState.werner(0.995)
        state = teleport_state(data, epr, params)
        scalar = teleportation_fidelity(0.999, 0.995, params)
        assert state.fidelity == pytest.approx(scalar, rel=1e-3)

    def test_composition_is_symmetric(self):
        a = BellDiagonalState.werner(0.99)
        b = BellDiagonalState.werner(0.98)
        assert teleport_state(a, b, PERFECT_PARAMS).fidelity == pytest.approx(
            teleport_state(b, a, PERFECT_PARAMS).fidelity
        )

    def test_x_errors_compose_by_group_structure(self):
        # An X error on the forwarded pair and an X error on the link cancel.
        a = BellDiagonalState(0.0, 1.0, 0.0, 0.0)
        b = BellDiagonalState(0.0, 1.0, 0.0, 0.0)
        out = teleport_state(a, b, PERFECT_PARAMS)
        assert out.fidelity == pytest.approx(1.0)

    def test_chained_state_matches_iterated_scalar(self):
        params = IonTrapParameters.default()
        link = BellDiagonalState.werner(0.999)
        state = chained_teleport_state(link, [link] * 5, params)
        scalar = chained_teleportation_fidelity(0.999, 5, 0.999, params)
        assert state.fidelity == pytest.approx(scalar, rel=1e-3)


class TestChained:
    def test_zero_hops_is_identity(self):
        assert chained_teleportation_fidelity(0.99, 0, 0.99) == pytest.approx(0.99)

    def test_error_grows_with_hops(self):
        series = chained_teleportation_series(1 - 1e-4, 64, 1 - 1e-4)
        errors = [1 - f for f in series]
        assert all(b >= a for a, b in zip(errors, errors[1:]))

    def test_paper_factor_of_100_claim(self):
        # 64 teleports at 1e-4 initial error increase error by roughly 100x.
        final = chained_teleportation_fidelity(1 - 1e-4, 64, 1 - 1e-4)
        amplification = (1 - final) / 1e-4
        assert 30 <= amplification <= 150

    def test_low_error_curves_floor_at_gate_error(self):
        params = IonTrapParameters.default()
        final = chained_teleportation_fidelity(1 - 1e-8, 64, 1 - 1e-8, params)
        # Dominated by per-hop gate/measurement error, well above the input error.
        assert (1 - final) > 1e-6
        assert (1 - final) < 1e-4

    def test_series_length(self):
        assert len(chained_teleportation_series(0.999, 10, 0.999)) == 11

    def test_rejects_negative_hops(self):
        with pytest.raises(ConfigurationError):
            chained_teleportation_fidelity(0.99, -1, 0.99)
