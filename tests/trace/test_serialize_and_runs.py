"""JSONL serialization and end-to-end traced simulation runs."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import build_machine, build_stream, get_scenario
from repro.sim.channel_setup import DetailedChannelSetup
from repro.sim.machine import QuantumMachine
from repro.sim.simulator import CommunicationSimulator
from repro.trace import (
    CANONICAL_KINDS,
    ChannelClosed,
    ChannelOpened,
    EprPairGenerated,
    EventDispatched,
    FlowRateChanged,
    OperationIssued,
    OperationRetired,
    PurificationMilestone,
    RunEnded,
    RunStarted,
    TeleportPerformed,
    TraceBus,
    WarmStartApplied,
    line_to_record,
    read_jsonl,
    record_to_line,
    trace_fingerprint,
    write_jsonl,
)


def _traced_smoke(allocator="incremental", kinds=None):
    spec = get_scenario("smoke")
    bus = TraceBus(kinds=kinds)
    result = CommunicationSimulator(build_machine(spec), allocator=allocator).run(
        build_stream(spec), trace=bus
    )
    return bus, result


class TestSerialization:
    def test_line_round_trip_is_exact(self):
        bus, _ = _traced_smoke()
        assert bus.records
        for record in bus.records:
            assert line_to_record(record_to_line(record)) == record

    def test_file_round_trip(self, tmp_path):
        bus, _ = _traced_smoke(kinds=CANONICAL_KINDS)
        path = str(tmp_path / "nested" / "smoke.jsonl")
        write_jsonl(path, bus.records)
        assert read_jsonl(path) == bus.records

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError):
            line_to_record("{not json")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_jsonl(str(tmp_path / "absent.jsonl"))

    def test_fingerprint_distinguishes_traces(self):
        bus, _ = _traced_smoke(kinds=CANONICAL_KINDS)
        assert trace_fingerprint(bus.records) != trace_fingerprint(bus.records[:-1])


class TestTracedFlowRuns:
    def test_untraced_run_unchanged(self):
        spec = get_scenario("smoke")
        plain = CommunicationSimulator(build_machine(spec)).run(build_stream(spec))
        bus, traced = _traced_smoke()
        assert traced.makespan_us == plain.makespan_us

    def test_run_brackets_and_op_channel_counts(self):
        bus, result = _traced_smoke()
        assert isinstance(bus.records[0], RunStarted)
        assert isinstance(bus.records[-1], RunEnded)
        assert bus.records[-1].makespan_us == result.makespan_us
        issues = bus.filtered([OperationIssued.kind])
        retires = bus.filtered([OperationRetired.kind])
        assert len(issues) == len(retires) == result.operation_count
        opens = bus.filtered([ChannelOpened.kind])
        closes = bus.filtered([ChannelClosed.kind])
        assert len(opens) == len(closes) == result.channel_count

    def test_channel_records_match_trace_timeline(self):
        bus, result = _traced_smoke()
        closes = bus.filtered([ChannelClosed.kind])
        assert [c.end_us for c in result.channels] == [r.t_us for r in closes]
        assert [c.hops for c in result.channels] == [r.hops for r in closes]

    def test_rate_changes_traced(self):
        bus, _ = _traced_smoke()
        rates = bus.filtered([FlowRateChanged.kind])
        assert rates
        assert all(rate.rate >= 0.0 for rate in rates)

    def test_event_dispatch_traced_when_wanted(self):
        bus, _ = _traced_smoke(kinds=[EventDispatched.kind])
        assert bus.records
        assert all(isinstance(record, EventDispatched) for record in bus.records)

    def test_identical_traces_across_allocators(self):
        # warm_start records reflect cross-run cache state (the first run
        # misses, later ones hit), so — like EventDispatched in goldens —
        # they are excluded from cross-run trace comparisons.
        def fingerprint(bus):
            return trace_fingerprint(
                [r for r in bus.records if r.kind != WarmStartApplied.kind]
            )

        inc, _ = _traced_smoke("incremental")
        ref, _ = _traced_smoke("reference")
        assert fingerprint(inc) == fingerprint(ref)

    def test_vectorized_trace_identical_up_to_heap_sequence(self):
        # The vectorized allocator keeps ONE chained completion event instead
        # of N per-flow ones, so heap insertion *sequence* numbers differ —
        # but every event still executes at the identical (time, priority)
        # and every non-bookkeeping record is bitwise identical.
        def normalised(bus):
            out = []
            for record in bus.records:
                if record.kind == WarmStartApplied.kind:
                    continue
                if isinstance(record, EventDispatched):
                    out.append(("event", record.t_us, record.priority))
                else:
                    out.append(record)
            return out

        inc, _ = _traced_smoke("incremental")
        vec, _ = _traced_smoke("vectorized")
        assert normalised(inc) == normalised(vec)

    def test_warm_start_traced_and_hits_on_repeat(self):
        first, _ = _traced_smoke()
        second, _ = _traced_smoke()
        records = second.filtered([WarmStartApplied.kind])
        assert len(records) == 1
        assert records[0].hit  # the first run populated the entry
        assert records[0].plans > 0


class TestTracedDetailedRuns:
    def test_detailed_components_emit_milestones(self):
        from repro.network.geometry import Coordinate

        machine = QuantumMachine(5, num_qubits=10)
        plan = machine.planner.plan(Coordinate(0, 0), Coordinate(3, 2))
        bus = TraceBus()
        window = machine.allocation.teleporter_spec.storage_cells
        result = DetailedChannelSetup(machine, plan, trace=bus, max_pairs_in_flight=window).run()
        generated = bus.filtered([EprPairGenerated.kind])
        purified = bus.filtered([PurificationMilestone.kind])
        teleports = bus.filtered([TeleportPerformed.kind])
        assert len(generated) >= result.raw_pairs_injected
        assert len(purified) == result.good_pairs_delivered
        assert len(teleports) == result.teleports_performed
        assert purified[-1].good_pairs == result.good_pairs_delivered
