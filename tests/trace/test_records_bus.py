"""Trace bus and typed record semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.machine import QuantumMachine
from repro.trace import (
    CANONICAL_KINDS,
    RECORD_TYPES,
    ChannelClosed,
    ChannelOpened,
    EventDispatched,
    FlowRateChanged,
    OperationIssued,
    OperationRetired,
    RunEnded,
    RunStarted,
    TraceBus,
    record_from_payload,
)


def _sample_records():
    return [
        RunStarted(
            t_us=0.0, machine="m", workload="w", width=3, height=3, topology="mesh",
            layout="home_base", allocation="t=g=2p (p=1)", num_qubits=6, operations=15,
        ),
        OperationIssued(t_us=0.0, op_index=0, qubit_a=1, qubit_b=2),
        ChannelOpened(t_us=0.0, flow_id=0, source=(1, 0), destination=(0, 0), hops=1,
                      purpose="visit"),
        FlowRateChanged(t_us=0.5, flow_id=0, rate=0.25),
        ChannelClosed(t_us=4.0, flow_id=0, source=(1, 0), destination=(0, 0), hops=1,
                      pairs_transited=392.0),
        OperationRetired(t_us=304.0, op_index=0, channel_count=2, total_hops=2),
        RunEnded(t_us=304.0, makespan_us=304.0, operations=1, channels=2),
    ]


class TestRecords:
    def test_every_kind_is_registered_and_distinct(self):
        kinds = [cls.kind for cls in RECORD_TYPES.values()]
        assert len(kinds) == len(set(kinds))
        assert CANONICAL_KINDS < set(RECORD_TYPES)

    def test_payload_round_trip(self):
        for record in _sample_records():
            payload = record.to_payload()
            assert payload["kind"] == record.kind
            assert record_from_payload(payload) == record

    def test_tuples_survive_payload_round_trip(self):
        record = ChannelOpened(
            t_us=1.0, flow_id=3, source=(2, 5), destination=(0, 1), hops=6, purpose="visit"
        )
        rebuilt = record_from_payload(record.to_payload())
        assert rebuilt.source == (2, 5)
        assert isinstance(rebuilt.source, tuple)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_payload({"kind": "nope", "t_us": 0.0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_payload({"kind": "op_issue", "t_us": 0.0, "bogus": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_payload({"kind": "op_issue", "t_us": 0.0})

    def test_machine_snapshot_is_run_header(self):
        machine = QuantumMachine(3, num_qubits=6)
        header = machine.trace_snapshot(workload="qft_6", operations=15)
        assert isinstance(header, RunStarted)
        assert header.width == header.height == 3
        assert header.workload == "qft_6"
        assert header.operations == 15
        assert header.machine == machine.describe()


class TestTraceBus:
    def test_collects_in_emission_order(self):
        bus = TraceBus()
        records = _sample_records()
        for record in records:
            bus.emit(record)
        assert bus.records == records
        assert len(bus) == len(records)

    def test_kind_filter_drops_unwanted(self):
        bus = TraceBus(kinds=CANONICAL_KINDS)
        for record in _sample_records():
            bus.emit(record)
        assert all(record.kind in CANONICAL_KINDS for record in bus.records)
        assert not any(record.kind == FlowRateChanged.kind for record in bus.records)
        assert not bus.wants(EventDispatched.kind)
        assert bus.wants(RunStarted.kind)

    def test_canonical_constructor_matches_kind_set(self):
        bus = TraceBus.canonical()
        assert {kind for kind in RECORD_TYPES if bus.wants(kind)} == set(CANONICAL_KINDS)

    def test_unknown_kind_filter_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceBus(kinds=["bogus"])
        bus = TraceBus()
        with pytest.raises(ConfigurationError):
            bus.filtered(["bogus"])

    def test_probes_fan_out_with_kind_subscription(self):
        bus = TraceBus()
        all_seen, op_seen = [], []
        bus.subscribe(all_seen.append)
        bus.subscribe(op_seen.append, kinds=[OperationIssued.kind])
        for record in _sample_records():
            bus.emit(record)
        assert len(all_seen) == len(_sample_records())
        assert [record.kind for record in op_seen] == [OperationIssued.kind]

    def test_keep_records_off_still_runs_probes(self):
        bus = TraceBus(keep_records=False)
        seen = []
        bus.subscribe(seen.append)
        bus.emit(_sample_records()[0])
        assert not bus.records
        assert len(seen) == 1

    def test_filtered_view_and_clear(self):
        bus = TraceBus()
        for record in _sample_records():
            bus.emit(record)
        assert len(bus.filtered([ChannelOpened.kind, ChannelClosed.kind])) == 2
        bus.clear()
        assert not bus.records

    def test_non_callable_probe_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceBus().subscribe("not-a-probe")
