"""Property tests for the big-fabric path enumeration and load balancers.

The multi-path fabrics promise a deterministic candidate enumeration (every
path loop-free, endpoint-to-endpoint, minimal candidates first with one
consistent hop length per equal-cost class) and the balancers promise
deterministic, well-distributed choices over it.  Hypothesis drives random
endpoint pairs and load maps; a subprocess round-trip pins the ECMP hash to
the process boundary, where ``hash()``-based schemes historically broke
(PYTHONHASHSEED).
"""

import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabrics import build_topology
from repro.network.routing import (
    EcmpBalancer,
    LeastLoadedBalancer,
    create_balancer,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

#: One instance of each hierarchical fabric, shared across examples (the
#: enumeration is pure, so reuse is safe and keeps hypothesis fast).
FABRICS = {
    "fat_tree": build_topology("fat_tree", 4),
    "leaf_spine": build_topology("leaf_spine", 4, 2, hosts_per_leaf=3),
    "dragonfly": build_topology("dragonfly", 4, 2, hosts_per_router=1),
}

fabric_names = st.sampled_from(sorted(FABRICS))


def _host_pair(topology, draw_a, draw_b):
    """Two distinct hosts from draws over [0, qubit_capacity)."""
    a = draw_a % topology.qubit_capacity
    b = draw_b % topology.qubit_capacity
    if a == b:
        b = (b + 1) % topology.qubit_capacity
    return topology.host(a), topology.host(b)


class TestPathEnumeration:
    @given(fabric_names, st.integers(0, 1023), st.integers(0, 1023))
    @settings(max_examples=150, deadline=None)
    def test_paths_are_loop_free_and_connect_endpoints(self, name, ia, ib):
        topology = FABRICS[name]
        source, destination = _host_pair(topology, ia, ib)
        candidates = topology.enumerate_paths(source, destination)
        assert candidates, f"{name}: no candidates for {source}->{destination}"
        for path in candidates:
            assert path.nodes[0] == source
            assert path.nodes[-1] == destination
            assert len(set(path.nodes)) == len(path.nodes), "loop in path"
            for a, b in zip(path.nodes, path.nodes[1:]):
                assert topology.are_adjacent(a, b), f"{a}->{b} not a fabric link"

    @given(fabric_names, st.integers(0, 1023), st.integers(0, 1023))
    @settings(max_examples=150, deadline=None)
    def test_equal_cost_class_has_one_hop_length(self, name, ia, ib):
        # The enumeration leads with a minimal candidate and the class ECMP
        # hashes over (every candidate at the minimum hop count — a Valiant
        # detour may tie it on a dragonfly) is genuinely equal-cost.
        topology = FABRICS[name]
        source, destination = _host_pair(topology, ia, ib)
        candidates = topology.enumerate_paths(source, destination)
        shortest = min(path.hops for path in candidates)
        assert candidates[0].hops == shortest
        minimal = [path for path in candidates if path.hops == shortest]
        assert len({path.hops for path in minimal}) == 1
        # Candidate sets never repeat a path.
        names = [path.stable_name for path in candidates]
        assert len(set(names)) == len(names)

    @given(fabric_names, st.integers(0, 1023), st.integers(0, 1023))
    @settings(max_examples=60, deadline=None)
    def test_enumeration_is_deterministic(self, name, ia, ib):
        topology = FABRICS[name]
        source, destination = _host_pair(topology, ia, ib)
        first = topology.enumerate_paths(source, destination)
        second = topology.enumerate_paths(source, destination)
        assert [p.stable_name for p in first] == [p.stable_name for p in second]


class TestEcmp:
    @given(st.integers(0, 2**31), fabric_names, st.integers(0, 1023), st.integers(0, 1023))
    @settings(max_examples=100, deadline=None)
    def test_choice_stays_in_minimal_class(self, flow_id, name, ia, ib):
        topology = FABRICS[name]
        source, destination = _host_pair(topology, ia, ib)
        candidates = topology.enumerate_paths(source, destination)
        index = EcmpBalancer().choose(flow_id, source, destination, candidates, {})
        shortest = min(path.hops for path in candidates)
        assert candidates[index].hops == shortest

    def test_uniform_within_20_percent_over_1k_flows(self):
        # A cross-pod fat-tree pair has 4 equal-cost candidates; 1000 flows
        # should land 250 +/- 20% on each.
        topology = FABRICS["fat_tree"]
        source, destination = topology.host(0), topology.host(15)
        candidates = topology.enumerate_paths(source, destination)
        assert len(candidates) == 4
        balancer = EcmpBalancer()
        counts = [0] * len(candidates)
        for flow_id in range(1000):
            counts[balancer.choose(flow_id, source, destination, candidates, {})] += 1
        expected = 1000 / len(candidates)
        for count in counts:
            assert abs(count - expected) <= expected * 0.20, counts

    def test_deterministic_across_processes(self):
        # The hash must not depend on PYTHONHASHSEED or process state: a
        # fresh interpreter (with a scrambled hash seed) replays the exact
        # same choices.
        topology = FABRICS["fat_tree"]
        cases = [(flow_id, 0, 15 - flow_id % 8) for flow_id in range(24)]
        local = []
        balancer = EcmpBalancer()
        for flow_id, a, b in cases:
            source, destination = topology.host(a), topology.host(b)
            candidates = topology.enumerate_paths(source, destination)
            local.append(balancer.choose(flow_id, source, destination, candidates, {}))
        script = (
            "import json, sys\n"
            "from repro.network.fabrics import build_topology\n"
            "from repro.network.routing import EcmpBalancer\n"
            "topology = build_topology('fat_tree', 4)\n"
            "balancer = EcmpBalancer()\n"
            "out = []\n"
            "for flow_id, a, b in json.loads(sys.argv[1]):\n"
            "    s, d = topology.host(a), topology.host(b)\n"
            "    cands = topology.enumerate_paths(s, d)\n"
            "    out.append(balancer.choose(flow_id, s, d, cands, {}))\n"
            "print(json.dumps(out))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"  # would skew any hash()-based scheme
        result = subprocess.run(
            [sys.executable, "-c", script, json.dumps(cases)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert json.loads(result.stdout) == local


class TestLeastLoaded:
    @given(
        fabric_names,
        st.integers(0, 1023),
        st.integers(0, 1023),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_picks_a_strictly_dominated_path(self, name, ia, ib, data):
        topology = FABRICS[name]
        source, destination = _host_pair(topology, ia, ib)
        candidates = topology.enumerate_paths(source, destination)
        links = sorted(
            {link for path in candidates for link in path.links},
            key=lambda link: link.stable_name,
        )
        loads = {
            link: data.draw(st.integers(0, 6), label=link.stable_name)
            for link in links
        }
        index = LeastLoadedBalancer().choose(1, source, destination, candidates, loads)

        def bottleneck(path):
            return max(loads.get(link, 0) for link in path.links)

        chosen = candidates[index]
        # Exact characterization: minimum bottleneck, then fewest hops.
        best = min(bottleneck(path) for path in candidates)
        assert bottleneck(chosen) == best
        assert chosen.hops == min(
            path.hops for path in candidates if bottleneck(path) == best
        )
        # Which implies no candidate strictly dominates the choice.
        for path in candidates:
            assert not (bottleneck(path) < bottleneck(chosen) and path.hops < chosen.hops)


class TestAdaptive:
    def test_hysteresis_keeps_hash_choice_under_light_imbalance(self):
        topology = FABRICS["fat_tree"]
        source, destination = topology.host(0), topology.host(15)
        candidates = topology.enumerate_paths(source, destination)
        balancer = create_balancer("adaptive", hysteresis=2.0)
        hashed = EcmpBalancer().choose(7, source, destination, candidates, {})
        # Load the hashed path's core segment by exactly the hysteresis: stay.
        loads = {link: 2 for link in candidates[hashed].links[1:-1]}
        assert balancer.choose(7, source, destination, candidates, loads) == hashed
        # One channel beyond the band: divert to a less-loaded candidate.
        loads = {link: 3 for link in candidates[hashed].links[1:-1]}
        diverted = balancer.choose(7, source, destination, candidates, loads)
        assert diverted != hashed
