"""Tests for grid geometry and the mesh topology."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.network.geometry import Coordinate, iter_grid, manhattan_distance, midpoint
from repro.network.nodes import ResourceAllocation
from repro.network.topology import LinkId, MeshTopology, square_mesh


class TestCoordinate:
    def test_manhattan_distance(self):
        assert Coordinate(0, 0).manhattan(Coordinate(3, 4)) == 7
        assert manhattan_distance(Coordinate(2, 2), Coordinate(2, 2)) == 0

    def test_neighbours_interior(self):
        assert len(Coordinate(2, 2).neighbours(5, 5)) == 4

    def test_neighbours_corner(self):
        assert len(Coordinate(0, 0).neighbours(5, 5)) == 2

    def test_neighbours_edge(self):
        assert len(Coordinate(0, 2).neighbours(5, 5)) == 3

    def test_midpoint(self):
        assert midpoint(Coordinate(0, 0), Coordinate(4, 6)) == Coordinate(2, 3)

    def test_rejects_negative_coordinates(self):
        with pytest.raises(ConfigurationError):
            Coordinate(-1, 0)

    def test_iter_grid_row_major(self):
        coords = list(iter_grid(3, 2))
        assert coords[0] == Coordinate(0, 0)
        assert coords[1] == Coordinate(1, 0)
        assert coords[-1] == Coordinate(2, 1)
        assert len(coords) == 6

    def test_iter_grid_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            list(iter_grid(0, 3))


class TestLinkId:
    def test_canonical_orientation(self):
        a, b = Coordinate(1, 1), Coordinate(2, 1)
        assert LinkId(a, b) == LinkId(b, a)

    def test_horizontal_flag(self):
        assert LinkId(Coordinate(1, 1), Coordinate(2, 1)).horizontal
        assert not LinkId(Coordinate(1, 1), Coordinate(1, 2)).horizontal

    def test_rejects_non_adjacent(self):
        # Diagonal jumps and colinear jumps away from the zero edge can never
        # be links, not even on a wrapping fabric.
        with pytest.raises(ConfigurationError):
            LinkId(Coordinate(0, 0), Coordinate(2, 1))
        with pytest.raises(ConfigurationError):
            LinkId(Coordinate(1, 0), Coordinate(3, 0))

    def test_accepts_wrap_links(self):
        # The long-way-around link of a ring or torus joins node 0 to the far
        # edge of its dimension.
        assert LinkId(Coordinate(0, 0), Coordinate(7, 0)).is_wrap
        assert LinkId(Coordinate(2, 0), Coordinate(2, 4)).is_wrap
        assert not LinkId(Coordinate(0, 0), Coordinate(1, 0)).is_wrap

    def test_stable_name_is_a_serialization_contract(self):
        # Pinned exactly: JSON records and golden traces key per-link data by
        # this string, so changing the format is a breaking change.
        assert LinkId(Coordinate(2, 1), Coordinate(1, 1)).stable_name == "(1,1)-(2,1)"
        assert LinkId(Coordinate(0, 0), Coordinate(7, 0)).stable_name == "(0,0)-(7,0)"
        assert str(LinkId(Coordinate(1, 1), Coordinate(2, 1))) == "(1,1)-(2,1)"


class TestMeshTopology:
    def test_node_and_link_counts(self):
        mesh = MeshTopology(4, 3)
        assert mesh.node_count == 12
        # Links: horizontal 3*3=9, vertical 4*2=8.
        assert mesh.link_count == 17

    def test_square_mesh_16(self):
        mesh = square_mesh(16)
        assert mesh.node_count == 256
        assert mesh.diameter_hops() == 30

    def test_connectivity(self):
        assert square_mesh(5).is_connected()

    def test_hop_and_cell_distance(self):
        mesh = square_mesh(8, cells_per_hop=600)
        assert mesh.hop_distance(Coordinate(0, 0), Coordinate(3, 4)) == 7
        assert mesh.cell_distance(Coordinate(0, 0), Coordinate(3, 4)) == 4200

    def test_shortest_path_equals_manhattan(self):
        mesh = square_mesh(6)
        a, b = Coordinate(1, 2), Coordinate(5, 0)
        assert mesh.shortest_path_length(a, b) == mesh.hop_distance(a, b)

    def test_adjacency_and_link_lookup(self):
        mesh = square_mesh(4)
        assert mesh.are_adjacent(Coordinate(0, 0), Coordinate(0, 1))
        assert not mesh.are_adjacent(Coordinate(0, 0), Coordinate(1, 1))
        with pytest.raises(RoutingError):
            mesh.link_between(Coordinate(0, 0), Coordinate(1, 1))

    def test_validate_node_rejects_outside(self):
        with pytest.raises(RoutingError):
            square_mesh(4).validate_node(Coordinate(4, 0))

    def test_resource_totals(self):
        allocation = ResourceAllocation(teleporters_per_node=4, generators_per_node=2, purifiers_per_node=3)
        mesh = MeshTopology(3, 3, allocation)
        assert mesh.total_teleporters() == 36
        assert mesh.total_generators() == 2 * mesh.link_count
        assert mesh.total_purifiers() == 27
        assert mesh.interconnect_area_units() == 36 + 2 * mesh.link_count + 27

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 5)

    def test_describe(self):
        assert "16x16" in square_mesh(16).describe()


class TestWrapLinkRegistration:
    """Regression: degenerate wrapped dimensions must not double-register.

    On a 1-wide or 2-node wrapped dimension the "long way around" is the
    direct link itself; the wrap pass used to re-add it under a second
    (asymmetrically ordered) LinkId, splitting one physical wire's state
    across two registry entries.
    """

    def test_linkid_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            LinkId(Coordinate(0, 0), Coordinate(0, 0))

    def test_wrap_link_is_orientation_symmetric(self):
        a, b = Coordinate(0, 0), Coordinate(8, 0)
        assert LinkId(a, b) == LinkId(b, a)
        assert hash(LinkId(a, b)) == hash(LinkId(b, a))
        assert LinkId(a, b).stable_name == LinkId(b, a).stable_name

    def test_two_node_ring_collapses_wrap(self):
        # The wrap would duplicate the single direct link; the guard drops it.
        ring = MeshTopology(2, 1, wrap_x=True)
        assert not ring.wrap_x
        assert ring.link_count == 1

    def test_one_wide_torus_keeps_only_real_wraps(self):
        torus = MeshTopology(1, 4, wrap_x=True, wrap_y=True)
        assert not torus.wrap_x  # width 1: no second node to wrap to
        assert torus.wrap_y
        assert torus.link_count == 4  # 3 vertical + 1 wrap, each registered once

    def test_duplicate_registration_raises(self):
        ring = MeshTopology(9, 1, wrap_x=True)
        with pytest.raises(ConfigurationError, match="already registered"):
            ring._add_link(Coordinate(0, 0), Coordinate(8, 0))

    def test_ring_wrap_link_resolves_from_either_direction(self):
        ring = MeshTopology(9, 1, wrap_x=True)
        a, b = Coordinate(0, 0), Coordinate(8, 0)
        assert ring.link_between(a, b) is ring.link_between(b, a)
        assert ring.link_between(a, b).is_wrap


class TestResourceAllocation:
    def test_uniform(self):
        allocation = ResourceAllocation.uniform(1024)
        assert allocation.teleporters_per_node == 1024
        assert allocation.purifiers_per_node == 1024
        assert allocation.label == "t=g=p=1024"

    def test_ratio(self):
        allocation = ResourceAllocation.ratio(2, 4)
        assert allocation.teleporters_per_node == 8
        assert allocation.purifiers_per_node == 2
        assert "4p" in allocation.label

    def test_area_units(self):
        assert ResourceAllocation(4, 4, 2).area_units() == 10

    def test_specs(self):
        allocation = ResourceAllocation(5, 3, 2, queue_depth=4)
        assert allocation.teleporter_spec.teleporters == 5
        assert allocation.generator_spec.generators == 3
        assert allocation.purifier_spec.purifiers == 2
        assert allocation.purifier_spec.queue_depth == 4

    def test_rejects_zero_resources(self):
        with pytest.raises(ConfigurationError):
            ResourceAllocation(teleporters_per_node=0)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            ResourceAllocation.ratio(1, 0)
