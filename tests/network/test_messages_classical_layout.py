"""Tests for classical messages, the classical network model and machine layouts."""

import pytest

from repro.errors import ConfigurationError
from repro.network.classical import ClassicalNetworkModel
from repro.network.geometry import Coordinate
from repro.network.layout import HomeBaseLayout, MobileQubitLayout, build_layout
from repro.network.messages import ClassicalMessage, PauliFrame
from repro.network.topology import square_mesh
from repro.physics.parameters import IonTrapParameters


class TestPauliFrame:
    def test_identity_by_default(self):
        assert PauliFrame().identity
        assert PauliFrame().label == "I"

    def test_compose_is_xor(self):
        frame = PauliFrame(x=True).compose(PauliFrame(x=True, z=True))
        assert frame.label == "Z"

    def test_apply_teleport_outcome(self):
        frame = PauliFrame().apply_teleport_outcome(1, 0).apply_teleport_outcome(0, 1)
        assert frame.label == "Y"
        assert frame.bits == (1, 1)

    def test_double_application_cancels(self):
        frame = PauliFrame().apply_teleport_outcome(1, 1).apply_teleport_outcome(1, 1)
        assert frame.identity

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            PauliFrame().apply_teleport_outcome(2, 0)


class TestClassicalMessage:
    def test_unique_ids(self):
        assert ClassicalMessage().qubit_id != ClassicalMessage().qubit_id

    def test_advanced_accumulates_corrections_and_hops(self):
        message = ClassicalMessage().advanced(1, 0).advanced(0, 1)
        assert message.hop_count == 2
        assert message.correction.label == "Y"

    def test_retargeted(self):
        message = ClassicalMessage().retargeted((1, 2), (3, 4))
        assert message.destination == (1, 2)
        assert message.partner_destination == (3, 4)

    def test_size_bits_constant(self):
        assert ClassicalMessage().size_bits == 74


class TestClassicalNetworkModel:
    def test_latency_linear(self):
        model = ClassicalNetworkModel(IonTrapParameters.default())
        assert model.round_trip_us(1000) == pytest.approx(2 * model.latency_us(1000))

    def test_classical_much_faster_than_quantum_ops(self):
        model = ClassicalNetworkModel()
        assert model.latency_us(18_000) < 10.0

    def test_traffic_estimate(self):
        model = ClassicalNetworkModel()
        estimate = model.estimate_traffic(100.0, 50.0, 1000.0)
        assert estimate.messages_per_second == pytest.approx(1150.0)
        assert estimate.bits_per_second > 0
        assert "in-flight" in estimate.describe()

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            ClassicalNetworkModel().estimate_traffic(-1, 0, 0)


class TestHomeBaseLayout:
    def test_home_sites_are_row_major(self):
        layout = HomeBaseLayout(square_mesh(4), 16)
        assert layout.home_site(1) == Coordinate(0, 0)
        assert layout.home_site(5) == Coordinate(0, 1)
        assert layout.home_site(16) == Coordinate(3, 3)

    def test_operation_is_a_round_trip(self):
        layout = HomeBaseLayout(square_mesh(4), 16)
        requests = layout.communications_for(1, 7)
        assert len(requests) == 2
        assert requests[0].source == layout.home_site(7)
        assert requests[0].dest == layout.home_site(1)
        assert requests[1].source == layout.home_site(1)
        assert requests[1].dest == layout.home_site(7)

    def test_positions_unchanged_after_round_trip(self):
        layout = HomeBaseLayout(square_mesh(4), 16)
        layout.communications_for(1, 7)
        assert layout.position_of(7) == layout.home_site(7)

    def test_rejects_same_qubit_twice(self):
        layout = HomeBaseLayout(square_mesh(4), 16)
        with pytest.raises(ConfigurationError):
            layout.communications_for(3, 3)

    def test_rejects_out_of_range_qubit(self):
        layout = HomeBaseLayout(square_mesh(4), 16)
        with pytest.raises(ConfigurationError):
            layout.communications_for(1, 17)

    def test_too_many_qubits_for_grid(self):
        with pytest.raises(ConfigurationError):
            HomeBaseLayout(square_mesh(2), 5)


class TestMobileQubitLayout:
    def test_snake_placement_makes_consecutive_qubits_adjacent(self):
        layout = MobileQubitLayout(square_mesh(4), 16)
        for qubit in range(1, 16):
            a = layout.home_site(qubit)
            b = layout.home_site(qubit + 1)
            assert a.manhattan(b) == 1

    def test_walk_moves_one_hop(self):
        layout = MobileQubitLayout(square_mesh(4), 16)
        requests = layout.communications_for(1, 2)
        assert len(requests) == 1
        assert requests[0].hops() == 1
        assert layout.position_of(1) == layout.home_site(2)

    def test_qft_walk_is_mostly_nearest_neighbour(self):
        layout = MobileQubitLayout(square_mesh(4), 16)
        hops = []
        for partner in range(2, 17):
            for request in layout.communications_for(1, partner):
                if request.purpose == "walk":
                    hops.append(request.hops())
        assert all(h == 1 for h in hops)

    def test_final_interaction_triggers_return_home(self):
        layout = MobileQubitLayout(square_mesh(4), 16)
        for partner in range(2, 16):
            layout.communications_for(1, partner)
        requests = layout.communications_for(1, 16)
        purposes = [r.purpose for r in requests]
        assert "return_home" in purposes
        assert layout.position_of(1) == layout.home_site(1)

    def test_average_hops_smaller_than_home_base(self):
        from repro.workloads.qft import qft_pairs

        mesh = square_mesh(4)
        pairs = qft_pairs(16)
        mobile = MobileQubitLayout(mesh, 16).average_hops(pairs)
        home = HomeBaseLayout(mesh, 16).average_hops(pairs)
        assert mobile < home

    def test_reset_restores_home_positions(self):
        layout = MobileQubitLayout(square_mesh(4), 16)
        layout.communications_for(1, 5)
        layout.reset()
        assert layout.position_of(1) == layout.home_site(1)


class TestLayoutFactory:
    def test_build_by_name(self):
        mesh = square_mesh(4)
        assert isinstance(build_layout("home_base", mesh, 16), HomeBaseLayout)
        assert isinstance(build_layout("mobile", mesh, 16), MobileQubitLayout)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            build_layout("torus", square_mesh(4), 16)
