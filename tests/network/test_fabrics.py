"""Tests for the fabric registry and wrap-around topologies."""

import pytest

from repro.errors import ConfigurationError
from repro.network.fabrics import build_topology, list_topologies, register_topology
from repro.network.geometry import Coordinate
from repro.network.routing import dimension_order_route
from repro.network.topology import LinkId


class TestRegistry:
    def test_builtin_fabrics_registered(self):
        assert {"line", "ring", "mesh", "torus"} <= set(list_topologies())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology kind"):
            build_topology("klein_bottle", 4)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_topology("mesh")(lambda *a, **k: None)

    def test_mesh_matches_direct_construction(self):
        mesh = build_topology("mesh", 4, 3)
        assert (mesh.width, mesh.height) == (4, 3)
        assert mesh.fabric == "mesh"
        assert not mesh.wrap_x and not mesh.wrap_y

    def test_mesh_defaults_square(self):
        assert build_topology("mesh", 5).height == 5


class TestLine:
    def test_structure(self):
        line = build_topology("line", 6)
        assert (line.width, line.height) == (6, 1)
        assert line.fabric == "line"
        assert line.node_count == 6
        assert line.link_count == 5
        assert line.diameter_hops() == 5

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError, match="one-dimensional"):
            build_topology("line", 6, 2)


class TestRing:
    def test_structure(self):
        ring = build_topology("ring", 9)
        assert ring.fabric == "ring"
        assert ring.link_count == 9  # one wrap link more than the line
        assert ring.diameter_hops() == 4
        assert ring.is_connected()

    def test_wrap_distance_takes_short_way(self):
        ring = build_topology("ring", 9)
        assert ring.hop_distance(Coordinate(1, 0), Coordinate(7, 0)) == 3
        assert ring.hop_distance(Coordinate(0, 0), Coordinate(8, 0)) == 1

    def test_route_crosses_wrap_link(self):
        ring = build_topology("ring", 9)
        path = dimension_order_route(Coordinate(1, 0), Coordinate(7, 0), ring)
        assert path.hops == 3
        assert any(link.is_wrap for link in path.links)
        # Every traversed link exists on the fabric.
        for link in path.links:
            assert ring.are_adjacent(link.a, link.b)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError, match="at least 3"):
            build_topology("ring", 2)


class TestTorus:
    def test_structure(self):
        torus = build_topology("torus", 5)
        assert torus.fabric == "torus"
        # Every node has degree 4 on a torus: 2 * n^2 links.
        assert torus.link_count == 2 * 25
        assert torus.diameter_hops() == 4

    def test_corner_to_corner_is_two_hops(self):
        torus = build_topology("torus", 5)
        assert torus.hop_distance(Coordinate(0, 0), Coordinate(4, 4)) == 2
        path = dimension_order_route(Coordinate(0, 0), Coordinate(4, 4), torus)
        assert path.hops == 2
        assert all(link.is_wrap for link in path.links)

    def test_graph_and_manhattan_distances_agree(self):
        torus = build_topology("torus", 5, 7)
        for a, b in [
            (Coordinate(0, 0), Coordinate(4, 6)),
            (Coordinate(2, 1), Coordinate(3, 5)),
            (Coordinate(1, 6), Coordinate(4, 0)),
        ]:
            assert torus.hop_distance(a, b) == torus.shortest_path_length(a, b)
            assert dimension_order_route(a, b, torus).hops == torus.hop_distance(a, b)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError, match="torus"):
            build_topology("torus", 2)


class TestWrapLinks:
    def test_wrap_flag_needs_three_nodes(self):
        from repro.network.topology import MeshTopology

        # On a 2-wide dimension the wrap link coincides with the direct link.
        narrow = MeshTopology(2, 1, wrap_x=True)
        assert not narrow.wrap_x
        assert narrow.link_count == 1

    def test_wrap_link_identity(self):
        ring = build_topology("ring", 5)
        wrap = LinkId(Coordinate(0, 0), Coordinate(4, 0))
        assert wrap in set(ring.links())
