"""Tests for dimension-order routing and the router model."""

import pytest

from repro.errors import RoutingError
from repro.network.geometry import Coordinate
from repro.network.nodes import TeleporterSpec
from repro.network.router import QuantumRouter, RouterPort, port_towards
from repro.network.routing import (
    DimensionOrder,
    Path,
    dimension_order_route,
    link_load,
    node_load,
    route_many,
)
from repro.network.topology import square_mesh


class TestDimensionOrderRoute:
    def test_xy_route_goes_x_first(self):
        path = dimension_order_route(Coordinate(0, 0), Coordinate(3, 2))
        assert path.nodes[1] == Coordinate(1, 0)
        assert path.hops == 5
        assert path.destination == Coordinate(3, 2)

    def test_yx_route_goes_y_first(self):
        path = dimension_order_route(
            Coordinate(0, 0), Coordinate(3, 2), order=DimensionOrder.YX
        )
        assert path.nodes[1] == Coordinate(0, 1)
        assert path.hops == 5

    def test_hops_equal_manhattan_distance(self):
        src, dst = Coordinate(2, 7), Coordinate(9, 1)
        path = dimension_order_route(src, dst)
        assert path.hops == src.manhattan(dst)

    def test_single_node_path(self):
        path = dimension_order_route(Coordinate(3, 3), Coordinate(3, 3))
        assert path.hops == 0
        assert path.turn_node is None

    def test_straight_path_has_no_turn(self):
        path = dimension_order_route(Coordinate(0, 0), Coordinate(5, 0))
        assert path.turn_node is None

    def test_l_shaped_path_turns_at_corner(self):
        path = dimension_order_route(Coordinate(0, 0), Coordinate(4, 3))
        assert path.turn_node == Coordinate(4, 0)

    def test_midpoint_node_is_on_path(self):
        path = dimension_order_route(Coordinate(0, 0), Coordinate(6, 6))
        assert path.midpoint_node() in path.nodes

    def test_links_are_consecutive(self):
        path = dimension_order_route(Coordinate(1, 1), Coordinate(4, 4))
        assert len(path.links) == path.hops

    def test_topology_validation(self):
        mesh = square_mesh(4)
        with pytest.raises(RoutingError):
            dimension_order_route(Coordinate(0, 0), Coordinate(10, 0), mesh)

    def test_path_rejects_non_adjacent_nodes(self):
        with pytest.raises(RoutingError):
            Path((Coordinate(0, 0), Coordinate(2, 1)))
        with pytest.raises(RoutingError):
            Path((Coordinate(1, 0), Coordinate(3, 0)))
        # Without declared wrap extents even a zero-edge jump is invalid.
        with pytest.raises(RoutingError):
            Path((Coordinate(0, 0), Coordinate(2, 0)))

    def test_path_wrap_steps_must_match_declared_extent(self):
        # The exact boundary link of a 9-wide ring is valid...
        path = Path((Coordinate(0, 0), Coordinate(8, 0)), wraps=(9, 0))
        assert path.hops == 1
        # ...but an interior jump on the same ring is not a link.
        with pytest.raises(RoutingError):
            Path((Coordinate(0, 0), Coordinate(5, 0)), wraps=(9, 0))

    def test_route_many(self):
        paths = route_many([(Coordinate(0, 0), Coordinate(1, 1)), (Coordinate(2, 2), Coordinate(0, 2))])
        assert [p.hops for p in paths] == [2, 2]

    def test_link_and_node_load(self):
        paths = route_many(
            [(Coordinate(0, 0), Coordinate(2, 0)), (Coordinate(0, 0), Coordinate(2, 1))]
        )
        loads = link_load(paths)
        assert max(loads.values()) == 2  # both paths share the first two X links
        nodes = node_load(paths)
        assert nodes[Coordinate(0, 0)] == 2


class TestRouterPorts:
    def test_port_towards(self):
        at = Coordinate(3, 3)
        assert port_towards(at, Coordinate(4, 3)) is RouterPort.EAST
        assert port_towards(at, Coordinate(2, 3)) is RouterPort.WEST
        assert port_towards(at, Coordinate(3, 4)) is RouterPort.NORTH
        assert port_towards(at, Coordinate(3, 2)) is RouterPort.SOUTH

    def test_port_towards_rejects_non_adjacent(self):
        with pytest.raises(RoutingError):
            port_towards(Coordinate(0, 0), Coordinate(2, 2))

    def test_port_dimensions(self):
        assert RouterPort.EAST.dimension == "x"
        assert RouterPort.NORTH.dimension == "y"
        assert RouterPort.LOCAL.dimension == "local"


class TestQuantumRouter:
    def test_teleporter_split(self):
        router = QuantumRouter(Coordinate(1, 1), TeleporterSpec(8))
        assert router.x_teleporters == 4
        assert router.y_teleporters == 4
        assert router.storage_cells == 32

    def test_odd_teleporter_count_keeps_at_least_one_per_set(self):
        router = QuantumRouter(Coordinate(1, 1), TeleporterSpec(1))
        assert router.x_teleporters == 1
        assert router.y_teleporters == 1

    def test_straight_transit_uses_outgoing_dimension(self):
        router = QuantumRouter(Coordinate(2, 2))
        transit = router.plan_transit(Coordinate(1, 2), Coordinate(3, 2))
        assert transit.uses_x_set and not transit.uses_y_set
        assert not transit.turn
        assert transit.intra_router_cells == router.straight_cells

    def test_turning_transit_moves_between_sets(self):
        router = QuantumRouter(Coordinate(2, 2))
        transit = router.plan_transit(Coordinate(1, 2), Coordinate(2, 3))
        assert transit.turn
        assert transit.uses_y_set
        assert transit.intra_router_cells == router.turn_cells

    def test_ejection_at_endpoint(self):
        router = QuantumRouter(Coordinate(2, 2))
        transit = router.plan_transit(Coordinate(1, 2), None)
        assert transit.ejected
        assert transit.intra_router_cells == router.eject_cells

    def test_local_injection(self):
        router = QuantumRouter(Coordinate(2, 2))
        transit = router.plan_transit(None, Coordinate(2, 3))
        assert transit.input_port is RouterPort.LOCAL
        assert transit.uses_y_set

    def test_teleporters_for_transit(self):
        router = QuantumRouter(Coordinate(2, 2), TeleporterSpec(6))
        transit = router.plan_transit(Coordinate(1, 2), Coordinate(3, 2))
        assert router.teleporters_for(transit) == 3

    def test_describe(self):
        assert "t=4" in QuantumRouter(Coordinate(0, 0), TeleporterSpec(4)).describe()
