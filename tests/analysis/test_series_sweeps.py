"""Tests for the figure/table containers and sweep helpers."""

import math

import pytest

from repro.analysis.series import FigureData, Series, TableData
from repro.analysis.sweeps import (
    crossover_index,
    decades,
    geometric_space,
    integer_range,
    linear_space,
    nearest_index,
)
from repro.errors import ConfigurationError


class TestSeries:
    def test_lengths_must_match(self):
        with pytest.raises(ConfigurationError):
            Series("bad", (1, 2), (1,))

    def test_from_points(self):
        series = Series.from_points("s", [1, 2, 3], [4, 5, 6])
        assert len(series) == 3
        assert series.y_at(2) == 5
        assert series.y_at(99) is None

    def test_finite_y_filters_inf(self):
        series = Series.from_points("s", [1, 2, 3], [1.0, math.inf, 2.0])
        assert series.finite_y == [1.0, 2.0]

    def test_monotonicity_checks(self):
        increasing = Series.from_points("inc", [1, 2, 3], [1, 2, 3])
        decreasing = Series.from_points("dec", [1, 2, 3], [3, 2, 1])
        assert increasing.is_monotonic_increasing(strict=True)
        assert not increasing.is_monotonic_decreasing()
        assert decreasing.is_monotonic_decreasing(strict=True)


class TestFigureData:
    def _figure(self):
        return FigureData(
            name="fig",
            title="t",
            x_label="x",
            y_label="y",
            series=(
                Series.from_points("a", [1, 2], [1.0, 2.0]),
                Series.from_points("b", [1, 2], [3.0, 4.0]),
            ),
        )

    def test_get_by_label(self):
        assert self._figure().get("b").y == (3.0, 4.0)

    def test_get_unknown_label(self):
        with pytest.raises(KeyError):
            self._figure().get("zzz")

    def test_labels(self):
        assert self._figure().labels == ["a", "b"]

    def test_render_contains_labels_and_values(self):
        text = self._figure().render()
        assert "fig" in text and "a" in text and "b" in text


class TestTableData:
    def _table(self):
        return TableData(
            name="tbl",
            title="a table",
            columns=("Name", "Value"),
            rows=(("alpha", 1.0), ("beta", 2.5)),
        )

    def test_column_access(self):
        assert self._table().column("Value") == [1.0, 2.5]

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self._table().column("Nope")

    def test_render(self):
        text = self._table().render()
        assert "alpha" in text and "2.5" in text


class TestSweeps:
    def test_linear_space_endpoints(self):
        values = linear_space(0, 10, 11)
        assert values[0] == 0 and values[-1] == 10 and len(values) == 11

    def test_linear_space_single_point(self):
        assert linear_space(5, 10, 1) == [5.0]

    def test_geometric_space(self):
        values = geometric_space(1, 100, 3)
        assert values == pytest.approx([1, 10, 100])

    def test_geometric_space_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            geometric_space(0, 10, 3)

    def test_integer_range(self):
        assert integer_range(5, 60, 5)[:3] == [5, 10, 15]
        assert integer_range(3, 1, -1) == [3, 2, 1]

    def test_integer_range_rejects_zero_step(self):
        with pytest.raises(ConfigurationError):
            integer_range(1, 5, 0)

    def test_decades(self):
        values = decades(-9, -4)
        assert values[0] == pytest.approx(1e-9)
        assert values[-1] == pytest.approx(1e-4)
        assert len(values) == 6

    def test_nearest_index(self):
        assert nearest_index([1.0, 5.0, 10.0], 6.0) == 1

    def test_crossover_index(self):
        assert crossover_index([0.1, 0.2, 0.9, 1.5], 1.0) == 3
        assert crossover_index([0.1, 0.2], 1.0) == -1
