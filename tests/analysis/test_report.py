"""Tests for the one-shot reproduction report."""

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.report import reproduction_report, run_experiments


class TestReport:
    def test_runs_all_light_experiments(self):
        results = run_experiments(include_heavy=False)
        names = {experiment.identifier for experiment, _ in results}
        light = {n for n, e in EXPERIMENTS.items() if not e.heavy}
        assert names == light

    def test_selected_experiments_only(self):
        results = run_experiments(["table1", "figure9"])
        assert [e.identifier for e, _ in results] == ["table1", "figure9"]

    def test_report_mentions_every_light_experiment(self):
        text = reproduction_report(include_heavy=False)
        for name, experiment in EXPERIMENTS.items():
            if not experiment.heavy:
                assert f"[{name}]" in text

    def test_report_contains_expectations_and_values(self):
        text = reproduction_report(["table2", "figure8"])
        assert "paper expectation" in text
        assert "1e-07" in text or "1e-7" in text
        assert "DEJMPS" in text
