"""The analysis layer consumes journaled sweeps (repro.analysis.journaled)."""

import json

import pytest

from repro.analysis import journal_records, journal_series
from repro.errors import ConfigurationError


def _write_journal(path, results):
    lines = [
        {"kind": "header", "schema": 1, "sweep_id": "s", "total": len(results)}
    ]
    for index, (key, result) in enumerate(sorted(results.items())):
        lines.append(
            {
                "kind": "point",
                "key": key,
                "index": index,
                "status": "ok",
                "result": result,
                "attempts": 1,
                "elapsed_s": 0.1,
            }
        )
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))


class TestJournalRecords:
    def test_records_in_deterministic_key_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(
            path,
            {
                "bb": {"makespan_us": 2.0, "width": 4},
                "aa": {"makespan_us": 1.0, "width": 2},
            },
        )
        records = journal_records(str(path))
        assert [r["makespan_us"] for r in records] == [1.0, 2.0]

    def test_failed_points_are_excluded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, {"aa": {"makespan_us": 1.0}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "kind": "point",
                        "key": "zz",
                        "index": 1,
                        "status": "error",
                        "error": {"type": "ValueError"},
                    }
                )
                + "\n"
            )
        assert len(journal_records(str(path))) == 1

    def test_scalar_results_are_wrapped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, {"aa": 7})
        assert journal_records(str(path)) == [{"key": "aa", "result": 7}]


class TestJournalSeries:
    def test_series_from_dotted_paths_sorted_by_x(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(
            path,
            {
                "bb": {"spec": {"topology": {"width": 8}}, "makespan_us": 80.0},
                "aa": {"spec": {"topology": {"width": 2}}, "makespan_us": 20.0},
                "cc": {"spec": {"topology": {"width": 4}}, "makespan_us": 40.0},
            },
        )
        series = journal_series(
            str(path), x="spec.topology.width", y="makespan_us", label="scaling"
        )
        assert series.label == "scaling"
        assert series.x == (2.0, 4.0, 8.0)
        assert series.y == (20.0, 40.0, 80.0)

    def test_missing_field_is_a_clear_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, {"aa": {"makespan_us": 1.0}})
        with pytest.raises(ConfigurationError, match="no field"):
            journal_series(str(path), x="spec.width", y="makespan_us")

    def test_empty_journal_is_a_clear_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, {})
        with pytest.raises(ConfigurationError, match="no completed points"):
            journal_series(str(path), x="a", y="b")
