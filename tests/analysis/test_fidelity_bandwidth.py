"""The fidelity-vs-bandwidth analysis module."""

import pytest

from repro.analysis.fidelity_bandwidth import (
    fidelity_bandwidth_tradeoff,
    scenario_fidelity_table,
)
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario, run_record


class TestTradeoffFigure:
    def test_shape_and_monotonicity(self):
        figure = fidelity_bandwidth_tradeoff(hops=(1, 4), max_level=4)
        assert figure.name == "fidelity_bandwidth"
        assert len(figure.series) == 2
        for series in figure.series:
            assert len(series) == 5
            # Bandwidth cost starts at one raw pair and at least doubles per level.
            assert series.x[0] == 1.0
            assert all(b >= 2.0 * a for a, b in zip(series.x, series.x[1:]))
            # Error never increases with more purification under default noise.
            assert series.is_monotonic_decreasing()

    def test_longer_channels_arrive_worse(self):
        figure = fidelity_bandwidth_tradeoff(hops=(1, 8), max_level=1)
        short, long = figure.series
        assert long.y[0] > short.y[0]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            fidelity_bandwidth_tradeoff(max_level=-1)
        with pytest.raises(ConfigurationError):
            fidelity_bandwidth_tradeoff(hops=())

    def test_registered_as_experiment(self):
        from repro.analysis.experiments import get_experiment

        experiment = get_experiment("fidelity_bandwidth")
        assert not experiment.heavy
        assert experiment.run().series


class TestScenarioTable:
    def test_only_noise_tracked_records_enter(self):
        records = [run_record(get_scenario("smoke")), run_record(get_scenario("smoke_noisy"))]
        table = scenario_fidelity_table(records)
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row[0] == "smoke_noisy"
        assert row[6] == 0  # below target
        assert "scenario" in table.columns

    def test_empty_input_renders(self):
        table = scenario_fidelity_table([])
        assert table.rows == ()
        assert table.render()
