"""Tests for the regeneration of every paper figure and table.

These tests assert the *shape* claims of each artefact (who wins, growth
trends, crossovers), not absolute values — the same standard EXPERIMENTS.md
applies when comparing against the paper.
"""

import math

import pytest

from repro.analysis.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.analysis.fig10 import figure10
from repro.analysis.fig11 import figure11
from repro.analysis.fig12 import breakdown_error_rate, figure12
from repro.analysis.fig8 import figure8, rounds_to_converge
from repro.analysis.fig9 import error_amplification, figure9
from repro.analysis.tables import derived_channel_table, table1, table2
from repro.errors import ConfigurationError
from repro.physics.constants import THRESHOLD_ERROR


class TestFigure8:
    @pytest.fixture(scope="class")
    def figure(self):
        return figure8(max_rounds=20)

    def test_has_six_series(self, figure):
        assert len(figure.series) == 6

    def test_dejmps_converges_faster_than_bbpssw(self, figure):
        dejmps = figure.get("DEJMPS protocol, initial fidelity=0.99")
        bbpssw = figure.get("BBPSSW protocol, initial fidelity=0.99")
        assert dejmps.y[5] < bbpssw.y[5]

    def test_dejmps_floor_below_bbpssw(self, figure):
        dejmps = figure.get("DEJMPS protocol, initial fidelity=0.999")
        bbpssw = figure.get("BBPSSW protocol, initial fidelity=0.999")
        assert min(dejmps.y) < min(bbpssw.y)

    def test_errors_eventually_below_start(self, figure):
        for series in figure.series:
            assert min(series.y) < series.y[0]

    def test_bbpssw_needs_5_to_10x_more_rounds(self):
        dejmps_rounds = rounds_to_converge("dejmps", 0.99)
        bbpssw_rounds = rounds_to_converge("bbpssw", 0.99)
        assert bbpssw_rounds >= 4 * dejmps_rounds


class TestFigure9:
    @pytest.fixture(scope="class")
    def figure(self):
        return figure9(max_hops=70)

    def test_has_five_error_series_plus_threshold(self, figure):
        assert len(figure.series) == 6
        assert "threshold error" in figure.labels

    def test_error_monotone_in_hops(self, figure):
        for label in figure.labels:
            if label != "threshold error":
                assert figure.get(label).is_monotonic_increasing()

    def test_factor_100_amplification_claim(self):
        assert 30 <= error_amplification(1e-4, 64) <= 150

    def test_64_hops_at_1e4_crosses_threshold(self, figure):
        series = figure.get("1e-04 initial error")
        assert series.y_at(64) > THRESHOLD_ERROR

    def test_1e8_curve_floors_above_initial(self, figure):
        series = figure.get("1e-08 initial error")
        assert series.y_at(64) > 100 * 1e-8


class TestFigures10And11:
    @pytest.fixture(scope="class")
    def fig10(self):
        return figure10(distances=range(5, 41, 5))

    @pytest.fixture(scope="class")
    def fig11(self):
        return figure11(distances=range(5, 41, 5))

    def test_five_placement_series(self, fig10, fig11):
        assert len(fig10.series) == 5
        assert len(fig11.series) == 5

    def test_after_teleport_dominates_both_metrics(self, fig10, fig11):
        for figure in (fig10, fig11):
            after = figure.get("DEJMPS protocol once after each teleport")
            end = figure.get("DEJMPS protocol only at end")
            assert after.y[-1] > 10 * end.y[-1]

    def test_virtual_wire_minimises_teleported_pairs(self, fig11):
        wire = fig11.get("DEJMPS protocol twice before teleport")
        end = fig11.get("DEJMPS protocol only at end")
        assert wire.y[-1] <= end.y[-1]

    def test_resource_counts_grow_with_distance(self, fig10):
        for series in fig10.series:
            assert series.y[-1] >= series.y[0]

    def test_totals_exceed_teleported_counts(self, fig10, fig11):
        for label in fig10.labels:
            total = fig10.get(label)
            teleported = fig11.get(label)
            assert all(t >= p for t, p in zip(total.y, teleported.y))


class TestFigure12:
    @pytest.fixture(scope="class")
    def figure(self):
        return figure12(error_rates=[1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4], distance_hops=32)

    def test_all_curves_break_down_at_1e4(self, figure):
        for series in figure.series:
            assert math.isinf(series.y[-1])

    def test_all_curves_feasible_at_1e7(self, figure):
        for series in figure.series:
            assert math.isfinite(series.y_at(1e-7))

    def test_breakdown_near_1e5(self):
        breakdown = breakdown_error_rate(error_rates=[1e-7, 1e-6, 1e-5, 3e-5, 1e-4])
        assert 1e-6 < breakdown <= 1e-4

    def test_resources_spread_about_two_orders_in_working_regime(self, figure):
        end = figure.get("DEJMPS protocol only at end")
        finite = end.finite_y
        assert max(finite) / min(finite) > 10


class TestFigureGoldenValues:
    """Pinned anchor datapoints for figures 10-12.

    The shape tests above catch qualitative regressions; these catch silent
    quantitative drift — a changed constant or reordered float expression
    moves an anchor even when every trend survives.  Anchors were recorded
    from the verified reproduction and are held to 1e-9 relative.
    """

    REL = 1e-9

    def test_fig10_series_shape(self):
        figure = figure10()
        assert [series.label for series in figure.series] == [
            "DEJMPS protocol twice after each teleport",
            "DEJMPS protocol once after each teleport",
            "DEJMPS protocol twice before teleport",
            "DEJMPS protocol once before teleport",
            "DEJMPS protocol only at end",
        ]
        for series in figure.series:
            assert list(series.x) == list(range(5, 61, 5))

    def test_fig10_anchor_datapoints(self):
        figure = figure10()
        end = figure.get("DEJMPS protocol only at end")
        assert end.y[0] == pytest.approx(20.31054647009202, rel=self.REL)
        assert end.y[-1] == pytest.approx(1154.2376379167715, rel=self.REL)
        twice_after = figure.get("DEJMPS protocol twice after each teleport")
        assert twice_after.y[-1] == pytest.approx(3.713804855524195e36, rel=self.REL)

    def test_fig11_anchor_datapoints(self):
        figure = figure11()
        wire = figure.get("DEJMPS protocol twice before teleport")
        assert wire.y[0] == pytest.approx(4.0032114976534805, rel=self.REL)
        assert wire.y[-1] == pytest.approx(4.016724320052203, rel=self.REL)
        end = figure.get("DEJMPS protocol only at end")
        assert end.y[-1] == pytest.approx(19.237293965279534, rel=self.REL)

    def test_fig11_series_shape(self):
        figure = figure11()
        assert len(figure.series) == 5
        for series in figure.series:
            assert list(series.x) == list(range(5, 61, 5))

    def test_fig12_series_shape(self):
        figure = figure12()
        assert len(figure.series) == 5
        for series in figure.series:
            assert len(series.x) == 16
            assert series.x[0] == pytest.approx(1e-9, rel=self.REL)
            assert series.x[-1] == pytest.approx(1e-4, rel=self.REL)
            assert math.isinf(series.y[-1])

    def test_fig12_anchor_datapoints(self):
        figure = figure12()
        once_after = figure.get("DEJMPS protocol once after each teleport")
        assert once_after.y[0] == pytest.approx(2147598147.7964725, rel=self.REL)
        end = figure.get("DEJMPS protocol only at end")
        assert end.y[0] == pytest.approx(1.0, rel=self.REL)
        assert end.y[5] == pytest.approx(4.010040771995101, rel=self.REL)


class TestTables:
    def test_table1_values(self):
        table = table1()
        assert table.column("Time (us)")[:4] == [1.0, 20.0, 0.2, 100.0]

    def test_table2_values(self):
        table = table2()
        assert table.column("Error probability") == [1e-8, 1e-7, 1e-6, 1e-8]

    def test_derived_table_headline_numbers(self):
        table = derived_channel_table()
        values = dict(zip(table.column("Quantity"), table.column("Value")))
        assert 550 <= values["Ballistic/teleport latency crossover"] <= 650
        assert values["Corner-to-corner ballistic error (1000x1000 grid)"] > 1e-3
        assert values["EPR pairs per logical communication (2^rounds x 49)"] == 392


class TestExperimentRegistry:
    def test_every_table_and_figure_registered(self):
        expected = {"table1", "table2", "derived", "figure8", "figure9", "figure10",
                    "figure11", "figure12", "figure16"}
        assert expected <= set(EXPERIMENTS)

    def test_light_experiments_run(self):
        for name in list_experiments(include_heavy=False):
            result = get_experiment(name).run()
            assert result is not None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("figure99")
