"""Property tests: trace serialization round-trips exactly.

``record -> JSONL line -> record`` must be the identity for every record
type and any representable field values — including awkward floats (signed
zero aside: JSON has no -0.0-preserving guarantee we rely on, so strategies
draw finite non-degenerate values the simulators actually produce).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    ChannelClosed,
    ChannelFidelity,
    ChannelOpened,
    EprPairGenerated,
    EventDispatched,
    FlowRateChanged,
    OperationIssued,
    OperationRetired,
    PurificationMilestone,
    RunEnded,
    RunStarted,
    TeleportPerformed,
    line_to_record,
    read_jsonl,
    record_from_payload,
    record_to_line,
    write_jsonl,
)

times = st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False)
rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
small_ints = st.integers(min_value=0, max_value=10_000)
qubits = st.integers(min_value=1, max_value=4096)
coords = st.tuples(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N", "P"), max_codepoint=0x2FF),
    min_size=1,
    max_size=24,
)

record_strategies = st.one_of(
    st.builds(
        RunStarted,
        t_us=times, machine=names, workload=names, width=qubits, height=qubits,
        topology=names, layout=names, allocation=names, num_qubits=qubits,
        operations=small_ints,
    ),
    st.builds(RunEnded, t_us=times, makespan_us=times, operations=small_ints,
              channels=small_ints),
    st.builds(EventDispatched, t_us=times, sequence=small_ints, priority=small_ints),
    st.builds(OperationIssued, t_us=times, op_index=small_ints, qubit_a=qubits, qubit_b=qubits),
    st.builds(OperationRetired, t_us=times, op_index=small_ints, channel_count=small_ints,
              total_hops=small_ints),
    st.builds(ChannelOpened, t_us=times, flow_id=small_ints, source=coords, destination=coords,
              hops=small_ints, purpose=names),
    st.builds(ChannelClosed, t_us=times, flow_id=small_ints, source=coords, destination=coords,
              hops=small_ints, pairs_transited=rates),
    st.builds(FlowRateChanged, t_us=times, flow_id=small_ints, rate=rates),
    st.builds(
        ChannelFidelity,
        t_us=times, flow_id=small_ints, hops=small_ints, purification_level=small_ints,
        arrival_fidelity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        delivered_fidelity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        target_fidelity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        meets_target=st.booleans(),
    ),
    st.builds(EprPairGenerated, t_us=times, link=names, produced=small_ints),
    st.builds(PurificationMilestone, t_us=times, purifier=names, good_pairs=small_ints,
              rounds_executed=small_ints),
    st.builds(TeleportPerformed, t_us=times, node=coords, dimension=st.sampled_from(["x", "y"]),
              turn=st.booleans()),
)


class TestTraceRoundTrip:
    @given(record=record_strategies)
    @settings(max_examples=300)
    def test_line_round_trip_identity(self, record):
        assert line_to_record(record_to_line(record)) == record

    @given(record=record_strategies)
    @settings(max_examples=300)
    def test_payload_round_trip_identity(self, record):
        assert record_from_payload(record.to_payload()) == record

    @given(records=st.lists(record_strategies, max_size=20))
    @settings(max_examples=50)
    def test_file_round_trip_identity(self, tmp_path_factory, records):
        path = str(tmp_path_factory.mktemp("traces") / "roundtrip.jsonl")
        write_jsonl(path, records)
        assert read_jsonl(path) == records
