"""Property-based tests for the Bell-diagonal state algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.states import BellDiagonalState

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_probabilities = st.floats(min_value=0.0, max_value=0.2, allow_nan=False)
fidelities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
cells = st.integers(min_value=0, max_value=5000)


@st.composite
def bell_states(draw):
    """Arbitrary valid Bell-diagonal states (renormalised random weights)."""
    weights = [draw(st.floats(min_value=1e-6, max_value=1.0)) for _ in range(4)]
    return BellDiagonalState.from_coefficients(weights)


def assert_valid(state: BellDiagonalState) -> None:
    assert abs(sum(state.coefficients) - 1.0) < 1e-6
    assert all(c >= -1e-12 for c in state.coefficients)


class TestChannelsPreserveValidity:
    @given(bell_states(), probabilities)
    def test_depolarize(self, state, p):
        assert_valid(state.depolarize(p))

    @given(bell_states(), probabilities)
    def test_local_depolarize(self, state, p):
        assert_valid(state.local_depolarize(p))

    @given(bell_states(), probabilities)
    def test_dephase_and_bit_flip(self, state, p):
        assert_valid(state.dephase(p))
        assert_valid(state.bit_flip(p))

    @given(bell_states(), small_probabilities, cells)
    def test_movement_decay(self, state, p, d):
        assert_valid(state.movement_decay(p, d))

    @given(bell_states(), bell_states(), probabilities)
    def test_mix(self, a, b, w):
        assert_valid(a.mix(b, w))


class TestChannelsNeverImproveFidelity:
    @given(bell_states(), probabilities)
    def test_depolarize_never_above_original_when_above_quarter(self, state, p):
        if state.fidelity >= 0.25:
            assert state.depolarize(p).fidelity <= state.fidelity + 1e-12

    @given(fidelities, small_probabilities, cells)
    def test_movement_monotone_in_distance(self, f, p, d):
        state = BellDiagonalState.werner(f)
        nearer = state.movement_decay(p, d)
        further = state.movement_decay(p, d + 100)
        assert further.fidelity <= nearer.fidelity + 1e-12

    @given(bell_states())
    def test_twirl_preserves_fidelity(self, state):
        assert abs(state.twirl().fidelity - state.fidelity) < 1e-12

    @given(bell_states())
    def test_sorted_errors_preserves_fidelity_and_mass(self, state):
        result = state.sorted_errors()
        assert abs(result.fidelity - state.fidelity) < 1e-12
        assert abs(sum(result.coefficients) - 1.0) < 1e-9


class TestComposition:
    @given(bell_states(), small_probabilities, cells, cells)
    @settings(max_examples=50)
    def test_movement_composes_additively(self, state, p, d1, d2):
        combined = state.movement_decay(p, d1 + d2)
        chained = state.movement_decay(p, d1).movement_decay(p, d2)
        assert abs(combined.fidelity - chained.fidelity) < 1e-9

    @given(bell_states(), probabilities, probabilities)
    @settings(max_examples=50)
    def test_depolarize_order_irrelevant(self, state, p1, p2):
        a = state.depolarize(p1).depolarize(p2)
        b = state.depolarize(p2).depolarize(p1)
        for x, y in zip(a.coefficients, b.coefficients):
            assert abs(x - y) < 1e-9
