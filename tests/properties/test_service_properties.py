"""Property tests: arrival-stream determinism and admission invariants.

The service mode's contract with the verify harness is that the *offered*
side of a run is a pure function of the traffic spec: the same spec must
yield a bitwise-identical request stream in any process, and the admission
layer may only ever shrink it (admitted <= offered), with the token bucket
never letting more than ``burst`` requests through any instantaneous burst.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.geometry import Coordinate
from repro.scenarios.spec import TrafficSpec
from repro.service.admission import TokenBucket, create_admission
from repro.service.arrivals import ServiceRequest, generate_requests
from repro.sim import QuantumMachine

NODES = list(QuantumMachine(4).topology.nodes())

tenant_strategy = st.fixed_dictionaries(
    {
        "arrival_process": st.sampled_from(["poisson", "fixed", "mmpp"]),
        "mean_interarrival_us": st.floats(min_value=50.0, max_value=2000.0),
        "size_dist": st.sampled_from(["constant", "pareto"]),
        "channels": st.integers(min_value=1, max_value=3),
        "max_channels": st.just(6),
        "priority": st.integers(min_value=0, max_value=3),
    }
)

traffic_strategy = st.builds(
    lambda tenants, seed, duration: TrafficSpec.from_dict(
        {"duration_us": duration, "seed": seed, "tenants": tenants}
    ),
    tenants=st.dictionaries(
        st.sampled_from(["alpha", "beta", "gamma"]),
        tenant_strategy,
        min_size=1,
        max_size=3,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
    duration=st.floats(min_value=500.0, max_value=8000.0),
)


class TestArrivalDeterminism:
    @given(traffic=traffic_strategy)
    @settings(max_examples=40, deadline=None)
    def test_same_spec_yields_bitwise_identical_streams(self, traffic):
        first = generate_requests(traffic, NODES)
        second = generate_requests(traffic, NODES)
        assert first == second

    @given(traffic=traffic_strategy)
    @settings(max_examples=40, deadline=None)
    def test_streams_are_well_formed(self, traffic):
        requests = generate_requests(traffic, NODES)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        for request in requests:
            assert 0.0 < request.arrival_us < traffic.duration_us
            assert 1 <= request.channels <= traffic.tenants[request.tenant].max_channels
            assert request.source != request.dest
        arrivals = [r.arrival_us for r in requests]
        assert arrivals == sorted(arrivals)


def _offer(policy, arrivals_us):
    """Feed a monotone arrival sequence through ``policy``; count admissions."""
    request = ServiceRequest(
        request_id=0,
        tenant="t",
        arrival_us=0.0,
        channels=1,
        source=Coordinate(0, 0),
        dest=Coordinate(1, 0),
    )
    admitted = 0
    for now_us in arrivals_us:
        if policy.admit(request, now_us=now_us, queue_depth=0) is None:
            admitted += 1
    return admitted


arrival_times = st.lists(
    st.floats(min_value=0.0, max_value=50_000.0), min_size=1, max_size=200
).map(sorted)


class TestAdmissionInvariants:
    @given(
        arrivals=arrival_times,
        name=st.sampled_from(["always", "token_bucket", "queue_bound"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_admitted_never_exceeds_offered(self, arrivals, name):
        policy = create_admission(name, rate_per_ms=2.0, burst=4, queue_limit=8)
        assert 0 <= _offer(policy, arrivals) <= len(arrivals)

    @given(
        arrivals=arrival_times,
        burst=st.integers(min_value=1, max_value=10),
        rate=st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_token_bucket_instantaneous_burst_is_bounded(self, arrivals, burst, rate):
        # Over any run the bucket can admit at most burst + refill(elapsed)
        # requests; for a same-instant burst that bound is exactly ``burst``.
        policy = TokenBucket(rate_per_ms=rate, burst=burst)
        span_ms = (arrivals[-1] - arrivals[0]) / 1000.0 if len(arrivals) > 1 else 0.0
        admitted = _offer(policy, arrivals)
        assert admitted <= burst + int(span_ms * rate) + 1

    @given(burst=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_token_bucket_same_instant_admits_exactly_burst(self, burst):
        policy = TokenBucket(rate_per_ms=1.0, burst=burst)
        assert _offer(policy, [0.0] * (burst * 3)) == burst
