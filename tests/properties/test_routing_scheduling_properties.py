"""Property-based tests for routing, layouts and the instruction scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.geometry import Coordinate
from repro.network.routing import DimensionOrder, dimension_order_route
from repro.sim.scheduler import InstructionScheduler
from repro.workloads.instructions import InstructionStream

coords = st.builds(
    Coordinate,
    x=st.integers(min_value=0, max_value=15),
    y=st.integers(min_value=0, max_value=15),
)


class TestRoutingProperties:
    @given(coords, coords)
    @settings(max_examples=100)
    def test_path_length_equals_manhattan_distance(self, a, b):
        path = dimension_order_route(a, b)
        assert path.hops == a.manhattan(b)

    @given(coords, coords)
    @settings(max_examples=100)
    def test_path_endpoints(self, a, b):
        path = dimension_order_route(a, b)
        assert path.source == a and path.destination == b

    @given(coords, coords)
    @settings(max_examples=100)
    def test_consecutive_nodes_adjacent(self, a, b):
        path = dimension_order_route(a, b)
        for u, v in zip(path.nodes, path.nodes[1:]):
            assert u.manhattan(v) == 1

    @given(coords, coords)
    @settings(max_examples=100)
    def test_at_most_one_turn(self, a, b):
        path = dimension_order_route(a, b)
        turns = 0
        for prev_node, node, nxt in zip(path.nodes, path.nodes[1:], path.nodes[2:]):
            before_dim = "x" if prev_node.y == node.y else "y"
            after_dim = "x" if node.y == nxt.y else "y"
            if before_dim != after_dim:
                turns += 1
        assert turns <= 1

    @given(coords, coords)
    @settings(max_examples=100)
    def test_xy_and_yx_have_same_length(self, a, b):
        xy = dimension_order_route(a, b, order=DimensionOrder.XY)
        yx = dimension_order_route(a, b, order=DimensionOrder.YX)
        assert xy.hops == yx.hops

    @given(coords, coords)
    @settings(max_examples=100)
    def test_no_repeated_nodes(self, a, b):
        path = dimension_order_route(a, b)
        assert len(set(path.nodes)) == len(path.nodes)


@st.composite
def instruction_streams(draw):
    """Random valid instruction streams over up to 12 qubits."""
    num_qubits = draw(st.integers(min_value=2, max_value=12))
    count = draw(st.integers(min_value=1, max_value=30))
    pairs = []
    for _ in range(count):
        a = draw(st.integers(min_value=1, max_value=num_qubits))
        offset = draw(st.integers(min_value=1, max_value=num_qubits - 1))
        b = (a - 1 + offset) % num_qubits + 1
        pairs.append((a, b))
    return InstructionStream.from_pairs("random", num_qubits, pairs)


class TestSchedulerProperties:
    @given(instruction_streams())
    @settings(max_examples=50, deadline=None)
    def test_every_stream_drains_without_deadlock(self, stream):
        scheduler = InstructionScheduler(stream)
        completed = []
        while not scheduler.finished:
            ready = scheduler.ready_operations()
            assert ready, "deadlock: nothing ready but stream unfinished"
            op = ready[0]
            scheduler.mark_issued(op.index)
            scheduler.mark_completed(op.index)
            completed.append(op.index)
        assert len(completed) == len(stream)
        assert len(set(completed)) == len(stream)

    @given(instruction_streams())
    @settings(max_examples=50, deadline=None)
    def test_per_qubit_program_order_preserved(self, stream):
        scheduler = InstructionScheduler(stream)
        completion_order = {}
        step = 0
        while not scheduler.finished:
            op = scheduler.ready_operations()[0]
            scheduler.mark_issued(op.index)
            scheduler.mark_completed(op.index)
            completion_order[op.index] = step
            step += 1
        # For each qubit, operations must complete in program order.
        last_seen = {}
        for op in stream:
            for qubit in op.qubits:
                if qubit in last_seen:
                    assert completion_order[last_seen[qubit]] < completion_order[op.index]
                last_seen[qubit] = op.index

    @given(instruction_streams())
    @settings(max_examples=50, deadline=None)
    def test_wavefront_count_bounded_by_stream_length(self, stream):
        fronts = stream.wavefronts()
        assert sum(len(front) for front in fronts) == len(stream)
        assert stream.critical_path_length() <= len(stream)
