"""Property tests for the fidelity algebra the accounting pipeline rests on.

Three invariant families from the issue checklist:

* purification round monotonicity — above the 1/2-fidelity threshold a
  noiseless recurrence round never lowers a Werner pair's fidelity;
* Werner fidelity <-> error / Werner-parameter round-trips are the identity;
* ``expected_input_pairs`` is always >= 1 (in fact >= 2 per round), for both
  protocols, noisy or not, and composes to >= 1 over whole trees.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.fidelity import (
    error_to_fidelity,
    fidelity_from_werner_parameter,
    fidelity_to_error,
    werner_parameter,
)
from repro.physics.parameters import IonTrapParameters
from repro.physics.purification import get_protocol
from repro.physics.purification_tree import expected_pairs_for_rounds
from repro.physics.states import BellDiagonalState

params = IonTrapParameters.default()

#: Comfortably above the Werner purification threshold of 1/2, below exactly 1.
purifiable = st.floats(min_value=0.55, max_value=0.99999, allow_nan=False)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
protocol_names = st.sampled_from(["dejmps", "bbpssw"])


class TestRoundMonotonicity:
    @given(fidelity=purifiable, name=protocol_names)
    @settings(max_examples=80)
    def test_noiseless_round_never_lowers_fidelity_above_threshold(self, fidelity, name):
        protocol = get_protocol(name, params, noisy=False)
        state = BellDiagonalState.werner(fidelity)
        outcome = protocol.purify_identical(state)
        assert outcome.fidelity >= fidelity - 1e-12

    @given(fidelity=purifiable, name=protocol_names, rounds=st.integers(1, 4))
    @settings(max_examples=40)
    def test_noiseless_iteration_is_monotone_over_rounds(self, fidelity, name, rounds):
        protocol = get_protocol(name, params, noisy=False)
        outcomes = protocol.iterate(BellDiagonalState.werner(fidelity), rounds)
        fidelities = [fidelity] + [outcome.fidelity for outcome in outcomes]
        assert all(b >= a - 1e-12 for a, b in zip(fidelities, fidelities[1:]))


class TestWernerRoundTrips:
    @given(fidelity=unit)
    @settings(max_examples=120)
    def test_fidelity_error_round_trip(self, fidelity):
        assert math.isclose(
            error_to_fidelity(fidelity_to_error(fidelity)), fidelity, abs_tol=1e-12
        )

    @given(error=unit)
    @settings(max_examples=120)
    def test_error_fidelity_round_trip(self, error):
        assert math.isclose(
            fidelity_to_error(error_to_fidelity(error)), error, abs_tol=1e-12
        )

    @given(fidelity=unit)
    @settings(max_examples=120)
    def test_werner_parameter_round_trip(self, fidelity):
        assert math.isclose(
            fidelity_from_werner_parameter(werner_parameter(fidelity)),
            fidelity,
            abs_tol=1e-12,
        )


class TestExpectedInputPairs:
    @given(fidelity=purifiable, name=protocol_names, noisy=st.booleans())
    @settings(max_examples=80)
    def test_single_round_consumes_at_least_one_pair(self, fidelity, name, noisy):
        protocol = get_protocol(name, params, noisy=noisy)
        outcome = protocol.purify_identical(BellDiagonalState.werner(fidelity))
        assert outcome.expected_input_pairs >= 1.0
        # Two pairs enter every attempt, so the bound is actually 2.
        assert outcome.expected_input_pairs >= 2.0

    @given(fidelity=purifiable, name=protocol_names, rounds=st.integers(0, 5))
    @settings(max_examples=60)
    def test_tree_cost_is_at_least_one_and_grows_with_depth(self, fidelity, name, rounds):
        protocol = get_protocol(name, params)
        outcomes = protocol.iterate(BellDiagonalState.werner(fidelity), rounds)
        costs = [expected_pairs_for_rounds(outcomes[:k]) for k in range(rounds + 1)]
        assert costs[0] == 1.0
        assert all(cost >= 1.0 for cost in costs)
        assert all(b >= 2.0 * a for a, b in zip(costs, costs[1:]))
