"""Property tests: sweep-grid expansion and spec serialization round-trip.

Expanding a sweep grid and re-serializing every resulting spec must be the
identity (``ScenarioSpec.from_dict(spec.to_dict()) == spec``), the grid must
enumerate exactly the cross product of its axes, and every grid point must
carry the override values it was expanded from.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioSpec, expand_grid, load_scenarios

#: Axis values sized so every workload fits every fabric (width >= qubits).
topology_kinds = st.sampled_from(["mesh", "ring", "torus", "line"])
widths = st.integers(min_value=4, max_value=9)
num_qubits = st.integers(min_value=2, max_value=4)
teleporters = st.integers(min_value=1, max_value=4)
layouts = st.sampled_from(["home_base", "mobile_qubit"])

axes_strategy = st.fixed_dictionaries(
    {},
    optional={
        "topology.kind": st.lists(topology_kinds, min_size=1, max_size=3, unique=True),
        "topology.width": st.lists(widths, min_size=1, max_size=2, unique=True),
        "workload.num_qubits": st.lists(num_qubits, min_size=1, max_size=2, unique=True),
        "physics.teleporters": st.lists(teleporters, min_size=1, max_size=2, unique=True),
        "runtime.layout": st.lists(layouts, min_size=1, max_size=2, unique=True),
    },
).filter(bool)

BASE = {
    "topology": {"kind": "mesh", "width": 6},
    "workload": {"kind": "qft", "num_qubits": 4},
    "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
    "runtime": {"layout": "home_base"},
}


def _dig(mapping, dotted):
    cursor = mapping
    for part in dotted.split("."):
        cursor = cursor[part]
    return cursor


class TestSweepGridRoundTrip:
    @given(axes=axes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_expansion_covers_cross_product_and_round_trips(self, axes):
        specs = expand_grid(BASE, axes, name_prefix="prop")
        expected = 1
        for values in axes.values():
            expected *= len(values)
        assert len(specs) == expected
        assert len({spec.name for spec in specs}) == expected
        for spec in specs:
            rebuilt = ScenarioSpec.from_dict(spec.to_dict())
            assert rebuilt == spec
            assert rebuilt.to_dict() == spec.to_dict()

    @given(axes=axes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_grid_points_carry_their_override_values(self, axes):
        specs = expand_grid(BASE, axes, name_prefix="prop")
        seen = set()
        for spec in specs:
            payload = spec.to_dict()
            point = tuple(_dig(payload, dotted) for dotted in sorted(axes))
            assert point not in seen
            seen.add(point)
            for dotted, values in axes.items():
                assert _dig(payload, dotted) in values

    @given(axes=axes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_sweep_file_shape_reaches_the_same_specs(self, axes):
        """A sweep mapping serialized to JSON and loaded back expands to the
        same specs as direct grid expansion — the loader round-trip."""
        document = {"name": "prop", "base": dict(BASE), "sweep": axes}
        text = json.dumps(document)
        loaded = load_scenarios(json.loads(text), source="<prop>")
        direct = expand_grid(BASE, axes, name_prefix="prop")
        assert [spec.to_dict() for spec in loaded] == [spec.to_dict() for spec in direct]

    @given(axes=axes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_spec_hash_ignores_naming_only(self, axes):
        specs = expand_grid(BASE, axes, name_prefix="prop")
        for spec in specs:
            renamed = spec.with_name("something-else")
            assert renamed.spec_hash == spec.spec_hash
            assert ScenarioSpec.from_dict(renamed.to_dict()) == renamed
