"""Property-based tests for the purification protocols and teleportation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.parameters import IonTrapParameters
from repro.physics.purification import get_protocol
from repro.physics.states import BellDiagonalState
from repro.physics.teleportation import teleportation_fidelity

params = IonTrapParameters.default()
dejmps = get_protocol("dejmps", params)
bbpssw = get_protocol("bbpssw", params)

good_fidelities = st.floats(min_value=0.8, max_value=0.99999, allow_nan=False)
fidelities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPurificationProperties:
    @given(good_fidelities)
    @settings(max_examples=60)
    def test_one_round_improves_high_fidelity_werner_pairs(self, fidelity):
        state = BellDiagonalState.werner(fidelity)
        outcome = dejmps.purify_identical(state)
        assert outcome.fidelity > fidelity - 1e-9 or outcome.fidelity > 0.99999

    @given(good_fidelities)
    @settings(max_examples=60)
    def test_success_probability_is_a_probability(self, fidelity):
        state = BellDiagonalState.werner(fidelity)
        for protocol in (dejmps, bbpssw):
            outcome = protocol.purify_identical(state)
            assert 0.0 < outcome.success_probability <= 1.0

    @given(good_fidelities)
    @settings(max_examples=60)
    def test_output_state_is_normalised(self, fidelity):
        state = BellDiagonalState.werner(fidelity)
        outcome = bbpssw.purify_identical(state)
        assert abs(sum(outcome.state.coefficients) - 1.0) < 1e-6

    @given(good_fidelities, st.integers(min_value=0, max_value=6))
    @settings(max_examples=40)
    def test_error_series_matches_iterate(self, fidelity, rounds):
        state = BellDiagonalState.werner(fidelity)
        series = dejmps.error_series(state, rounds)
        assert len(series) == rounds + 1
        if rounds:
            outcomes = dejmps.iterate(state, rounds)
            assert abs(series[-1] - outcomes[-1].error) < 1e-12

    @given(good_fidelities)
    @settings(max_examples=40)
    def test_dejmps_floor_not_worse_than_bbpssw(self, fidelity):
        state = BellDiagonalState.werner(fidelity)
        assert dejmps.max_achievable_fidelity(state) >= bbpssw.max_achievable_fidelity(state) - 1e-9


class TestTeleportationProperties:
    @given(fidelities, fidelities)
    @settings(max_examples=80)
    def test_output_is_a_fidelity(self, f_data, f_epr):
        out = teleportation_fidelity(f_data, f_epr, params)
        assert 0.0 <= out <= 1.0

    @given(
        st.floats(min_value=0.25, max_value=1.0),
        st.floats(min_value=0.25, max_value=1.0),
        st.floats(min_value=0.25, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_monotone_in_epr_fidelity(self, f_data, f1, f2):
        # Monotonicity in the EPR fidelity holds when the data state is no
        # worse than maximally mixed (4F-1 >= 0), which is the physical regime.
        lo, hi = sorted((f1, f2))
        assert teleportation_fidelity(f_data, lo, params) <= (
            teleportation_fidelity(f_data, hi, params) + 1e-12
        )

    @given(st.floats(min_value=0.25, max_value=1.0))
    @settings(max_examples=60)
    def test_never_better_than_perfect_epr(self, f_epr):
        # Teleporting perfect data through an imperfect pair cannot beat
        # teleporting it through a perfect pair.
        imperfect = teleportation_fidelity(1.0, f_epr, params)
        perfect = teleportation_fidelity(1.0, 1.0, params)
        assert imperfect <= perfect + 1e-12
