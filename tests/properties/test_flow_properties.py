"""Property-based tests for the fluid transport's max-min fairness invariants.

Random concurrent channel mixes are pushed through :class:`FlowTransport` and
the fairness invariants are checked after *every* event:

* rate conservation — no resource is ever allocated beyond its capacity;
* the incremental and vectorized allocators agree with the from-scratch
  reference **bitwise**: identical flow-rate timelines and identical channel
  event traces, not merely close makespans;
* ``utilisation_report`` never needs its ``min(..., 1.0)`` clamp on a
  well-formed run (the usage integral stays within physical capacity);
* the vectorized allocator's CSR structure round-trips: adding and removing
  flows then rebuilding from scratch reproduces the compacted arrays exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.geometry import Coordinate
from repro.network.layout import CommRequest
from repro.network.nodes import ResourceAllocation
from repro.sim.control import PlannedCommunication
from repro.sim.engine import SimulationEngine
from repro.sim.flow import FlowTransport
from repro.sim.machine import QuantumMachine
from repro.trace import FlowRateChanged, RouteChosen, TraceBus

ALL_ALLOCATORS = ("incremental", "reference", "vectorized")

GRID_SIDE = 5
#: Relative head-room for float round-off in capacity checks.
EPS = 1e-9

coords = st.builds(
    Coordinate,
    x=st.integers(min_value=0, max_value=GRID_SIDE - 1),
    y=st.integers(min_value=0, max_value=GRID_SIDE - 1),
)

#: (source, destination, start-delay) triples describing one channel each.
channel_specs = st.lists(
    st.tuples(coords, coords, st.floats(min_value=0.0, max_value=5000.0)),
    min_size=1,
    max_size=8,
)

allocations = st.sampled_from(
    [
        ResourceAllocation(1, 1, 1),
        ResourceAllocation(2, 2, 1),
        ResourceAllocation(8, 8, 1),
        ResourceAllocation(4, 2, 3),
    ]
)


def _planned(machine, source, dest, qubit):
    plan = machine.planner.plan(source, dest)
    request = CommRequest(source=source, dest=dest, qubit=qubit)
    return PlannedCommunication(request=request, plan=plan)


def _run_transport(allocation, specs, allocator, check=None, trace=None):
    """Drive a FlowTransport through ``specs``; call ``check`` after each event."""
    machine = QuantumMachine(GRID_SIDE, allocation=allocation)
    engine = SimulationEngine(trace=trace)
    transport = FlowTransport(engine, machine, allocator=allocator)
    for qubit, (source, dest, delay) in enumerate(specs):
        planned = _planned(machine, source, dest, qubit)
        engine.schedule(delay, lambda p=planned: transport.start(p, lambda: None))
    while engine.step():
        if check is not None:
            check(transport)
    return transport, engine


def _assert_rates_conserve_capacity(transport):
    for key, load in transport.resource_loads().items():
        capacity = transport.capacity_of(key)
        assert load <= capacity * (1.0 + EPS) + EPS, (
            f"resource {key} over capacity: load={load}, capacity={capacity}"
        )


class TestMaxMinFairnessInvariants:
    @given(allocations, channel_specs)
    @settings(max_examples=40, deadline=None)
    def test_rates_never_exceed_capacity(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        transport, _ = _run_transport(
            allocation, specs, "incremental", check=_assert_rates_conserve_capacity
        )
        assert transport.active_flows == 0
        assert len(transport.records) == len(specs)

    @given(allocations, channel_specs)
    @settings(max_examples=40, deadline=None)
    def test_reference_allocator_conserves_capacity_too(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        _run_transport(
            allocation, specs, "reference", check=_assert_rates_conserve_capacity
        )

    @given(allocations, channel_specs)
    @settings(max_examples=25, deadline=None)
    def test_incremental_matches_reference_makespan(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        results = {}
        for allocator in ALL_ALLOCATORS:
            transport, engine = _run_transport(allocation, specs, allocator)
            results[allocator] = (engine.now, len(transport.records))
        for allocator in ALL_ALLOCATORS[1:]:
            assert results[allocator][1] == results["incremental"][1]
            assert abs(results[allocator][0] - results["incremental"][0]) <= 1e-6

    @given(allocations, channel_specs)
    @settings(max_examples=25, deadline=None)
    def test_all_allocators_bitwise_identical(self, allocation, specs):
        """reference/incremental/vectorized: bitwise-equal rate timelines,
        channel records, completion order and makespan on random scenarios."""
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        outcomes = {}
        for allocator in ALL_ALLOCATORS:
            bus = TraceBus(kinds=[FlowRateChanged.kind])
            transport, engine = _run_transport(allocation, specs, allocator, trace=bus)
            outcomes[allocator] = {
                # FlowRateChanged is a frozen dataclass: == is exact field
                # (bitwise float) equality, so this pins the full rate dict
                # timeline, not just the makespan.
                "rates": list(bus.records),
                "channels": [tuple(sorted(vars(r).items())) for r in transport.records],
                "now": engine.now,
            }
        baseline = outcomes["reference"]
        for allocator in ("incremental", "vectorized"):
            assert outcomes[allocator]["rates"] == baseline["rates"], allocator
            assert outcomes[allocator]["channels"] == baseline["channels"], allocator
            assert outcomes[allocator]["now"] == baseline["now"], allocator

    @given(allocations, channel_specs)
    @settings(max_examples=25, deadline=None)
    def test_utilisation_report_never_needs_its_clamp(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        transport, engine = _run_transport(allocation, specs, "incremental")
        elapsed = engine.now
        if elapsed <= 0:
            return
        raw = transport.utilisation_report(elapsed, clamp=False)
        clamped = transport.utilisation_report(elapsed)
        for kind, value in raw.items():
            assert 0.0 <= value <= 1.0 + EPS, f"{kind} utilisation {value} needs the clamp"
            assert clamped[kind] <= 1.0


# --------------------------------------------------------------------------
# Three-way allocator parity on multi-path fabrics under every routing policy

#: (fabric kwargs, host count) — small instances so hypothesis stays fast.
FABRIC_CONFIGS = (
    ({"topology_kind": "fat_tree", "width": 4}, 16),
    ({"topology_kind": "leaf_spine", "width": 3, "height": 2,
      "topology_options": {"hosts_per_leaf": 2}}, 6),
)

ROUTING_POLICIES = ("ecmp", "least_loaded", "adaptive")

#: (host-index pair, start-delay) triples; indices reduced mod host count.
fabric_channel_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1023),
        st.integers(min_value=0, max_value=1023),
        st.floats(min_value=0.0, max_value=5000.0),
    ),
    min_size=1,
    max_size=8,
)


def _run_fabric_transport(config, policy, specs, allocator, trace=None):
    kwargs, hosts = config
    machine = QuantumMachine(
        allocation=ResourceAllocation(2, 2, 1),
        routing_policy=policy,
        **kwargs,
    )
    engine = SimulationEngine(trace=trace)
    transport = FlowTransport(engine, machine, allocator=allocator)
    for qubit, (ia, ib, delay) in enumerate(specs):
        source = machine.topology.host(ia % hosts)
        dest = machine.topology.host(ib % hosts)
        planned = _planned(machine, source, dest, qubit)
        engine.schedule(delay, lambda p=planned: transport.start(p, lambda: None))
    engine.run()
    return transport, engine


class TestFabricAllocatorParity:
    @given(
        st.sampled_from(FABRIC_CONFIGS),
        st.sampled_from(ROUTING_POLICIES),
        fabric_channel_specs,
    )
    @settings(max_examples=30, deadline=None)
    def test_all_allocators_bitwise_identical_under_balancing(
        self, config, policy, specs
    ):
        """Load-balanced multi-path routing must not break the allocator
        equivalence: on random fat-tree/leaf-spine channel mixes, every
        policy yields bitwise-equal rate timelines, channel records and
        makespans across reference/incremental/vectorized."""
        hosts = config[1]
        specs = [(a, b, t) for a, b, t in specs if a % hosts != b % hosts]
        if not specs:
            return
        outcomes = {}
        for allocator in ALL_ALLOCATORS:
            bus = TraceBus(kinds=[FlowRateChanged.kind, RouteChosen.kind])
            transport, engine = _run_fabric_transport(
                config, policy, specs, allocator, trace=bus
            )
            outcomes[allocator] = {
                "trace": list(bus.records),
                "channels": [tuple(sorted(vars(r).items())) for r in transport.records],
                "now": engine.now,
            }
        baseline = outcomes["reference"]
        routes = [r for r in baseline["trace"] if r.kind == RouteChosen.kind]
        assert len(routes) == len(specs)
        assert all(r.policy == policy for r in routes)
        for allocator in ("incremental", "vectorized"):
            assert outcomes[allocator]["trace"] == baseline["trace"], allocator
            assert outcomes[allocator]["channels"] == baseline["channels"], allocator
            assert outcomes[allocator]["now"] == baseline["now"], allocator


# --------------------------------------------------------------------------
# FlowPack CSR structure round-trip properties (satellite: vectorized plane)

np = pytest.importorskip("numpy")

from repro.errors import SimulationError  # noqa: E402
from repro.sim.flowpack import FlowPack  # noqa: E402

PACK_KINDS = ("alpha", "beta")

#: Per-flow demand maps over a small interned key space.  Work values are
#: drawn from a fixed palette so exact float comparison is meaningful.
pack_demands = st.lists(
    st.dictionaries(
        st.tuples(st.sampled_from(PACK_KINDS), st.integers(min_value=0, max_value=5)),
        st.sampled_from([0.5, 1.0, 2.0, 3.25]),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)


def _capacity_of(key):
    kind, index = key
    return 4.0 + index + (0.5 if kind == "beta" else 0.0)


def _build_pack(demand_maps):
    pack = FlowPack(_capacity_of, PACK_KINDS)
    for flow_id, demands in enumerate(demand_maps):
        pack.add_flow(
            flow_id,
            demands,
            remaining=1.0 + flow_id,
            start_us=10.0 * flow_id,
            floor_us=float(flow_id % 3),
        )
    return pack


def _assert_packs_identical(a, b):
    assert a.col_keys == b.col_keys
    left, right = a.arrays(), b.arrays()
    assert left.keys() == right.keys()
    for name in left:
        assert np.array_equal(left[name], right[name]), name


class TestFlowPackStructure:
    @given(pack_demands, st.data())
    @settings(max_examples=60, deadline=None)
    def test_remove_compact_matches_fresh_rebuild(self, demand_maps, data):
        """add → remove subset → compact yields the exact arrays a fresh
        build over only the survivors would produce."""
        pack = _build_pack(demand_maps)
        doomed = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(demand_maps) - 1), unique=True
            )
        )
        for flow_id in doomed:
            pack.remove_flow(flow_id)
        rebuilt = pack.rebuild(lambda fid: demand_maps[fid])
        pack.compact()
        _assert_packs_identical(pack, rebuilt)
        assert pack.n_flows == len(demand_maps) - len(doomed)

    @given(pack_demands)
    @settings(max_examples=40, deadline=None)
    def test_resource_view_is_exact_transpose(self, demand_maps):
        pack = _build_pack(demand_maps)
        indptr, order = pack.resource_view()
        arrays = pack.arrays()
        assert indptr[-1] == pack.n_entries
        for col in range(pack.n_cols):
            entries = order[indptr[col] : indptr[col + 1]]
            # Every listed entry belongs to this column, in flow-id order.
            assert (arrays["entry_col"][entries] == col).all()
            assert (np.diff(entries) > 0).all()
        # The transpose covers each entry exactly once.
        assert sorted(order.tolist()) == list(range(pack.n_entries))

    @given(pack_demands)
    @settings(max_examples=40, deadline=None)
    def test_advance_clamps_remaining_at_zero(self, demand_maps):
        pack = _build_pack(demand_maps)
        pack.reallocate(1e-12)
        pack.advance(1e12)
        remaining = pack.arrays()["remaining"]
        assert (remaining >= 0.0).all()

    def test_duplicate_and_non_monotonic_flow_ids_rejected(self):
        pack = FlowPack(_capacity_of, PACK_KINDS)
        pack.add_flow(3, {("alpha", 0): 1.0})
        with pytest.raises(SimulationError):
            pack.add_flow(3, {("alpha", 0): 1.0})
        with pytest.raises(SimulationError):
            pack.add_flow(2, {("alpha", 1): 1.0})
