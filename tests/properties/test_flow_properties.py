"""Property-based tests for the fluid transport's max-min fairness invariants.

Random concurrent channel mixes are pushed through :class:`FlowTransport` and
the fairness invariants are checked after *every* event:

* rate conservation — no resource is ever allocated beyond its capacity;
* the incremental allocator agrees with the from-scratch reference;
* ``utilisation_report`` never needs its ``min(..., 1.0)`` clamp on a
  well-formed run (the usage integral stays within physical capacity).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.geometry import Coordinate
from repro.network.layout import CommRequest
from repro.network.nodes import ResourceAllocation
from repro.sim.control import PlannedCommunication
from repro.sim.engine import SimulationEngine
from repro.sim.flow import FlowTransport
from repro.sim.machine import QuantumMachine

GRID_SIDE = 5
#: Relative head-room for float round-off in capacity checks.
EPS = 1e-9

coords = st.builds(
    Coordinate,
    x=st.integers(min_value=0, max_value=GRID_SIDE - 1),
    y=st.integers(min_value=0, max_value=GRID_SIDE - 1),
)

#: (source, destination, start-delay) triples describing one channel each.
channel_specs = st.lists(
    st.tuples(coords, coords, st.floats(min_value=0.0, max_value=5000.0)),
    min_size=1,
    max_size=8,
)

allocations = st.sampled_from(
    [
        ResourceAllocation(1, 1, 1),
        ResourceAllocation(2, 2, 1),
        ResourceAllocation(8, 8, 1),
        ResourceAllocation(4, 2, 3),
    ]
)


def _planned(machine, source, dest, qubit):
    plan = machine.planner.plan(source, dest)
    request = CommRequest(source=source, dest=dest, qubit=qubit)
    return PlannedCommunication(request=request, plan=plan)


def _run_transport(allocation, specs, allocator, check=None):
    """Drive a FlowTransport through ``specs``; call ``check`` after each event."""
    machine = QuantumMachine(GRID_SIDE, allocation=allocation)
    engine = SimulationEngine()
    transport = FlowTransport(engine, machine, allocator=allocator)
    for qubit, (source, dest, delay) in enumerate(specs):
        planned = _planned(machine, source, dest, qubit)
        engine.schedule(delay, lambda p=planned: transport.start(p, lambda: None))
    while engine.step():
        if check is not None:
            check(transport)
    return transport, engine


def _assert_rates_conserve_capacity(transport):
    for key, load in transport.resource_loads().items():
        capacity = transport.capacity_of(key)
        assert load <= capacity * (1.0 + EPS) + EPS, (
            f"resource {key} over capacity: load={load}, capacity={capacity}"
        )


class TestMaxMinFairnessInvariants:
    @given(allocations, channel_specs)
    @settings(max_examples=40, deadline=None)
    def test_rates_never_exceed_capacity(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        transport, _ = _run_transport(
            allocation, specs, "incremental", check=_assert_rates_conserve_capacity
        )
        assert transport.active_flows == 0
        assert len(transport.records) == len(specs)

    @given(allocations, channel_specs)
    @settings(max_examples=40, deadline=None)
    def test_reference_allocator_conserves_capacity_too(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        _run_transport(
            allocation, specs, "reference", check=_assert_rates_conserve_capacity
        )

    @given(allocations, channel_specs)
    @settings(max_examples=25, deadline=None)
    def test_incremental_matches_reference_makespan(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        results = {}
        for allocator in ("incremental", "reference"):
            transport, engine = _run_transport(allocation, specs, allocator)
            results[allocator] = (engine.now, len(transport.records))
        assert results["incremental"][1] == results["reference"][1]
        assert abs(results["incremental"][0] - results["reference"][0]) <= 1e-6

    @given(allocations, channel_specs)
    @settings(max_examples=25, deadline=None)
    def test_utilisation_report_never_needs_its_clamp(self, allocation, specs):
        specs = [(s, d, t) for s, d, t in specs if s != d]
        if not specs:
            return
        transport, engine = _run_transport(allocation, specs, "incremental")
        elapsed = engine.now
        if elapsed <= 0:
            return
        raw = transport.utilisation_report(elapsed, clamp=False)
        clamped = transport.utilisation_report(elapsed)
        for kind, value in raw.items():
            assert 0.0 <= value <= 1.0 + EPS, f"{kind} utilisation {value} needs the clamp"
            assert clamped[kind] <= 1.0
