"""Cross-run warm-start cache: keying, adoption, purity and sweep plumbing."""

import pytest

from repro.runtime import ExperimentRunner
from repro.scenarios import bench_payload, build_machine, build_stream, get_scenario, run_record
from repro.scenarios.spec import ScenarioSpec, apply_overrides
from repro.scenarios.warmstart import (
    WarmStartCache,
    attach,
    global_cache,
    structural_key,
)
from repro.sim.simulator import CommunicationSimulator


def _variant(spec, overrides):
    return ScenarioSpec.from_dict(apply_overrides(spec.to_dict(), overrides))


class TestStructuralKey:
    def test_non_structural_knobs_share_one_key(self):
        spec = get_scenario("smoke")
        base = structural_key(spec)
        for overrides in (
            {"physics.generator_bandwidth_scale": 2.5},
            {"physics.logical_gate_us": 123.0},
            {"runtime.allocator": "vectorized"},
            {"runtime.backend": "detailed"},
            {"runtime.max_events": 10_000},
        ):
            assert structural_key(_variant(spec, overrides)) == base, overrides

    def test_structural_knobs_change_the_key(self):
        spec = get_scenario("smoke")
        base = structural_key(spec)
        for overrides in (
            {"topology.width": 4},
            {"physics.teleporters": 7},
            {"runtime.layout": "mobile_qubit"},
            {"workload.num_qubits": 8},
        ):
            assert structural_key(_variant(spec, overrides)) != base, overrides


class TestWarmStartCache:
    def test_hit_miss_counters_and_reuse(self):
        cache = WarmStartCache(max_entries=4)
        entry, hit = cache.entry_for("k")
        assert not hit and entry.reuses == 0
        again, hit = cache.entry_for("k")
        assert hit and again is entry and again.reuses == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_lru_eviction_drops_oldest(self):
        cache = WarmStartCache(max_entries=2)
        cache.entry_for("a")
        cache.entry_for("b")
        cache.entry_for("a")  # refresh a; b is now the LRU entry
        cache.entry_for("c")  # evicts b
        assert cache.stats()["entries"] == 2
        _, hit = cache.entry_for("a")
        assert hit
        _, hit = cache.entry_for("b")
        assert not hit

    def test_clear_resets_counters(self):
        cache = WarmStartCache()
        cache.entry_for("k")
        cache.entry_for("k")
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestAttachment:
    def test_second_machine_adopts_populated_entry_and_agrees_bitwise(self):
        spec = get_scenario("smoke")
        cache = WarmStartCache()
        stream = build_stream(spec)

        first = build_machine(spec)
        info = attach(first, spec, cache=cache)
        assert info["hit"] is False and info["plans"] == 0
        cold = CommunicationSimulator(first).run(stream)

        second = build_machine(spec)
        info = attach(second, spec, cache=cache)
        assert info["hit"] is True
        assert info["plans"] > 0  # the first run populated the shared entry
        assert info["demands"] > 0
        warm = CommunicationSimulator(second).run(stream)
        # Warm-started state is a pure function of the structural key: the
        # adopted plans/profiles/demands must not move a single bit.
        assert warm.makespan_us == cold.makespan_us
        assert warm.operation_count == cold.operation_count

    def test_result_metadata_carries_warm_start_info(self):
        spec = get_scenario("smoke")
        machine = build_machine(spec)
        result = CommunicationSimulator(machine).run(build_stream(spec))
        info = result.metadata["warm_start"]
        assert info["key"] == structural_key(spec)
        assert set(info) >= {"hit", "reuses", "plans", "hits", "misses"}

    def test_swept_scalar_variants_share_an_entry(self):
        spec = get_scenario("smoke")
        cache = WarmStartCache()
        for scale in (1.0, 1.5, 2.0):
            variant = _variant(spec, {"physics.generator_bandwidth_scale": scale})
            machine = build_machine(variant)
            attach(machine, variant, cache=cache)
        stats = cache.stats()
        assert stats == {"hits": 2, "misses": 1, "entries": 1}


class TestSweepPlumbing:
    def test_single_worker_sweep_hits_across_points(self, tmp_path):
        """The acceptance gate: a repeated-structure sweep records hits > 0."""
        global_cache().clear()
        spec = get_scenario("smoke")
        grid = [
            {"spec": apply_overrides(spec.to_dict(), {"physics.generator_bandwidth_scale": s})}
            for s in (1.0, 1.25, 1.5)
        ]
        runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path / "cache"))
        records = runner.sweep(run_record, grid)
        assert len(records) == 3
        stats = global_cache().stats()
        assert stats["hits"] >= 2
        assert stats["entries"] >= 1

    def test_bench_payload_records_warm_start_counters(self):
        explicit = bench_payload([], warm_start={"hits": 3, "misses": 1, "entries": 1})
        assert explicit["warm_start"] == {"hits": 3, "misses": 1, "entries": 1}
        ambient = bench_payload([])
        assert set(ambient["warm_start"]) == {"hits", "misses", "entries"}


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
