"""Seed determinism: identical specs must yield identical traces anywhere.

The stochastic workload generators draw from SHA-256-derived named
substreams (:mod:`repro.workloads.rng`), so nothing about a scenario's
outcome depends on process identity, hash randomization or global RNG state.
These tests pin that at three levels: the substream service itself, repeated
in-process ``run_record`` calls, and a fresh interpreter with hash
randomization forced to a different value.
"""

import json
import os
import subprocess
import sys

from repro.scenarios import get_scenario, run_record
from repro.trace import trace_fingerprint
from repro.verify import traced_run
from repro.workloads.rng import substream_rng, substream_seed
from repro.workloads.synthetic import permutation_stream, random_stream

STOCHASTIC_SCENARIO = "torus_permutation"


def _pairs(stream):
    return [op.qubits for op in stream.operations]


class TestSubstreamService:
    def test_same_address_same_stream(self):
        a = substream_rng("permutation", 16, seed=7)
        b = substream_rng("permutation", 16, seed=7)
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_distinct_names_are_isolated(self):
        assert substream_seed("permutation", 16, seed=7) != substream_seed("random", 16, seed=7)

    def test_parameters_address_distinct_substreams(self):
        assert substream_seed("random", 16, 32, seed=0) != substream_seed("random", 16, 64, seed=0)

    def test_none_seed_is_zero_not_entropy(self):
        assert substream_seed("permutation", 16, seed=None) == substream_seed(
            "permutation", 16, seed=0
        )
        assert _pairs(permutation_stream(16, seed=None)) == _pairs(permutation_stream(16, seed=0))

    def test_generators_draw_from_service(self):
        assert _pairs(permutation_stream(12, seed=3)) == _pairs(permutation_stream(12, seed=3))
        assert _pairs(random_stream(10, 20, seed=5)) == _pairs(random_stream(10, 20, seed=5))


class TestScenarioDeterminism:
    def test_two_independent_run_record_calls_agree(self):
        spec = get_scenario(STOCHASTIC_SCENARIO)
        first = run_record(spec)
        second = run_record(spec)
        assert first["makespan_us"] == second["makespan_us"]
        assert first["channel_count"] == second["channel_count"]
        assert first["utilisation"] == second["utilisation"]

    def test_two_independent_traces_are_bitwise_identical(self):
        spec = get_scenario(STOCHASTIC_SCENARIO)
        a = traced_run(spec)
        b = traced_run(spec)
        assert trace_fingerprint(a.records) == trace_fingerprint(b.records)

    def test_fresh_interpreter_reproduces_the_trace(self):
        """A subprocess with a different PYTHONHASHSEED must produce the same
        makespan and trace fingerprint as this process."""
        spec = get_scenario(STOCHASTIC_SCENARIO)
        local = traced_run(spec)
        program = (
            "import json\n"
            "from repro.scenarios import get_scenario\n"
            "from repro.trace import trace_fingerprint\n"
            "from repro.verify import traced_run\n"
            f"run = traced_run(get_scenario({STOCHASTIC_SCENARIO!r}))\n"
            "print(json.dumps({'makespan': run.makespan_us.hex(),"
            " 'fingerprint': trace_fingerprint(run.records)}))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH", "")) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout
        remote = json.loads(output.strip().splitlines()[-1])
        assert remote["makespan"] == local.makespan_us.hex()
        assert remote["fingerprint"] == trace_fingerprint(local.records)
