"""Scenario spec codec: round-trips, validation errors, overrides, hashing."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import NoiseSpec, ScenarioSpec, apply_overrides, deep_merge
from repro.scenarios.spec import PhysicsSpec, RuntimeSpec, TopologySpec, WorkloadSpec


def minimal(name="t"):
    return {
        "name": name,
        "topology": {"kind": "ring", "width": 9},
        "workload": {"kind": "qft", "num_qubits": 8},
    }


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = ScenarioSpec.from_dict(minimal())
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_fill_missing_sections(self):
        spec = ScenarioSpec.from_dict({"name": "defaults"})
        assert spec.topology == TopologySpec()
        assert spec.workload == WorkloadSpec()
        assert spec.physics == PhysicsSpec()
        assert spec.runtime == RuntimeSpec()

    def test_params_round_trip(self):
        data = minimal()
        data["workload"] = {"kind": "random", "num_qubits": 6, "params": {"seed": 9}}
        spec = ScenarioSpec.from_dict(data)
        assert spec.workload.params == {"seed": 9}
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown keys.*frobnicate"):
            ScenarioSpec.from_dict({**minimal(), "frobnicate": 1})

    def test_unknown_section_key(self):
        data = minimal()
        data["topology"]["wormholes"] = True
        with pytest.raises(ScenarioError, match="topology has unknown keys"):
            ScenarioSpec.from_dict(data)

    def test_unknown_topology_kind(self):
        data = minimal()
        data["topology"]["kind"] = "hypercube"
        with pytest.raises(ScenarioError, match="topology.kind"):
            ScenarioSpec.from_dict(data)

    def test_unknown_workload_kind(self):
        data = minimal()
        data["workload"]["kind"] = "grover"
        with pytest.raises(ScenarioError, match="workload.kind"):
            ScenarioSpec.from_dict(data)

    def test_unknown_workload_param(self):
        data = minimal()
        data["workload"]["params"] = {"rounds": 2}  # qft takes none
        with pytest.raises(ScenarioError, match="does not take parameters"):
            ScenarioSpec.from_dict(data)

    def test_bad_types_rejected(self):
        data = minimal()
        data["topology"]["width"] = "wide"
        with pytest.raises(ScenarioError, match="topology.width must be an integer"):
            ScenarioSpec.from_dict(data)

    def test_out_of_range_rejected(self):
        data = minimal()
        data["workload"]["num_qubits"] = 1
        with pytest.raises(ScenarioError, match="workload.num_qubits must be >= 2"):
            ScenarioSpec.from_dict(data)

    def test_bool_is_not_an_integer(self):
        data = minimal()
        data["topology"]["width"] = True
        with pytest.raises(ScenarioError, match="must be an integer"):
            ScenarioSpec.from_dict(data)

    def test_bad_allocator_rejected(self):
        data = minimal()
        data["runtime"] = {"allocator": "magic"}
        with pytest.raises(ScenarioError, match="runtime.allocator"):
            ScenarioSpec.from_dict(data)

    def test_bad_routing_rejected(self):
        data = minimal()
        data["runtime"] = {"routing": "zigzag"}
        with pytest.raises(ScenarioError, match="runtime.routing"):
            ScenarioSpec.from_dict(data)

    def test_backend_defaults_to_fluid(self):
        assert ScenarioSpec.from_dict(minimal()).runtime.backend == "fluid"

    def test_backend_accepted(self):
        data = minimal()
        data["runtime"] = {"backend": "detailed"}
        spec = ScenarioSpec.from_dict(data)
        assert spec.runtime.backend == "detailed"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_bad_backend_rejected(self):
        data = minimal()
        data["runtime"] = {"backend": "quantum"}
        with pytest.raises(ScenarioError, match="runtime.backend"):
            ScenarioSpec.from_dict(data)

    def test_with_backend_round_trip(self):
        spec = ScenarioSpec.from_dict(minimal())
        detailed = spec.with_backend("detailed")
        assert detailed.runtime.backend == "detailed"
        assert detailed.spec_hash != spec.spec_hash
        with pytest.raises(ScenarioError, match="runtime.backend"):
            spec.with_backend("bogus")

    def test_missing_name_rejected(self):
        with pytest.raises(ScenarioError, match="scenario.name"):
            ScenarioSpec.from_dict({"topology": {"kind": "mesh"}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ScenarioError, match="must be a mapping"):
            ScenarioSpec.from_dict([1, 2, 3])

    def test_unresolved_extends_rejected(self):
        with pytest.raises(ScenarioError, match="unresolved 'extends'"):
            ScenarioSpec.from_dict({**minimal(), "extends": "paper_baseline"})

    def test_zero_bandwidth_scale_rejected(self):
        data = minimal()
        data["physics"] = {"generator_bandwidth_scale": 0}
        with pytest.raises(ScenarioError, match="generator_bandwidth_scale"):
            ScenarioSpec.from_dict(data)


class TestNoiseSpec:
    def test_absent_noise_means_tracking_off(self):
        spec = ScenarioSpec.from_dict(minimal())
        assert spec.noise is None
        assert "noise" not in spec.to_dict()

    def test_explicit_null_noise_means_absent(self):
        spec = ScenarioSpec.from_dict({**minimal(), "noise": None})
        assert spec.noise is None

    def test_empty_noise_mapping_enables_tracking(self):
        spec = ScenarioSpec.from_dict({**minimal(), "noise": {}})
        assert spec.noise == NoiseSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_noise_fields_round_trip(self):
        data = {**minimal(), "noise": {"base_fidelity": 0.99, "target_fidelity": 0.999}}
        spec = ScenarioSpec.from_dict(data)
        assert spec.noise.base_fidelity == 0.99
        assert spec.noise.target_fidelity == 0.999
        assert spec.noise.gate_error is None
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_noise_key_rejected(self):
        with pytest.raises(ScenarioError, match="noise has unknown keys"):
            ScenarioSpec.from_dict({**minimal(), "noise": {"temperature": 4}})

    def test_out_of_range_noise_rejected(self):
        for key, bad in (
            ("base_fidelity", 0.0),
            ("base_fidelity", 1.5),
            ("gate_error", 1.0),
            ("measurement_error", -0.1),
            ("target_fidelity", 1.0),
            ("target_fidelity", 0.0),
        ):
            with pytest.raises(ScenarioError, match=f"noise.{key}"):
                ScenarioSpec.from_dict({**minimal(), "noise": {key: bad}})

    def test_non_finite_noise_rejected(self):
        # Regression: NaN slips through bare range checks (all comparisons
        # are False), so the codec must reject non-finite floats explicitly.
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ScenarioError, match="must be finite"):
                ScenarioSpec.from_dict({**minimal(), "noise": {"gate_error": bad}})

    def test_non_finite_physics_floats_rejected(self):
        data = minimal()
        data["physics"] = {"logical_gate_us": float("nan")}
        with pytest.raises(ScenarioError, match="must be finite"):
            ScenarioSpec.from_dict(data)

    def test_with_noise_round_trip(self):
        spec = ScenarioSpec.from_dict(minimal())
        noisy = spec.with_noise({"base_fidelity": 0.995})
        assert noisy.noise.base_fidelity == 0.995
        assert noisy.spec_hash != spec.spec_hash
        assert noisy.with_noise(None) == spec
        with pytest.raises(ScenarioError, match="noise"):
            spec.with_noise({"bogus": 1})

    def test_noise_sweepable_as_dotted_override(self):
        data = apply_overrides(minimal(), {"noise.base_fidelity": 0.99})
        spec = ScenarioSpec.from_dict(data)
        assert spec.noise is not None
        assert spec.noise.base_fidelity == 0.99


class TestSpecHash:
    def test_name_and_description_do_not_affect_hash(self):
        a = ScenarioSpec.from_dict({**minimal("a"), "description": "x"})
        b = ScenarioSpec.from_dict({**minimal("b"), "description": "y"})
        assert a.spec_hash == b.spec_hash

    def test_content_changes_hash(self):
        a = ScenarioSpec.from_dict(minimal())
        data = minimal()
        data["workload"]["num_qubits"] = 6
        b = ScenarioSpec.from_dict(data)
        assert a.spec_hash != b.spec_hash

    def test_layout_aliases_normalise_to_one_hash(self):
        hashes = set()
        for alias in ("home_base", "homebase"):
            data = minimal()
            data["runtime"] = {"layout": alias}
            spec = ScenarioSpec.from_dict(data)
            assert spec.runtime.layout == "home_base"
            hashes.add(spec.spec_hash)
        assert len(hashes) == 1


class TestOverrides:
    def test_dotted_override(self):
        data = apply_overrides(minimal(), {"topology.kind": "mesh", "physics.purifiers": 2})
        assert data["topology"]["kind"] == "mesh"
        assert data["physics"]["purifiers"] == 2
        # The original is untouched.
        assert minimal()["topology"]["kind"] == "ring"

    def test_override_into_non_mapping_rejected(self):
        with pytest.raises(ScenarioError, match="descends into non-mapping"):
            apply_overrides({"name": "x"}, {"name.deep": 1})

    def test_deep_merge_merges_sections(self):
        merged = deep_merge(
            {"physics": {"teleporters": 4, "purifiers": 1}},
            {"physics": {"purifiers": 2}},
        )
        assert merged == {"physics": {"teleporters": 4, "purifiers": 2}}
