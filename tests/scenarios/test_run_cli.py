"""End-to-end scenario tests: build, run, allocator parity, runner and CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.cli import main
from repro.runtime.runner import ExperimentRunner
from repro.scenarios import (
    ScenarioSpec,
    build_machine,
    build_stream,
    default_grid,
    get_scenario,
    run_record,
)


class TestBuild:
    def test_machine_matches_spec(self):
        spec = get_scenario("torus_permutation")
        machine = build_machine(spec)
        assert machine.topology.fabric == "torus"
        assert machine.topology.wrap_x and machine.topology.wrap_y
        assert machine.num_qubits == 16
        assert machine.allocation.teleporters_per_node == 2

    def test_stream_matches_spec(self):
        spec = get_scenario("line_neighbours")
        stream = build_stream(spec)
        assert stream.num_qubits == 8
        assert "nearest_neighbour" in stream.name

    def test_bandwidth_scale_reaches_machine(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "fast_factories",
                "topology": {"kind": "mesh", "width": 3},
                "workload": {"kind": "qft", "num_qubits": 4},
                "physics": {"generators": 2, "generator_bandwidth_scale": 2.5},
            }
        )
        machine = build_machine(spec)
        assert machine.generator_bandwidth_per_link() == pytest.approx(5.0)


class TestRunScenario:
    def test_round_trip_spec_build_run_results(self):
        spec = get_scenario("smoke")
        record = run_record(spec)
        assert record["name"] == "smoke"
        assert record["spec_hash"] == spec.spec_hash
        assert record["makespan_us"] > 0
        assert record["operations"] == 15  # QFT on 6 qubits
        assert record["channel_count"] == 30  # two communications per op
        # The record round-trips through JSON (what --emit-bench relies on)
        # and through the spec codec.
        assert json.loads(json.dumps(record))["spec"] == spec.to_dict()
        assert ScenarioSpec.from_dict(record["spec"]) == spec

    def test_accepts_plain_mapping(self):
        record = run_record(get_scenario("smoke").to_dict())
        assert record["name"] == "smoke"

    def test_qubits_must_fit_fabric(self):
        spec_dict = get_scenario("ring_qft").to_dict()
        spec_dict["workload"]["num_qubits"] = 10  # ring has 9 nodes
        with pytest.raises(ConfigurationError, match="do not fit"):
            run_record(spec_dict)

    def test_wrap_fabric_shortens_makespan(self):
        # Same workload and physics; the ring's wrap links shorten the mean
        # channel, so it must not be slower than the line.
        line = run_record(
            ScenarioSpec.from_dict(
                {
                    "name": "l",
                    "topology": {"kind": "line", "width": 9},
                    "workload": {"kind": "qft", "num_qubits": 8},
                }
            )
        )
        ring = run_record(
            ScenarioSpec.from_dict(
                {
                    "name": "r",
                    "topology": {"kind": "ring", "width": 9},
                    "workload": {"kind": "qft", "num_qubits": 8},
                }
            )
        )
        assert ring["total_hops"] < line["total_hops"]
        assert ring["makespan_us"] < line["makespan_us"]

    def test_allocators_agree_on_wrap_fabrics(self):
        # The three-way allocator parity must survive the new fabrics.
        for name in ("ring_qft", "torus_permutation"):
            base = get_scenario(name).to_dict()
            makespans = {}
            for allocator in ("incremental", "reference", "vectorized"):
                data = json.loads(json.dumps(base))
                data["runtime"]["allocator"] = allocator
                makespans[allocator] = run_record(data)["makespan_us"]
            for allocator in ("incremental", "vectorized"):
                assert makespans[allocator] == pytest.approx(
                    makespans["reference"], abs=1e-6
                )


class TestRunnerIntegration:
    def test_grid_sweeps_through_pool_with_cache(self, tmp_path):
        specs = default_grid(("mesh", "ring"), ("permutation",))
        runner = ExperimentRunner(workers=2, cache_dir=str(tmp_path))
        grid = [{"spec": spec.to_dict()} for spec in specs]
        first = runner.sweep_records(run_record, grid)
        assert [p.cached for p in first] == [False, False]
        second = runner.sweep_records(run_record, grid)
        assert [p.cached for p in second] == [True, True]
        assert [p.result["makespan_us"] for p in second] == [
            p.result["makespan_us"] for p in first
        ]

    def test_corrupt_cache_entry_reports_recompute_not_hit(self, tmp_path):
        spec = get_scenario("smoke")
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        grid = [{"spec": spec.to_dict()}]
        (point,) = runner.sweep_records(run_record, grid)
        with open(runner.cache.path_for(point.cache_key), "wb") as handle:
            handle.write(b"truncated")
        (again,) = runner.sweep_records(run_record, grid)
        # The entry existed on disk but could not be served: the point must
        # report a recompute, not a hit (the bench trajectory depends on it).
        assert not again.cached
        assert again.result["makespan_us"] == point.result["makespan_us"]


class TestCli:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "torus_permutation" in out

    def test_scenarios_run_named(self, tmp_path, capsys):
        code = main(["scenarios", "run", "smoke", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "makespan" in out

    def test_backends_lists_registered_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "fluid" in out and "detailed" in out

    def test_scenarios_run_backend_override(self, tmp_path, capsys):
        code = main(
            [
                "scenarios",
                "run",
                "smoke",
                "--backend",
                "detailed",
                "--no-cache",
                "--emit-bench",
                str(tmp_path / "bench.json"),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["scenarios"][0]["backend"] == "detailed"

    def test_scenarios_run_unknown_backend_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["scenarios", "run", "smoke", "--backend", "warp", "--no-cache"]
        )
        assert code == 2
        assert "runtime.backend" in capsys.readouterr().err

    def test_scenarios_run_unknown_name(self, tmp_path, capsys):
        code = main(["scenarios", "run", "nope", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "unknown scenario names" in capsys.readouterr().err

    def test_scenarios_sweep_emits_bench_and_caches(self, tmp_path, capsys):
        bench_path = tmp_path / "BENCH_test.json"
        argv = [
            "scenarios",
            "sweep",
            "--topologies",
            "mesh,torus",
            "--workloads",
            "permutation",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--emit-bench",
            str(bench_path),
        ]
        assert main(argv) == 0
        payload = json.loads(bench_path.read_text())
        assert payload["schema"] == 1
        assert payload["scenario_count"] == 2
        assert payload["cache_hits"] == 0
        assert {s["topology_kind"] for s in payload["scenarios"]} == {"mesh", "torus"}
        assert all(s["makespan_us"] > 0 for s in payload["scenarios"])
        # Second run: everything is served from the cache and the payload
        # records it (the CI trajectory separates free points from computed).
        assert main(argv) == 0
        payload = json.loads(bench_path.read_text())
        assert payload["cache_hits"] == 2
        assert payload["computed_wall_time_s"] == 0.0

    def test_scenarios_sweep_from_spec_file(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "name": "filegrid",
                    "base": "smoke",
                    "sweep": {"workload.num_qubits": [4, 6]},
                }
            )
        )
        code = main(
            [
                "scenarios",
                "sweep",
                "--spec",
                str(path),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "filegrid/workload.num_qubits=4" in out
        assert "filegrid/workload.num_qubits=6" in out

    def test_malformed_spec_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "bad", "topology": {"kind": "hypercube"}}')
        code = main(["scenarios", "run", "--spec", str(path)])
        assert code == 2
        assert "topology.kind" in capsys.readouterr().err
