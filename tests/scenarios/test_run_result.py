"""The typed RunResult surface: round-trip, views, and the deprecated shim."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import get_scenario, run, run_record, run_scenario
from repro.scenarios.run import (
    RESULT_SCHEMA_VERSION,
    SERVICE_SCHEMA_VERSION,
    BatchView,
    RunResult,
    ServiceView,
)


class TestBatchRunResult:
    def test_batch_run_populates_exactly_the_batch_view(self):
        result = run(get_scenario("smoke"))
        assert result.mode == "batch"
        assert result.schema == RESULT_SCHEMA_VERSION
        assert result.batch is not None and result.service is None
        assert result.batch.operations > 0
        assert result.makespan_us == result.batch.makespan_us

    def test_json_round_trip_is_exact(self):
        result = run(get_scenario("smoke"))
        rebuilt = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()

    def test_flat_record_matches_run_record(self):
        spec = get_scenario("smoke")
        flat = run(spec).flat_record()
        record = run_record(spec)
        # wall_time_s is the only nondeterministic column.
        flat.pop("wall_time_s")
        record.pop("wall_time_s")
        assert flat == record
        assert "offered" not in record  # batch records carry no service columns

    def test_flat_record_preserves_historical_key_order(self):
        record = run_record(get_scenario("smoke"))
        assert list(record)[:5] == ["schema", "name", "label", "spec_hash", "spec"]
        assert list(record)[-1] == "wall_time_s"


class TestServiceRunResult:
    def test_service_run_populates_exactly_the_service_view(self):
        result = run(get_scenario("service_smoke"))
        assert result.mode == "service"
        assert result.schema == SERVICE_SCHEMA_VERSION
        assert result.service is not None and result.batch is None
        view = result.service
        assert view.offered > 0
        assert view.admitted + view.dropped == view.offered
        assert view.completed == view.admitted
        assert 0.0 <= view.drop_rate <= 1.0
        assert sorted(view.tenants) == ["bulk", "latency"]

    def test_json_round_trip_is_exact(self):
        result = run(get_scenario("service_smoke"))
        rebuilt = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()

    def test_flat_record_carries_the_steady_state_columns(self):
        record = run_record(get_scenario("service_smoke"))
        for key in (
            "offered",
            "drop_rate",
            "latency_p99_us",
            "delivered_load_per_ms",
            "max_queue_depth",
            "tenants",
        ):
            assert key in record, key
        assert record["schema"] == SERVICE_SCHEMA_VERSION
        assert "operations" not in record


class TestViewExclusivity:
    def _envelope_kwargs(self):
        return dict(
            schema=2,
            name="x",
            label="x",
            spec_hash="0" * 16,
            spec={},
            machine="m",
            workload="w",
            topology_kind="mesh",
            layout="home_base",
            allocator="incremental",
            backend="fluid",
            wall_time_s=0.0,
        )

    def test_runresult_requires_exactly_one_view(self):
        batch = BatchView(
            operations=1, channel_count=1, total_hops=1, makespan_us=1.0,
            classical_messages=None,
        )
        service = ServiceView(
            duration_us=1.0, makespan_us=1.0, offered=1, admitted=1, dropped=0,
            completed=1, drop_rate=0.0, offered_load_per_ms=1.0,
            delivered_load_per_ms=1.0, latency_p50_us=1.0, latency_p99_us=1.0,
            wait_p50_us=0.0, wait_p99_us=0.0, max_queue_depth=1,
        )
        with pytest.raises(ScenarioError, match="batch XOR service"):
            RunResult(**self._envelope_kwargs())
        with pytest.raises(ScenarioError, match="batch XOR service"):
            RunResult(**self._envelope_kwargs(), batch=batch, service=service)


class TestDeprecatedShim:
    def test_run_scenario_warns_and_matches_run_record(self):
        spec = get_scenario("smoke")
        with pytest.warns(DeprecationWarning, match="run_scenario"):
            legacy = run_scenario(spec)
        fresh = run_record(spec)
        legacy.pop("wall_time_s")
        fresh.pop("wall_time_s")
        assert legacy == fresh
        assert list(legacy) == list(fresh)

    def test_run_record_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_record(get_scenario("smoke"))


class TestSpecHashStability:
    def test_traffic_section_changes_the_hash_absence_does_not(self):
        base = get_scenario("smoke")
        service = get_scenario("service_smoke")
        assert "traffic" not in base.to_dict()
        assert service.spec_hash != base.spec_hash
        stripped = service.with_traffic(None)
        assert "traffic" not in stripped.to_dict()
