"""Loader tests: parsing, inheritance, bundles, sweep expansion, files."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    expand_grid,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    load_scenarios,
    parse_text,
    resolve_scenario,
)


class TestParseText:
    def test_json(self):
        assert parse_text('{"a": 1}') == {"a": 1}

    def test_yaml_fallback(self):
        pytest.importorskip("yaml")
        data = parse_text("topology:\n  kind: ring\n  width: 9\n")
        assert data == {"topology": {"kind": "ring", "width": 9}}

    def test_garbage_rejected(self):
        with pytest.raises(ScenarioError, match="parses as neither JSON|not valid JSON"):
            parse_text("{unclosed: [")


class TestCatalog:
    def test_every_builtin_resolves(self):
        for name in list_scenarios():
            spec = get_scenario(name)
            assert spec.name == name

    def test_unknown_builtin(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("not_a_scenario")

    def test_extends_merges_catalog_entry(self):
        mobile = get_scenario("paper_mobile")
        baseline = get_scenario("paper_baseline")
        assert mobile.runtime.layout == "mobile_qubit"
        assert mobile.topology == baseline.topology
        assert mobile.workload == baseline.workload


class TestInheritance:
    def test_extends_chain_through_library(self):
        library = {
            "child": {"extends": "paper_baseline", "workload": {"num_qubits": 9}},
            "grandchild": {"extends": "child", "runtime": {"allocator": "reference"}},
        }
        spec = resolve_scenario(library["grandchild"], name="g", library=library)
        assert spec.workload.num_qubits == 9
        assert spec.runtime.allocator == "reference"
        assert spec.topology.kind == "mesh"  # inherited from the catalog root

    def test_cycle_detected(self):
        library = {
            "a": {"extends": "b"},
            "b": {"extends": "a"},
        }
        with pytest.raises(ScenarioError, match="circular scenario inheritance"):
            resolve_scenario(library["a"], name="a", library=library)

    def test_unknown_parent(self):
        with pytest.raises(ScenarioError, match="unknown scenario 'nope'"):
            resolve_scenario({"extends": "nope"}, name="x")


class TestBundlesAndSweeps:
    def test_bundle_mapping(self):
        specs = load_scenarios(
            {
                "scenarios": {
                    "one": {"extends": "smoke"},
                    "two": {"extends": "one", "workload": {"num_qubits": 5}},
                }
            }
        )
        by_name = {spec.name: spec for spec in specs}
        assert set(by_name) == {"one", "two"}
        assert by_name["two"].workload.num_qubits == 5
        assert by_name["two"].topology == by_name["one"].topology

    def test_bundle_list_requires_names(self):
        with pytest.raises(ScenarioError, match="needs a 'name'"):
            load_scenarios({"scenarios": [{"topology": {"kind": "mesh"}}]})

    def test_sweep_expansion(self):
        specs = load_scenarios(
            {
                "name": "x",
                "base": "ring_qft",
                "sweep": {"topology.kind": ["mesh", "ring"], "workload.num_qubits": [6, 8]},
            }
        )
        assert len(specs) == 4
        assert {s.topology.kind for s in specs} == {"mesh", "ring"}
        assert {s.workload.num_qubits for s in specs} == {6, 8}
        assert all(s.name.startswith("x/") for s in specs)
        # Each grid point is distinct work.
        assert len({s.spec_hash for s in specs}) == 4

    def test_backend_is_a_sweep_axis(self):
        # The transport backend sweeps like any other dotted spec path, so a
        # grid can compare granularities point for point.
        specs = expand_grid(
            {"extends": "smoke"}, {"runtime.backend": ["fluid", "detailed"]}
        )
        assert [s.runtime.backend for s in specs] == ["fluid", "detailed"]
        assert len({s.spec_hash for s in specs}) == 2
        with pytest.raises(ScenarioError, match="runtime.backend"):
            expand_grid({"extends": "smoke"}, {"runtime.backend": ["warp"]})

    def test_sweep_axis_must_be_list(self):
        with pytest.raises(ScenarioError, match="non-empty list"):
            expand_grid({"extends": "smoke"}, {"topology.kind": "mesh"})

    def test_mixing_shapes_rejected(self):
        with pytest.raises(ScenarioError, match="mixes"):
            load_scenarios({"scenarios": {}, "sweep": {}})

    def test_grid_point_validation_errors_surface(self):
        with pytest.raises(ScenarioError, match="topology.kind"):
            expand_grid({"extends": "smoke"}, {"topology.kind": ["mesh", "bogus"]})


class TestFiles:
    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            '{"name": "filed", "extends": "smoke", "workload": {"num_qubits": 4}}'
        )
        (spec,) = load_scenario_file(str(path))
        assert spec.name == "filed"
        assert spec.workload.num_qubits == 4

    def test_yaml_sweep_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "sweep.yaml"
        path.write_text(
            "name: demo\nbase: ring_qft\nsweep:\n"
            "  topology.kind: [mesh, ring]\n"
        )
        specs = load_scenario_file(str(path))
        assert [s.topology.kind for s in specs] == ["mesh", "ring"]

    def test_missing_file(self):
        with pytest.raises(ScenarioError, match="cannot read scenario file"):
            load_scenario_file("/nonexistent/scenarios.yaml")
