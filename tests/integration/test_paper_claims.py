"""The paper's headline quantitative claims, checked end to end.

Each test cites the paper section it reproduces.  These are the acceptance
tests for the reproduction: if one of them fails, EXPERIMENTS.md is wrong.
"""

import pytest

from repro.analysis.fig12 import breakdown_error_rate
from repro.analysis.fig9 import error_amplification
from repro.core.budget import EPRBudgetModel
from repro.core.crossover import crossover_distance_cells, recommended_hop_cells
from repro.core.logical import STEANE_LEVEL_2, pairs_per_logical_communication
from repro.core.placement import endpoint_only, virtual_wire
from repro.physics.ballistic import ballistic_error
from repro.physics.parameters import IonTrapParameters
from repro.physics.purification import get_protocol
from repro.physics.states import BellDiagonalState


@pytest.fixture(scope="module")
def params():
    return IonTrapParameters.default()


class TestSection1Introduction:
    def test_corner_to_corner_error_exceeds_1e3(self, params):
        # "a qubit would experience a probability of error of more than 1e-3
        # in traveling from corner to corner" of a 1000x1000 grid.
        assert ballistic_error(0.0, 2 * 999, params) > 1e-3

    def test_hundreds_of_qubits_per_data_communication(self, params):
        # Abstract: "100s of qubits must be distributed to accommodate a
        # single data communication."
        budget = EPRBudgetModel(params).budget(15)
        assert budget.pairs_per_logical_communication(STEANE_LEVEL_2) > 100


class TestSection4Models:
    def test_latency_crossover_about_600_cells(self, params):
        # "for a distance of about 600 cells, teleportation is faster than
        # ballistic movement."
        assert 550 <= crossover_distance_cells(params) <= 650
        assert recommended_hop_cells(params) == 600

    def test_two_teleporters_100_cells_apart_example(self, params):
        # "for two teleporters spaced 100 cells apart, ballistic movement
        # error equals ~1e-4 compared to 1e-7 for a two-qubit gate error."
        movement = ballistic_error(0.0, 100, params)
        assert movement == pytest.approx(1e-4, rel=0.05)
        assert params.errors.two_qubit_gate == 1e-7

    def test_64_teleports_increase_error_by_factor_100(self, params):
        # Figure 9 discussion: "teleporting 64 times could increase EPR pair
        # qubit error by a factor of 100" (order of magnitude check).
        assert 30 <= error_amplification(1e-4, 64, params) <= 150

    def test_dejmps_needs_5_to_10x_fewer_rounds_than_bbpssw(self, params):
        # Section 4.5: "The BBPSSW protocol takes 5-10 times more rounds to
        # converge ... as the DEJMPS protocol."
        state = BellDiagonalState.werner(0.99)
        target = params.threshold_fidelity
        dejmps = get_protocol("dejmps", params).rounds_to_fidelity(state, target)
        bbpssw = get_protocol("bbpssw", params).rounds_to_fidelity(state, target)
        assert dejmps is not None and bbpssw is not None
        assert 3 <= bbpssw / dejmps <= 12

    def test_purification_exponential_in_rounds(self, params):
        # "to perform x rounds, we need more than 2^x EPR pairs."
        protocol = get_protocol("dejmps", params)
        state = BellDiagonalState.werner(0.97)
        from repro.physics.purification_tree import expected_pairs_for_rounds

        for rounds in (1, 2, 3, 4):
            cost = expected_pairs_for_rounds(protocol.iterate(state, rounds))
            assert cost > 2 ** rounds

    def test_network_breaks_down_near_1e5_operation_error(self):
        # Figure 12: "the abrupt ends of all the plots near 1e-5."
        breakdown = breakdown_error_rate(error_rates=[1e-7, 3e-6, 1e-5, 3e-5, 1e-4])
        assert 3e-6 < breakdown <= 1e-4

    def test_final_design_uses_virtual_wire_plus_endpoint_purification(self, params):
        # Section 4.7 design decision: purifying the virtual wires reduces the
        # pairs that must move through the teleporters relative to endpoint-only.
        end = EPRBudgetModel(params, placement=endpoint_only()).budget(30)
        wire = EPRBudgetModel(params, placement=virtual_wire(2)).budget(30)
        assert wire.pairs_teleported < end.pairs_teleported


class TestSection5Simulation:
    def test_392_pairs_for_longest_communication_path(self, params):
        # "the expected number of EPR pairs required for the longest
        # communication path is 392 (= 2^3 x 49)."
        budget = EPRBudgetModel(params).budget(30)
        assert budget.endpoint_rounds == 3
        assert pairs_per_logical_communication(budget.endpoint_rounds) == 392

    def test_queue_purifier_saves_hardware(self):
        # Section 5.1: depth-n tree with n purifiers instead of 2^n - 1.
        from repro.physics.purification_tree import hardware_purifiers_for_tree

        assert hardware_purifiers_for_tree(3, queue_based=True) == 3
        assert hardware_purifiers_for_tree(3, queue_based=False) == 7

    def test_storage_is_4t_per_teleporter_node(self):
        # Section 5.3: "yielding 4t storage cells per T' node."
        from repro.network.nodes import TeleporterSpec

        assert TeleporterSpec(8).storage_cells == 32
