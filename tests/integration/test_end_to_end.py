"""End-to-end integration tests crossing all package layers."""

import pytest

import repro
from repro import (
    CommunicationSimulator,
    Coordinate,
    IonTrapParameters,
    QuantumChannel,
    QuantumMachine,
    ResourceAllocation,
    qft_stream,
    shor_stream,
)
from repro.core.logical import STEANE_LEVEL_1
from repro.core.metrics import evaluate_channel_metrics
from repro.core.planner import ChannelPlanner
from repro.network.topology import square_mesh
from repro.sim.channel_setup import DetailedChannelSetup


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_snippet_from_readme(self):
        channel = QuantumChannel(hops=30, params=IonTrapParameters.default())
        report = channel.build()
        assert report.feasible
        assert "QuantumChannel" in report.describe()


class TestChannelToSimulatorConsistency:
    """The analytical channel model and the simulators must agree."""

    def test_planner_budget_matches_channel_budget(self):
        params = IonTrapParameters.default()
        planner = ChannelPlanner(square_mesh(16), params)
        plan = planner.plan(Coordinate(0, 0), Coordinate(15, 15))
        channel = QuantumChannel(plan.hops, params).build()
        assert plan.budget.endpoint_rounds == channel.budget.endpoint_rounds
        assert plan.budget.pairs_teleported == pytest.approx(channel.budget.pairs_teleported)

    def test_detailed_setup_consistent_with_budget_accounting(self):
        machine = QuantumMachine(8, allocation=ResourceAllocation(4, 4, 4), encoding=STEANE_LEVEL_1)
        plan = machine.planner.plan(Coordinate(0, 0), Coordinate(3, 3))
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=7).run()
        # The detailed simulation consumes exactly 2^rounds raw pairs per good
        # pair, the idealised version of the budget's expected-yield figure.
        ideal = 7 * 2 ** plan.budget.endpoint_rounds
        assert result.raw_pairs_injected == ideal
        assert plan.budget.endpoint_pairs * 7 >= ideal

    def test_flow_simulation_runtime_bounded_by_channel_latency(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(1024))
        stream = qft_stream(16)
        result = CommunicationSimulator(machine).run(stream)
        single_floor = machine.channel_setup_floor_us(1)
        # The makespan must at least cover the critical path of operations.
        assert result.makespan_us > stream.critical_path_length() * single_floor / 4

    def test_channel_metrics_report(self):
        report = QuantumChannel(12).build()
        metrics = evaluate_channel_metrics(report)
        assert metrics.epr_pair_count == pytest.approx(report.pairs_per_logical_communication)


class TestWorkloadsOnMachines:
    def test_shor_kernels_run_on_small_machine(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(8))
        result = CommunicationSimulator(machine).run(shor_stream(8))
        assert result.operation_count == len(shor_stream(8))
        assert result.makespan_us > 0

    def test_qft_scaling_with_machine_size(self):
        small = CommunicationSimulator(
            QuantumMachine(3, allocation=ResourceAllocation.uniform(4))
        ).run(qft_stream(9))
        large = CommunicationSimulator(
            QuantumMachine(5, allocation=ResourceAllocation.uniform(4))
        ).run(qft_stream(25))
        assert large.makespan_us > small.makespan_us

    def test_results_are_deterministic(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(4))
        stream = qft_stream(16)
        first = CommunicationSimulator(machine).run(stream)
        second = CommunicationSimulator(machine).run(stream)
        assert first.makespan_us == pytest.approx(second.makespan_us)
        assert first.total_pairs_transited() == pytest.approx(second.total_pairs_transited())
