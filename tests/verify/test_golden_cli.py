"""Golden fixtures and the ``python -m repro verify`` CLI."""

import os

import pytest

from repro.errors import ScenarioError
from repro.runtime.cli import main
from repro.scenarios import get_scenario
from repro.verify import diff_golden, golden_path, record_golden


class TestGoldenFixtures:
    def test_record_then_diff_round_trips(self, tmp_path):
        directory = str(tmp_path)
        spec = get_scenario("smoke")
        path = record_golden(spec, directory=directory)
        assert os.path.exists(path)
        diff = diff_golden(spec, directory=directory)
        assert diff.ok
        assert diff.golden_lines == diff.current_lines > 0
        assert "match" in diff.summary()

    def test_missing_fixture_reported(self, tmp_path):
        diff = diff_golden(get_scenario("smoke"), directory=str(tmp_path))
        assert diff.missing and not diff.ok
        assert "verify record" in diff.summary()

    def test_tampered_fixture_pinpoints_line(self, tmp_path):
        directory = str(tmp_path)
        spec = get_scenario("smoke")
        path = record_golden(spec, directory=directory)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[3] = lines[3].replace('"t_us":', '"t_us":1e9, "_":')
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        diff = diff_golden(spec, directory=directory)
        assert not diff.ok
        assert any("line 4" in mismatch for mismatch in diff.mismatches)

    def test_extra_golden_lines_detected(self, tmp_path):
        directory = str(tmp_path)
        spec = get_scenario("smoke")
        path = record_golden(spec, directory=directory)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"run_end","t_us":0.0,"makespan_us":0.0,'
                         '"operations":0,"channels":0}\n')
        diff = diff_golden(spec, directory=directory)
        assert not diff.ok
        assert diff.golden_lines == diff.current_lines + 1

    def test_default_golden_dir_is_repo_anchored(self):
        from repro.verify import DEFAULT_GOLDEN_DIR

        assert os.path.isabs(DEFAULT_GOLDEN_DIR)
        assert os.path.isdir(DEFAULT_GOLDEN_DIR)

    def test_exact_mismatch_budget_is_not_marked_truncated(self, tmp_path):
        from repro.verify.golden import MAX_REPORTED_MISMATCHES

        directory = str(tmp_path)
        spec = get_scenario("smoke")
        path = record_golden(spec, directory=directory)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for index in range(1, 1 + MAX_REPORTED_MISMATCHES):
            lines[index] = lines[index].replace("{", '{"_":0,', 1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        diff = diff_golden(spec, directory=directory)
        assert len(diff.mismatches) == MAX_REPORTED_MISMATCHES
        assert not any("truncated" in mismatch for mismatch in diff.mismatches)
        # One extra mismatch beyond the budget does get the truncation marker.
        lines[1 + MAX_REPORTED_MISMATCHES] = lines[1 + MAX_REPORTED_MISMATCHES].replace(
            "{", '{"_":0,', 1
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        diff = diff_golden(spec, directory=directory)
        assert diff.mismatches[-1] == "... (truncated)"
        assert len(diff.mismatches) == MAX_REPORTED_MISMATCHES + 1

    def test_trace_bus_attached_after_transport_construction_still_traces(self):
        # Components must discover the bus through the engine at emission
        # time, not snapshot it at construction.
        from repro.scenarios import build_machine
        from repro.sim.engine import SimulationEngine
        from repro.sim.flow import FlowTransport
        from repro.trace import ChannelOpened, TraceBus
        from repro.network.geometry import Coordinate
        from repro.network.layout import CommRequest
        from repro.sim.control import PlannedCommunication

        machine = build_machine(get_scenario("smoke"))
        engine = SimulationEngine()
        transport = FlowTransport(engine, machine)
        bus = TraceBus()
        engine.trace = bus
        source, dest = Coordinate(0, 0), Coordinate(2, 1)
        plan = machine.planner.plan(source, dest)
        planned = PlannedCommunication(
            request=CommRequest(source=source, dest=dest, qubit=1), plan=plan
        )
        transport.start(planned, lambda: None)
        engine.run()
        assert bus.filtered([ChannelOpened.kind])

    def test_sweep_names_are_filesystem_safe(self):
        path = golden_path("grid/mesh-qft")
        assert "/" not in os.path.basename(path)
        assert path.endswith("grid__mesh-qft.jsonl")

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError):
            golden_path("  ")


class TestCheckedInGoldens:
    """The repository's own fixtures stay in sync with the simulator."""

    def test_smoke_and_ring_fixtures_match(self):
        for name in ("smoke", "ring_qft"):
            diff = diff_golden(get_scenario(name))
            assert diff.ok, diff.summary()

    def test_fabric_fixtures_match_and_carry_route_records(self):
        # The big-fabric scenarios pin their route choices: every channel
        # open is preceded by exactly one route record naming the policy.
        for name, policy in (
            ("fattree_smoke", "ecmp"),
            ("dragonfly_adaptive", "adaptive"),
        ):
            diff = diff_golden(get_scenario(name))
            assert diff.ok, diff.summary()
            with open(diff.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            routes = [line for line in lines if '"kind":"route"' in line]
            opens = [line for line in lines if '"kind":"channel_open"' in line]
            assert len(routes) == len(opens) > 0
            assert all(f'"policy":"{policy}"' in line for line in routes)
        # Route records must not leak into pre-existing fixtures.
        with open(golden_path("smoke"), "r", encoding="utf-8") as handle:
            assert '"kind":"route"' not in handle.read()

    def test_noisy_fixture_matches_and_carries_fidelity_records(self):
        spec = get_scenario("smoke_noisy")
        diff = diff_golden(spec)
        assert diff.ok, diff.summary()
        with open(diff.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert any('"kind":"fidelity"' in line for line in lines)
        # Its noise-free sibling stays fidelity-free: the new record kind
        # must not leak into pre-existing fixtures.
        with open(golden_path("smoke"), "r", encoding="utf-8") as handle:
            assert '"kind":"fidelity"' not in handle.read()

    def test_record_then_diff_round_trips_on_fresh_checkout(self, tmp_path):
        # Satellite check: `verify record` + `verify diff` must round-trip
        # cleanly from nothing (a fresh checkout recording into an empty
        # directory), fidelity records included.
        directory = str(tmp_path)
        for name in ("smoke", "smoke_noisy"):
            spec = get_scenario(name)
            assert diff_golden(spec, directory=directory).missing
            record_golden(spec, directory=directory)
            diff = diff_golden(spec, directory=directory)
            assert diff.ok, diff.summary()
            assert diff.golden_lines == diff.current_lines > 0


class TestVerifyCli:
    def test_verify_run_reports_agreement(self, capsys):
        code = main(["verify", "run", "smoke", "--allocators", "incremental,reference"])
        out = capsys.readouterr().out
        assert code == 0
        assert "smoke" in out and "1 agreed, 0 diverged" in out

    def test_verify_run_backends_flag(self, capsys):
        code = main(["verify", "run", "smoke", "--backends"])
        assert code == 0

    def test_verify_record_and_diff_cycle(self, tmp_path, capsys):
        directory = str(tmp_path)
        assert main(["verify", "record", "smoke", "--golden-dir", directory]) == 0
        assert main(["verify", "diff", "smoke", "--golden-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "recorded smoke" in out and "trace lines match" in out

    def test_verify_diff_missing_fixture_fails(self, tmp_path, capsys):
        code = main(["verify", "diff", "smoke", "--golden-dir", str(tmp_path)])
        assert code == 1
        assert "no golden fixture" in capsys.readouterr().out

    def test_unknown_scenario_name_errors(self, capsys):
        code = main(["verify", "run", "not-a-scenario"])
        assert code == 2
        assert "unknown scenario names" in capsys.readouterr().err

    def test_all_catalog_flag_with_spec_rejected(self, tmp_path, capsys):
        spec_file = tmp_path / "one.json"
        spec_file.write_text('{"name": "one", "extends": "smoke"}')
        code = main(["verify", "run", "--all-catalog", "--spec", str(spec_file)])
        assert code == 2

    def test_spec_file_selection(self, tmp_path, capsys):
        spec_file = tmp_path / "one.json"
        spec_file.write_text('{"name": "one", "extends": "smoke"}')
        code = main(["verify", "run", "--spec", str(spec_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "one" in out
