"""Differential-verification harness behaviour."""

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.scenarios import get_scenario
from repro.trace import CANONICAL_KINDS, FlowRateChanged, OperationRetired, RunStarted
from repro.verify import (
    DIFFERENTIAL_KINDS,
    compare_backend_runs,
    compare_runs,
    traced_run,
    verify_backends,
    verify_scenario,
)


class TestTracedRun:
    def test_traced_run_defaults_to_differential_kinds(self):
        run = traced_run(get_scenario("smoke"))
        kinds = {record.kind for record in run.records}
        assert kinds <= DIFFERENTIAL_KINDS
        assert FlowRateChanged.kind in kinds
        assert isinstance(run.records[0], RunStarted)
        assert run.makespan_us == run.result.makespan_us

    def test_allocator_override(self):
        run = traced_run(get_scenario("smoke"), allocator="reference")
        assert run.allocator == "reference"

    def test_accepts_plain_mapping(self):
        spec = get_scenario("smoke")
        run = traced_run(spec.to_dict(), kinds=CANONICAL_KINDS)
        assert run.spec == spec


class TestVerifyScenario:
    def test_catalog_scenarios_agree_across_allocators(self):
        for name in ("smoke", "ring_qft", "torus_permutation"):
            verdict = verify_scenario(get_scenario(name))
            assert verdict.ok, [str(d) for d in verdict.divergences]
            assert verdict.allocators == ("incremental", "reference", "vectorized")
            assert verdict.makespan_us > 0
            assert verdict.operations > 0

    def test_rejects_single_allocator(self):
        with pytest.raises(ScenarioError):
            verify_scenario(get_scenario("smoke"), allocators=["incremental"])

    def test_rejects_unknown_allocator(self):
        with pytest.raises(ScenarioError):
            verify_scenario(get_scenario("smoke"), allocators=["incremental", "bogus"])


class TestCompareRuns:
    def test_detects_makespan_and_timeline_divergence(self):
        a = traced_run(get_scenario("smoke"))
        b = traced_run(get_scenario("smoke"))
        # Forge a diverging run: shift the makespan and drop one rate record.
        forged = dataclasses.replace(b)
        forged.result.makespan_us += 1.0
        forged.records = [
            record
            for record in b.records
            if record.kind != FlowRateChanged.kind or record.t_us > 0.0
        ]
        aspects = {d.aspect for d in compare_runs(a, forged)}
        assert "makespan" in aspects
        assert "rate_timeline" in aspects

    def test_detects_op_order_divergence(self):
        a = traced_run(get_scenario("smoke"))
        b = traced_run(get_scenario("smoke"))
        retire_indices = [
            i for i, r in enumerate(b.records) if r.kind == OperationRetired.kind
        ]
        x, y = retire_indices[0], retire_indices[1]
        b.records[x], b.records[y] = b.records[y], b.records[x]
        aspects = {d.aspect for d in compare_runs(a, b)}
        assert "op_order" in aspects

    def test_agreement_is_empty(self):
        a = traced_run(get_scenario("smoke"))
        b = traced_run(get_scenario("smoke"))
        assert compare_runs(a, b) == []


class TestBackendCrossCheck:
    def test_fluid_and_detailed_backends_agree_on_catalog(self):
        for name in ("smoke", "line_neighbours"):
            divergences = verify_backends(get_scenario(name))
            assert divergences == [], [str(d) for d in divergences]

    def test_traced_run_honours_backend(self):
        run = traced_run(get_scenario("smoke"), backend="detailed")
        assert run.backend == "detailed"
        assert run.result.backend == "detailed"
        assert run.makespan_us > 0

    def test_tight_ratio_reports_divergence(self):
        # With an absurdly tight tolerance the check must trip — proving the
        # comparison actually measures something.
        divergences = verify_backends(
            get_scenario("smoke"), makespan_ratio=1.0000001, order_tolerance=0.0
        )
        assert divergences
        aspects = {d.aspect for d in divergences}
        assert "backend_makespan" in aspects

    def test_rejects_single_backend(self):
        with pytest.raises(ScenarioError):
            verify_backends(get_scenario("smoke"), backends=["fluid"])

    def test_rejects_unknown_backend(self):
        with pytest.raises(ScenarioError):
            verify_backends(get_scenario("smoke"), backends=["fluid", "bogus"])

    def test_compare_backend_runs_detects_op_set_mismatch(self):
        a = traced_run(get_scenario("smoke"), backend="fluid")
        b = traced_run(get_scenario("smoke"), backend="detailed")
        b.records = [r for r in b.records if r.kind != OperationRetired.kind][:-1] + [
            r for r in b.records if r.kind == OperationRetired.kind
        ][:-1]
        aspects = {d.aspect for d in compare_backend_runs(a, b)}
        assert "backend_op_set" in aspects
