"""Fluid-vs-detailed delivered-fidelity parity across the whole catalog."""

import pytest

from repro.errors import ScenarioError
from repro.runtime.cli import main
from repro.scenarios import get_scenario, list_scenarios
from repro.verify.harness import (
    FIDELITY_ABS_TOL,
    PARITY_NOISE,
    compare_fidelity_runs,
    traced_run,
    verify_fidelity,
)


class TestFidelityParity:
    @pytest.mark.parametrize("name", list_scenarios())
    def test_catalog_scenario_agrees_across_backends(self, name):
        # Every catalog scenario (fixed seeds live in the specs) must deliver
        # the same per-channel fidelity under both transport granularities
        # within the documented tolerance.
        divergences = verify_fidelity(get_scenario(name))
        assert not divergences, "\n".join(str(d) for d in divergences)

    def test_noise_is_applied_when_spec_has_none(self):
        spec = get_scenario("smoke")
        assert spec.noise is None
        run = traced_run(spec.with_noise(PARITY_NOISE))
        assert all(c.delivered_fidelity is not None for c in run.result.channels)

    def test_existing_noise_section_is_respected(self):
        spec = get_scenario("smoke_noisy")
        assert spec.noise is not None
        assert not verify_fidelity(spec)

    def test_missing_fidelity_reported_as_divergence(self):
        spec = get_scenario("smoke")
        tracked = traced_run(spec.with_noise(PARITY_NOISE))
        untracked = traced_run(spec)
        divergences = compare_fidelity_runs(tracked, untracked)
        assert any(d.aspect == "fidelity_missing" for d in divergences)

    def test_tolerance_violation_detected(self):
        spec = get_scenario("smoke").with_noise(PARITY_NOISE)
        a = traced_run(spec, backend="fluid")
        b = traced_run(spec, backend="detailed")
        # An absurdly tight tolerance cannot hide a single ULP of divergence
        # unless the values are bitwise equal; either outcome is legitimate,
        # but the documented tolerance must always pass.
        assert not compare_fidelity_runs(a, b, tolerance=FIDELITY_ABS_TOL)

    def test_loose_target_selects_level_zero_and_still_agrees(self):
        # Regression: a loose target makes the threshold selection pick zero
        # purification rounds; the detailed backend must then skip its queue
        # purifiers (not clamp to depth 1) so both backends report the
        # arrival fidelity at level 0.
        spec = get_scenario("smoke").with_noise({"target_fidelity": 0.99})
        assert not verify_fidelity(spec)
        for backend in ("fluid", "detailed"):
            run = traced_run(spec, backend=backend)
            assert {c.purification_level for c in run.result.channels} == {0}
            assert all(c.delivered_fidelity >= 0.99 for c in run.result.channels)

    def test_needs_two_backends(self):
        with pytest.raises(ScenarioError, match="at least two backends"):
            verify_fidelity(get_scenario("smoke"), backends=("fluid",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScenarioError, match="unknown backends"):
            verify_fidelity(get_scenario("smoke"), backends=("fluid", "quantum"))


class TestFidelityCli:
    def test_verify_fidelity_reports_agreement(self, capsys):
        code = main(["verify", "fidelity", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 agreed, 0 diverged" in out

    def test_verify_fidelity_custom_tolerance(self, capsys):
        code = main(["verify", "fidelity", "smoke", "--tolerance", "0.5"])
        assert code == 0
        assert "tolerance 0.5" in capsys.readouterr().out
