"""Fluid-vs-detailed traffic parity: open-loop service runs must agree."""

import pytest

from repro.errors import ScenarioError
from repro.runtime.cli import main
from repro.scenarios import get_scenario
from repro.trace import RequestCompleted
from repro.verify import compare_traffic_runs, verify_traffic
from repro.verify.harness import traced_run


class TestVerifyTraffic:
    def test_catalog_service_scenario_passes_parity(self):
        divergences = verify_traffic(get_scenario("service_smoke"))
        assert divergences == [], [str(d) for d in divergences]

    def test_traced_run_carries_the_service_result(self):
        run = traced_run(get_scenario("service_smoke"), backend="fluid")
        assert run.result.offered > 0
        assert run.makespan_us > 0

    def test_rejects_batch_scenarios(self):
        with pytest.raises(ScenarioError, match="no traffic section"):
            verify_traffic(get_scenario("smoke"))

    def test_rejects_single_backend(self):
        with pytest.raises(ScenarioError, match="at least two backends"):
            verify_traffic(get_scenario("service_smoke"), backends=["fluid"])

    def test_rejects_unknown_backend(self):
        with pytest.raises(ScenarioError, match="unknown backends"):
            verify_traffic(get_scenario("service_smoke"), backends=["fluid", "bogus"])

    def test_tight_order_tolerance_still_holds_on_identical_runs(self):
        # Same backend twice is bitwise identical, so even zero tolerance holds.
        a = traced_run(get_scenario("service_smoke"), backend="fluid")
        b = traced_run(get_scenario("service_smoke"), backend="fluid")
        assert compare_traffic_runs(a, b, order_tolerance=0.0) == []

    def test_detects_completion_set_mismatch(self):
        a = traced_run(get_scenario("service_smoke"), backend="fluid")
        b = traced_run(get_scenario("service_smoke"), backend="detailed")
        b.records = [
            record
            for record in b.records
            if not (
                record.kind == RequestCompleted.kind
                and record.request_id == a.result.completion_order[-1]
            )
        ]
        aspects = {d.aspect for d in compare_traffic_runs(a, b)}
        assert "traffic_completion_set" in aspects

    def test_detects_arrival_stream_divergence_and_stops(self):
        a = traced_run(get_scenario("service_smoke"), backend="fluid")
        b = traced_run(get_scenario("service_smoke"), backend="detailed")
        b.records = [record for record in b.records if record.kind != "req_arrive"]
        divergences = compare_traffic_runs(a, b)
        # A corrupted offer invalidates everything downstream: the diff must
        # report exactly the arrival divergence and nothing else.
        assert [d.aspect for d in divergences] == ["traffic_arrivals"]


class TestVerifyTrafficCli:
    def test_cli_reports_parity(self, capsys):
        assert main(["verify", "traffic", "service_smoke"]) == 0
        out = capsys.readouterr().out
        assert "service_smoke" in out and "ok" in out

    def test_cli_skips_batch_scenarios_in_a_mixed_selection(self, capsys):
        assert main(["verify", "traffic", "smoke", "service_smoke"]) == 0
        out = capsys.readouterr().out
        assert "batch" in out and "skipped" in out

    def test_cli_rejects_batch_only_selection(self, capsys):
        assert main(["verify", "traffic", "smoke"]) == 2
        assert "traffic" in capsys.readouterr().err
