"""Transport backend contract: registry, parity, contention, provenance."""

import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Coordinate
from repro.network.layout import CommRequest
from repro.network.nodes import ResourceAllocation
from repro.scenarios import ScenarioSpec, get_scenario, list_scenarios, run_record
from repro.scenarios.run import build_machine, build_stream
from repro.scenarios.spec import BACKEND_NAMES
from repro.sim import (
    CommunicationSimulator,
    QuantumMachine,
    SimulationEngine,
    backend_descriptions,
    backend_names,
    create_transport,
    get_backend,
)
from repro.sim.control import PlannedCommunication
from repro.sim.detailed import DetailedTransport
from repro.sim.flow import FlowTransport
from repro.verify.harness import BACKEND_MAKESPAN_RATIO


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert backend_names() == ("detailed", "fluid")

    def test_registry_matches_spec_backend_names(self):
        # The scenario schema keeps a literal copy so validating a spec never
        # imports the simulation stack; this pins the two in sync.
        assert set(backend_names()) == set(BACKEND_NAMES)

    def test_descriptions_are_one_liners(self):
        for name, description in backend_descriptions().items():
            assert description, f"backend {name} has no description"
            assert "\n" not in description

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown transport backend"):
            get_backend("bogus")

    def test_create_transport_dispatches(self):
        machine = QuantumMachine(3)
        engine = SimulationEngine()
        fluid = create_transport("fluid", engine, machine, allocator="reference")
        detailed = create_transport("detailed", engine, machine)
        assert isinstance(fluid, FlowTransport)
        assert fluid.allocator == "reference"
        assert isinstance(detailed, DetailedTransport)

    def test_simulator_rejects_unknown_backend(self):
        machine = QuantumMachine(3)
        with pytest.raises(ConfigurationError):
            CommunicationSimulator(machine, backend="bogus").run(
                build_stream(get_scenario("smoke"))
            )


class TestBackendParity:
    def test_smoke_makespans_agree_within_documented_tolerance(self):
        spec = get_scenario("smoke")
        stream = build_stream(spec)
        fluid = CommunicationSimulator(build_machine(spec)).run(stream)
        detailed = CommunicationSimulator(build_machine(spec), backend="detailed").run(
            stream
        )
        ratio = detailed.makespan_us / fluid.makespan_us
        assert 1.0 / BACKEND_MAKESPAN_RATIO <= ratio <= BACKEND_MAKESPAN_RATIO
        # Same communication structure at both granularities.
        assert detailed.operation_count == fluid.operation_count
        assert detailed.channel_count == fluid.channel_count

    def test_detailed_reports_same_utilisation_classes(self):
        spec = get_scenario("smoke")
        result = CommunicationSimulator(build_machine(spec), backend="detailed").run(
            build_stream(spec)
        )
        assert set(result.resource_utilisation) >= {"generator", "purifier"}
        assert all(0.0 <= v <= 1.0 for v in result.resource_utilisation.values())

    def test_every_catalog_scenario_completes_on_detailed(self):
        # The acceptance bar: the detailed backend is a full end-to-end
        # backend, not a single-channel study — every catalog scenario runs.
        for name in list_scenarios():
            spec = get_scenario(name)
            result = CommunicationSimulator(
                build_machine(spec), backend="detailed"
            ).run(build_stream(spec))
            assert result.makespan_us > 0
            assert result.backend == "detailed"


def _planned(machine, source, dest, qubit):
    request = CommRequest(source=source, dest=dest, qubit=qubit)
    return PlannedCommunication(request=request, plan=machine.planner.plan(source, dest))


def _run_channels(machine, endpoints):
    """Run channels concurrently on one DetailedTransport; completion times."""
    engine = SimulationEngine()
    transport = DetailedTransport(engine, machine)
    finished = {}
    for qubit, (source, dest) in enumerate(endpoints, start=1):
        planned = _planned(machine, source, dest, qubit)
        transport.start(planned, lambda q=qubit: finished.setdefault(q, engine.now))
    engine.run()
    assert len(finished) == len(endpoints)
    return finished


class TestDetailedContention:
    def test_shared_teleporter_set_makes_channels_strictly_slower(self):
        machine = QuantumMachine(5)
        # Both channels run along row 0, swapping through the X teleporter
        # sets of (1,0)..(3,0); the second overlaps the first's middle hops.
        alone = _run_channels(machine, [(Coordinate(0, 0), Coordinate(4, 0))])
        contended = _run_channels(
            machine,
            [
                (Coordinate(0, 0), Coordinate(4, 0)),
                (Coordinate(1, 0), Coordinate(3, 0)),
            ],
        )
        assert contended[1] > alone[1]

    def test_component_utilisation_uses_stable_keys(self):
        machine = QuantumMachine(5)
        engine = SimulationEngine()
        transport = DetailedTransport(engine, machine)
        transport.start(
            _planned(machine, Coordinate(0, 0), Coordinate(3, 0), 1), lambda: None
        )
        engine.run()
        detail = transport.component_utilisation(engine.now)
        assert "(0,0)-(1,0)" in detail["generator"]
        assert "(1,0)" in detail["teleporter"]
        assert "(3,0)" in detail["purifier"]

    def test_co_sourced_channels_contend_for_the_source_purifier_bank(self):
        # Both endpoints purify their halves (the work the fluid model
        # charges to both endpoint purifier banks), so two channels sourced
        # at one node queue for that node's units even with disjoint paths.
        machine = QuantumMachine(5, allocation=ResourceAllocation(2, 2, 1))
        origin = Coordinate(2, 2)
        alone = _run_channels(machine, [(origin, Coordinate(4, 2))])
        contended = _run_channels(
            machine,
            [(origin, Coordinate(4, 2)), (origin, Coordinate(0, 2))],
        )
        assert contended[1] > alone[1]

    def test_generator_bandwidth_scale_reaches_detailed_backend(self):
        base = get_scenario("smoke").to_dict()
        base["physics"]["generator_bandwidth_scale"] = 0.1
        slow_spec = ScenarioSpec.from_dict(base)
        slow = CommunicationSimulator(build_machine(slow_spec), backend="detailed").run(
            build_stream(slow_spec)
        )
        fast = CommunicationSimulator(
            build_machine(get_scenario("smoke")), backend="detailed"
        ).run(build_stream(get_scenario("smoke")))
        # Ten-times-slower pair factories must slow the whole run, by a lot.
        assert slow.makespan_us > 2.0 * fast.makespan_us

    def test_disjoint_channels_do_not_interfere(self):
        machine = QuantumMachine(5)
        alone = _run_channels(machine, [(Coordinate(0, 0), Coordinate(4, 0))])
        disjoint = _run_channels(
            machine,
            [
                (Coordinate(0, 0), Coordinate(4, 0)),
                (Coordinate(0, 4), Coordinate(4, 4)),
            ],
        )
        assert disjoint[1] == alone[1]


class TestBackendProvenance:
    def test_simulation_result_carries_backend(self):
        spec = get_scenario("smoke")
        result = CommunicationSimulator(build_machine(spec)).run(build_stream(spec))
        assert result.backend == "fluid"

    def test_flat_record_carries_backend(self):
        record = run_record(get_scenario("smoke"))
        assert record["backend"] == "fluid"
        detailed = run_record(get_scenario("smoke").with_backend("detailed"))
        assert detailed["backend"] == "detailed"
        # Backend choice must reach the cache key, or fluid and detailed
        # sweeps would collide on one slot.
        assert detailed["spec_hash"] != record["spec_hash"]
