"""Tests for the machine model, flow transport and the top-level simulator."""

import pytest

from repro.core.placement import virtual_wire
from repro.errors import SimulationError
from repro.network.nodes import ResourceAllocation
from repro.sim.machine import QuantumMachine
from repro.sim.simulator import CommunicationSimulator
from repro.workloads.instructions import InstructionStream
from repro.workloads.qft import qft_stream
from repro.workloads.synthetic import nearest_neighbour_stream


def make_stream(pairs, num_qubits=16):
    return InstructionStream.from_pairs("test", num_qubits, pairs)


class TestQuantumMachine:
    def test_paper_machine_dimensions(self):
        machine = QuantumMachine.paper_machine(16)
        assert machine.topology.node_count == 256
        assert machine.num_qubits == 256

    def test_bandwidths_follow_allocation(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation(8, 6, 5))
        assert machine.teleporter_bandwidth_per_direction() == pytest.approx(4.0)
        assert machine.generator_bandwidth_per_link() == pytest.approx(6.0)
        assert machine.purifier_bandwidth_per_node() == pytest.approx(5.0)

    def test_pairs_per_logical_communication_uses_budget(self):
        machine = QuantumMachine(8)
        assert 392 <= machine.pairs_per_logical_communication(10) <= 480
        assert machine.good_pairs_per_logical_communication() == 49

    def test_purifier_rounds_per_good_pair(self):
        machine = QuantumMachine(8)
        assert machine.purifier_rounds_per_good_pair(10) == pytest.approx(7.0)

    def test_placement_respected(self):
        machine = QuantumMachine(4, placement=virtual_wire(1))
        assert machine.planner.placement.virtual_wire_rounds == 1

    def test_config_label(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(2))
        assert "4x4" in machine.config.label

    def test_rejects_negative_gate_time(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            QuantumMachine(4, logical_gate_us=-1.0)


class TestSimulatorBasics:
    def test_single_operation_runtime_has_floor(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(1024))
        result = CommunicationSimulator(machine).run(make_stream([(1, 16)]))
        # Visit + gate + return: at least two channel floors plus the gate.
        floor = machine.channel_setup_floor_us(6)
        assert result.makespan_us >= 2 * floor + machine.logical_gate_us
        assert result.operation_count == 1
        assert result.channel_count == 2

    def test_independent_ops_overlap(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(1024))
        serial = CommunicationSimulator(machine).run(make_stream([(1, 16)]))
        parallel = CommunicationSimulator(machine).run(make_stream([(1, 16), (2, 15)]))
        # Two independent operations on an uncontended machine take barely
        # longer than one.
        assert parallel.makespan_us < 1.5 * serial.makespan_us

    def test_dependent_ops_serialise(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(1024))
        single = CommunicationSimulator(machine).run(make_stream([(1, 16)]))
        chained = CommunicationSimulator(machine).run(make_stream([(1, 16), (16, 2)]))
        assert chained.makespan_us > 1.7 * single.makespan_us

    def test_scarce_resources_slow_execution(self):
        rich = QuantumMachine(4, allocation=ResourceAllocation.uniform(256))
        poor = QuantumMachine(4, allocation=ResourceAllocation.uniform(1))
        stream = qft_stream(16)
        rich_result = CommunicationSimulator(rich).run(stream)
        poor_result = CommunicationSimulator(poor).run(stream)
        assert poor_result.makespan_us > 2 * rich_result.makespan_us

    def test_mobile_layout_faster_than_home_base_for_qft(self):
        stream = qft_stream(16)
        home = CommunicationSimulator(
            QuantumMachine(4, layout="home_base", allocation=ResourceAllocation.uniform(4))
        ).run(stream)
        mobile = CommunicationSimulator(
            QuantumMachine(4, layout="mobile_qubit", allocation=ResourceAllocation.uniform(4))
        ).run(stream)
        assert mobile.makespan_us < home.makespan_us
        assert mobile.average_channel_hops() < home.average_channel_hops()

    def test_all_operations_recorded(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(8))
        stream = qft_stream(16)
        result = CommunicationSimulator(machine).run(stream)
        assert result.operation_count == len(stream)
        assert {op.index for op in result.operations} == {op.index for op in stream}

    def test_channel_records_have_consistent_times(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(8))
        result = CommunicationSimulator(machine).run(nearest_neighbour_stream(16, rounds=1))
        for channel in result.channels:
            assert channel.end_us >= channel.start_us
            assert channel.end_us <= result.makespan_us
            assert channel.pairs_transited > 0

    def test_utilisation_reported_for_all_resource_kinds(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(2))
        result = CommunicationSimulator(machine).run(qft_stream(16))
        assert {"generator", "purifier", "teleporter_x", "teleporter_y"} <= set(
            result.resource_utilisation
        )
        assert all(0.0 <= v <= 1.0 for v in result.resource_utilisation.values())

    def test_workload_larger_than_machine_rejected(self):
        machine = QuantumMachine(2)
        with pytest.raises(SimulationError):
            CommunicationSimulator(machine).run(qft_stream(16))

    def test_result_normalisation(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(1))
        baseline_machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(1024))
        stream = qft_stream(16)
        result = CommunicationSimulator(machine).run(stream)
        baseline = CommunicationSimulator(baseline_machine).run(stream)
        assert result.normalised_to(baseline) > 1.0

    def test_describe_contains_makespan(self):
        machine = QuantumMachine(4, allocation=ResourceAllocation.uniform(8))
        result = CommunicationSimulator(machine).run(make_stream([(1, 4)]))
        assert "makespan" in result.describe()


class TestFigure16Behaviour:
    """The key contention findings behind Figure 16, at reduced scale."""

    def test_home_base_tolerates_fewer_purifiers_than_mobile(self):
        from repro.analysis.fig16 import allocation_for_ratio

        stream = qft_stream(36)
        results = {}
        for layout in ("home_base", "mobile_qubit"):
            times = []
            for ratio in (1, 8):
                machine = QuantumMachine(6, allocation=allocation_for_ratio(ratio, 18), layout=layout)
                times.append(CommunicationSimulator(machine).run(stream).makespan_us)
            results[layout] = times[1] / times[0]  # slowdown of 8p relative to 1p
        # Shrinking the purifiers hurts the Mobile Qubit layout more than Home Base.
        assert results["mobile_qubit"] > results["home_base"]

    def test_purifier_utilisation_higher_for_mobile(self):
        stream = qft_stream(16)
        allocation = ResourceAllocation(8, 8, 1)
        home = CommunicationSimulator(QuantumMachine(4, allocation=allocation, layout="home_base")).run(stream)
        mobile = CommunicationSimulator(QuantumMachine(4, allocation=allocation, layout="mobile_qubit")).run(stream)
        home_ratio = home.resource_utilisation["purifier"] / max(
            home.resource_utilisation["teleporter_x"], 1e-9
        )
        mobile_ratio = mobile.resource_utilisation["purifier"] / max(
            mobile.resource_utilisation["teleporter_x"], 1e-9
        )
        assert mobile_ratio > home_ratio


class TestCompletionEpsilonUnification:
    """Regression for the completion-epsilon split.

    ``_schedule_completion`` used to test residual work against the far
    tighter ``_SATURATION_EPS`` (1e-12) while ``_complete`` accepted at
    ``_COMPLETION_EPS`` (1e-9).  A flow whose residue landed strictly between
    the two scheduled an immediate completion event whose handler then
    no-op'd, leaving the channel stalled forever.  Both sides now share
    ``_COMPLETION_EPS``; this pins that a gap-residue flow really completes
    under every allocator.
    """

    @pytest.mark.parametrize("allocator", ["incremental", "reference", "vectorized"])
    def test_residue_in_epsilon_gap_still_completes(self, allocator):
        from repro.network.geometry import Coordinate
        from repro.network.layout import CommRequest
        from repro.sim.control import PlannedCommunication
        from repro.sim.engine import SimulationEngine
        from repro.sim.flow import _COMPLETION_EPS, _SATURATION_EPS, FlowTransport

        machine = QuantumMachine(4)
        engine = SimulationEngine()
        transport = FlowTransport(engine, machine, allocator=allocator)
        source, dest = Coordinate(0, 0), Coordinate(3, 3)
        planned = PlannedCommunication(
            request=CommRequest(source=source, dest=dest, qubit=0),
            plan=machine.planner.plan(source, dest),
        )
        completed = []
        transport.start(planned, lambda: completed.append(True))
        assert transport.active_flows == 1
        # Drop the residual work into the gap between the two epsilons.
        residue = 5e-10
        assert _SATURATION_EPS < residue <= _COMPLETION_EPS
        flow = next(iter(transport._flows.values()))
        if transport._pack is not None:
            transport._pack._remaining[transport._pack.row_of(flow.flow_id)] = residue
        else:
            flow.remaining = residue
        transport._reallocate()
        for _ in range(64):
            if not engine.step():
                break
        assert completed == [True]
        assert transport.active_flows == 0
