"""Tests for the detailed per-pair channel setup simulation."""

import pytest

from repro.core.logical import STEANE_LEVEL_1
from repro.network.geometry import Coordinate
from repro.network.nodes import ResourceAllocation
from repro.sim.channel_setup import DetailedChannelSetup
from repro.sim.machine import QuantumMachine
from repro.sim.qpurifier import QueuePurifierModel


@pytest.fixture(scope="module")
def machine():
    return QuantumMachine(8, allocation=ResourceAllocation(4, 4, 4), encoding=STEANE_LEVEL_1)


@pytest.fixture(scope="module")
def plan(machine):
    return machine.planner.plan(Coordinate(0, 0), Coordinate(4, 3))


class TestDetailedChannelSetup:
    def test_produces_requested_good_pairs(self, machine, plan):
        setup = DetailedChannelSetup(machine, plan, good_pairs_needed=7)
        result = setup.run()
        assert result.good_pairs_delivered == 7
        assert result.raw_pairs_injected == 7 * (2 ** plan.budget.endpoint_rounds)

    def test_teleports_scale_with_path_length_and_pairs(self, machine, plan):
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=4).run()
        expected = 4 * (2 ** plan.budget.endpoint_rounds) * (plan.hops - 1)
        assert result.teleports_performed == expected

    def test_purifier_rounds_match_tree_accounting(self, machine, plan):
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=4).run()
        rounds_per_pair = 2 ** plan.budget.endpoint_rounds - 1
        assert result.purifier_rounds == 4 * rounds_per_pair

    def test_pipelining_keeps_steady_period_below_first_pair_latency(self, machine, plan):
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=10).run()
        assert result.steady_state_pair_period_us < result.first_good_pair_us

    def test_more_purifiers_speed_up_production(self, plan):
        slow_machine = QuantumMachine(8, allocation=ResourceAllocation(4, 4, 1), encoding=STEANE_LEVEL_1)
        fast_machine = QuantumMachine(8, allocation=ResourceAllocation(4, 4, 8), encoding=STEANE_LEVEL_1)
        slow_plan = slow_machine.planner.plan(Coordinate(0, 0), Coordinate(4, 3))
        fast_plan = fast_machine.planner.plan(Coordinate(0, 0), Coordinate(4, 3))
        slow = DetailedChannelSetup(slow_machine, slow_plan, good_pairs_needed=8).run()
        fast = DetailedChannelSetup(fast_machine, fast_plan, good_pairs_needed=8).run()
        assert fast.setup_time_us < slow.setup_time_us

    def test_utilisation_maps_are_populated(self, machine, plan):
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=4).run()
        assert len(result.generator_utilisation) == plan.hops
        assert len(result.teleporter_utilisation) == plan.hops - 1
        assert all(0.0 <= v <= 1.0 for v in result.generator_utilisation.values())

    def test_utilisation_keys_use_stable_link_and_node_forms(self, machine, plan):
        # Golden traces and JSON records key per-link/per-node quantities by
        # these strings: the format is a compatibility contract.
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=4).run()
        expected_links = {link.stable_name for link in plan.path.links}
        assert set(result.generator_utilisation) == expected_links
        assert all(
            key.count("-") == 1 and key.startswith("(") for key in expected_links
        )
        expected_nodes = {
            f"({node.x},{node.y})" for node in plan.path.intermediate_nodes
        }
        assert set(result.teleporter_utilisation) == expected_nodes

    def test_throughput_roughly_matches_queue_purifier_model(self, machine, plan):
        # With generous transport resources the endpoint purifier bank is the
        # bottleneck, so the detailed steady-state period should be within a
        # small factor of the closed-form queue-purifier period.
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=12).run()
        model = QueuePurifierModel(
            units=machine.allocation.purifiers_per_node,
            depth=plan.budget.endpoint_rounds,
            round_time_us=machine.params.times.purify_round(0.0),
        )
        assert result.steady_state_pair_period_us >= 0.8 * model.good_pair_period_us

    def test_describe(self, machine, plan):
        result = DetailedChannelSetup(machine, plan, good_pairs_needed=2).run()
        assert "good pairs" in result.describe()
