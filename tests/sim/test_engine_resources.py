"""Tests for the discrete-event engine and resource primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine, Timer
from repro.sim.resources import ResourcePool, ServiceCenter


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(10.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 10.0

    def test_ties_break_by_priority_then_insertion(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("second"), priority=1)
        engine.schedule(1.0, lambda: order.append("first"), priority=0)
        engine.schedule(1.0, lambda: order.append("third"), priority=1)
        engine.run()
        assert order == ["first", "second", "third"]

    def test_run_until_stops_clock_at_bound(self):
        engine = SimulationEngine()
        engine.schedule(100.0, lambda: None)
        engine.run(until=50.0)
        assert engine.now == 50.0
        assert engine.pending_events == 1

    def test_max_events_bound(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i + 1), lambda: None)
        engine.run(max_events=3)
        assert engine.processed_events == 3

    def test_cancelled_event_is_skipped(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []

    def test_events_scheduled_during_run_execute(self):
        engine = SimulationEngine()
        order = []

        def first():
            order.append("first")
            engine.schedule(2.0, lambda: order.append("nested"))

        engine.schedule(1.0, first)
        engine.run()
        assert order == ["first", "nested"]
        assert engine.now == 3.0

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_timer_rearm_cancels_previous(self):
        engine = SimulationEngine()
        fired = []
        timer = Timer(engine)
        timer.start(1.0, lambda: fired.append("first"))
        timer.start(2.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["second"]

    def test_timer_disarms_after_firing(self):
        # Regression: ``armed`` used to stay True forever after the timer
        # fired because the internal event was never cleared.
        engine = SimulationEngine()
        fired = []
        timer = Timer(engine)
        timer.start(1.0, lambda: fired.append(engine.now))
        assert timer.armed
        engine.run()
        assert fired == [1.0]
        assert not timer.armed

    def test_timer_can_rearm_from_its_own_callback(self):
        engine = SimulationEngine()
        fired = []
        timer = Timer(engine)

        def on_fire():
            fired.append(engine.now)
            if len(fired) < 3:
                timer.start(1.0, on_fire)

        timer.start(1.0, on_fire)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]
        assert not timer.armed

    def test_timer_cancel_after_firing_is_noop(self):
        engine = SimulationEngine()
        timer = Timer(engine)
        timer.start(1.0, lambda: None)
        engine.run()
        timer.cancel()
        assert not timer.armed


class TestResourcePool:
    def test_grants_up_to_capacity_immediately(self):
        engine = SimulationEngine()
        pool = ResourcePool(engine, 2)
        grants = []
        pool.acquire(lambda: grants.append(1))
        pool.acquire(lambda: grants.append(2))
        pool.acquire(lambda: grants.append(3))
        assert grants == [1, 2]
        assert pool.queue_length == 1

    def test_release_unblocks_waiter(self):
        engine = SimulationEngine()
        pool = ResourcePool(engine, 1)
        grants = []
        pool.acquire(lambda: grants.append("a"))
        pool.acquire(lambda: grants.append("b"))
        pool.release()
        assert grants == ["a", "b"]

    def test_release_without_acquire_raises(self):
        engine = SimulationEngine()
        pool = ResourcePool(engine, 1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            ResourcePool(SimulationEngine(), 0)


class TestServiceCenter:
    def test_serial_jobs_on_single_server(self):
        engine = SimulationEngine()
        center = ServiceCenter(engine, 1)
        done = []
        center.submit(10.0, lambda: done.append(engine.now))
        center.submit(10.0, lambda: done.append(engine.now))
        engine.run()
        assert done == [10.0, 20.0]

    def test_parallel_jobs_on_two_servers(self):
        engine = SimulationEngine()
        center = ServiceCenter(engine, 2)
        done = []
        center.submit(10.0, lambda: done.append(engine.now))
        center.submit(10.0, lambda: done.append(engine.now))
        engine.run()
        assert done == [10.0, 10.0]

    def test_utilisation_and_wait_statistics(self):
        engine = SimulationEngine()
        center = ServiceCenter(engine, 1)
        for _ in range(4):
            center.submit(5.0)
        engine.run()
        assert center.stats.jobs_served == 4
        assert center.stats.utilisation(engine.now) == pytest.approx(1.0)
        assert center.stats.mean_wait() == pytest.approx((0 + 5 + 10 + 15) / 4)

    def test_throughput_per_us(self):
        center = ServiceCenter(SimulationEngine(), 4)
        assert center.throughput_per_us(122.0) == pytest.approx(4 / 122.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            ServiceCenter(SimulationEngine(), 1).submit(-1.0)
