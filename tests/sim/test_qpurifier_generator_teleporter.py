"""Tests for the queue purifier, link generator and teleporter node models."""

import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Coordinate
from repro.network.nodes import TeleporterSpec
from repro.physics.parameters import IonTrapParameters
from repro.sim.engine import SimulationEngine
from repro.sim.generator import LinkGenerator
from repro.sim.qpurifier import QueuePurifier, QueuePurifierModel
from repro.sim.teleporter import TeleporterNodeSim


class TestQueuePurifierModel:
    def test_ideal_counts_match_paper(self):
        model = QueuePurifierModel(units=1, depth=3)
        assert model.raw_pairs_per_good_pair == pytest.approx(8.0)
        assert model.rounds_per_good_pair == pytest.approx(7.0)
        assert model.hardware_units_naive_tree() == 7

    def test_throughput_scales_with_units(self):
        one = QueuePurifierModel(units=1, depth=3)
        four = QueuePurifierModel(units=4, depth=3)
        assert four.throughput_per_us() == pytest.approx(4 * one.throughput_per_us())

    def test_pipeline_latency(self):
        model = QueuePurifierModel(units=1, depth=3, round_time_us=121.0)
        assert model.pipeline_latency_us == pytest.approx(363.0)

    def test_success_probability_increases_cost(self):
        ideal = QueuePurifierModel(depth=3, success_probability=1.0)
        lossy = QueuePurifierModel(depth=3, success_probability=0.9)
        assert lossy.raw_pairs_per_good_pair > ideal.raw_pairs_per_good_pair
        assert lossy.rounds_per_good_pair > ideal.rounds_per_good_pair

    def test_time_to_produce(self):
        model = QueuePurifierModel(units=1, depth=2, round_time_us=100.0)
        assert model.time_to_produce(1) == pytest.approx(200.0)
        assert model.time_to_produce(2) == pytest.approx(200.0 + 300.0)

    def test_zero_depth_passthrough(self):
        model = QueuePurifierModel(units=1, depth=0)
        assert model.rounds_per_good_pair == 0.0
        assert model.time_to_produce(5) == 0.0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            QueuePurifierModel(units=0)
        with pytest.raises(ConfigurationError):
            QueuePurifierModel(success_probability=0.0)


class TestQueuePurifierEventDriven:
    def test_eight_raw_pairs_give_one_good_pair_at_depth3(self):
        engine = SimulationEngine()
        purifier = QueuePurifier(engine, units=4, depth=3)
        for _ in range(8):
            purifier.accept_raw_pair()
        engine.run()
        assert purifier.good_pairs_produced == 1
        assert purifier.rounds_executed == 7

    def test_latency_matches_model_when_units_plentiful(self):
        engine = SimulationEngine()
        params = IonTrapParameters.default()
        purifier = QueuePurifier(engine, units=8, depth=3, params=params)
        for _ in range(8):
            purifier.accept_raw_pair()
        engine.run()
        expected_min = 3 * params.times.purify_round(0.0)
        assert engine.now >= expected_min

    def test_single_unit_serialises_rounds(self):
        params = IonTrapParameters.default()
        engine = SimulationEngine()
        purifier = QueuePurifier(engine, units=1, depth=2, params=params)
        for _ in range(4):
            purifier.accept_raw_pair()
        engine.run()
        assert engine.now == pytest.approx(3 * params.times.purify_round(0.0))

    def test_streaming_produces_multiple_good_pairs(self):
        engine = SimulationEngine()
        purifier = QueuePurifier(engine, units=2, depth=2)
        for _ in range(16):
            purifier.accept_raw_pair()
        engine.run()
        assert purifier.good_pairs_produced == 4

    def test_callback_invoked(self):
        engine = SimulationEngine()
        produced = []
        purifier = QueuePurifier(engine, units=2, depth=1, on_good_pair=lambda: produced.append(engine.now))
        for _ in range(4):
            purifier.accept_raw_pair()
        engine.run()
        assert len(produced) == 2

    def test_rejects_zero_depth(self):
        with pytest.raises(ConfigurationError):
            QueuePurifier(SimulationEngine(), depth=0)


class TestLinkGenerator:
    def test_prefilled_buffer_serves_immediately(self):
        engine = SimulationEngine()
        generator = LinkGenerator(engine, generators=1, buffer_capacity=3)
        served = []
        generator.take_pair(lambda: served.append(engine.now))
        assert served == [0.0]

    def test_empty_buffer_blocks_until_generation(self):
        engine = SimulationEngine()
        generator = LinkGenerator(engine, generators=1, buffer_capacity=2, prefill=False)
        served = []
        generator.take_pair(lambda: served.append(engine.now))
        engine.run()
        assert served and served[0] == pytest.approx(IonTrapParameters.default().times.generate)

    def test_buffer_replenishes_in_background(self):
        engine = SimulationEngine()
        generator = LinkGenerator(engine, generators=2, buffer_capacity=2)
        generator.take_pair(lambda: None)
        generator.take_pair(lambda: None)
        engine.run()
        assert generator.available_pairs == 2
        assert generator.pairs_produced >= 2

    def test_consumption_statistics(self):
        engine = SimulationEngine()
        generator = LinkGenerator(engine, generators=1, buffer_capacity=1)
        generator.take_pair(lambda: None)
        engine.run()
        assert generator.pairs_consumed == 1

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            LinkGenerator(SimulationEngine(), generators=0)


class TestTeleporterNodeSim:
    def test_teleport_takes_teleport_time(self):
        engine = SimulationEngine()
        node = TeleporterNodeSim(engine, Coordinate(1, 1))
        done = []
        node.teleport_through("x", lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(122.0)]
        assert node.teleports_performed == 1

    def test_turn_adds_ballistic_move(self):
        engine = SimulationEngine()
        node = TeleporterNodeSim(engine, Coordinate(1, 1))
        done = []
        node.teleport_through("y", lambda: done.append(engine.now), turn=True)
        engine.run()
        assert done[0] > 122.0
        assert node.turns_performed == 1

    def test_single_teleporter_serialises(self):
        engine = SimulationEngine()
        node = TeleporterNodeSim(engine, Coordinate(0, 0), spec=TeleporterSpec(1))
        done = []
        node.teleport_through("x", lambda: done.append(engine.now))
        node.teleport_through("x", lambda: done.append(engine.now))
        engine.run()
        assert done[1] == pytest.approx(244.0)

    def test_x_and_y_sets_are_independent(self):
        engine = SimulationEngine()
        node = TeleporterNodeSim(engine, Coordinate(0, 0), spec=TeleporterSpec(2))
        done = []
        node.teleport_through("x", lambda: done.append(("x", engine.now)))
        node.teleport_through("y", lambda: done.append(("y", engine.now)))
        engine.run()
        assert done[0][1] == done[1][1] == pytest.approx(122.0)

    def test_storage_overflow_detected(self):
        from repro.errors import SimulationError

        engine = SimulationEngine()
        node = TeleporterNodeSim(engine, Coordinate(0, 0), spec=TeleporterSpec(1))
        for _ in range(node.storage_cells):
            node.store_incoming()
        with pytest.raises(SimulationError):
            node.store_incoming()

    def test_storage_underflow_detected(self):
        from repro.errors import SimulationError

        engine = SimulationEngine()
        node = TeleporterNodeSim(engine, Coordinate(0, 0))
        with pytest.raises(SimulationError):
            node.release_storage()

    def test_unknown_dimension_rejected(self):
        node = TeleporterNodeSim(SimulationEngine(), Coordinate(0, 0))
        with pytest.raises(ConfigurationError):
            node.service_for("z")
