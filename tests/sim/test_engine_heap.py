"""Heap compaction: cancelled events must not accumulate."""

from repro.sim.engine import _COMPACT_MIN_HEAP, SimulationEngine, Timer


class TestHeapCompaction:
    def test_cancel_heavy_workload_has_bounded_heap(self):
        """The reallocate-style pattern (schedule, cancel, reschedule) leaks
        without compaction: the heap grew by one dead entry per cycle.  With
        compaction it stays within a small multiple of the live event count."""
        engine = SimulationEngine()
        live = 8
        events = [engine.schedule(float(i + 1), lambda: None) for i in range(live)]
        for cycle in range(10_000):
            index = cycle % live
            events[index].cancel()
            events[index] = engine.schedule(float(cycle % 97 + 1), lambda: None)
        # 10k cancellations; without compaction pending_events would be ~10k.
        assert engine.pending_events <= max(2 * live, _COMPACT_MIN_HEAP)
        assert engine.cancelled_pending <= engine.pending_events

    def test_compaction_preserves_execution_order(self):
        engine = SimulationEngine()
        fired = []
        keep = []
        cancel = []
        for i in range(200):
            keep.append(engine.schedule(float(i), lambda i=i: fired.append(i)))
            cancel.append(engine.schedule(float(i) + 0.5, lambda i=i: fired.append(-i)))
        for event in cancel:
            event.cancel()
        while engine.step():
            pass
        assert fired == list(range(200))
        assert engine.pending_events == 0

    def test_cancelled_pending_tracks_pops(self):
        engine = SimulationEngine()
        a = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        a.cancel()
        assert engine.cancelled_pending == 1
        engine.run()
        assert engine.cancelled_pending == 0

    def test_double_cancel_counts_once(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert engine.cancelled_pending == 1

    def test_cancel_after_drain_stays_sound(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.drain()
        event.cancel()
        assert engine.cancelled_pending == 0
        assert engine.pending_events == 0

    def test_timer_rearm_churn_stays_bounded(self):
        engine = SimulationEngine()
        timer = Timer(engine)
        for i in range(5_000):
            timer.start(float(i % 13 + 1), lambda: None)
        assert engine.pending_events <= _COMPACT_MIN_HEAP
