"""Fidelity accounting through the simulation stack.

Covers the tentpole wiring below the verify layer: the per-channel fidelity
model, the transport base's open-time level selection and close-time
reporting, the queue purifier's per-pair state tracking, the result columns
and the ``fidelity`` trace records — plus the guarantee that runs without a
noise model stay untouched.
"""

import pytest

from repro.errors import ConfigurationError
from repro.physics.purification import get_protocol
from repro.physics.states import BellDiagonalState
from repro.scenarios import get_scenario, run_record
from repro.scenarios.run import build_machine, build_stream
from repro.sim.engine import SimulationEngine
from repro.sim.fidelity import ChannelFidelityModel
from repro.sim.machine import QuantumMachine
from repro.sim.qpurifier import QueuePurifier
from repro.sim.simulator import CommunicationSimulator
from repro.trace import CANONICAL_KINDS, ChannelClosed, ChannelFidelity, TraceBus


def tracked_machine(**kwargs):
    return QuantumMachine(3, num_qubits=6, track_fidelity=True, **kwargs)


class TestChannelFidelityModel:
    def test_profile_matches_budget_selection(self):
        machine = tracked_machine()
        model = machine.fidelity_model()
        assert isinstance(model, ChannelFidelityModel)
        for hops in (1, 2, 3):
            profile = model.profile(hops)
            budget = machine.planner.budget_for_hops(hops)
            assert profile.purification_level == budget.endpoint_rounds
            assert profile.arrival_fidelity == pytest.approx(budget.arrival_fidelity)
            assert profile.expected_pairs >= 1.0
            assert profile.meets_target
            assert profile.delivered_fidelity >= profile.target_fidelity

    def test_profiles_are_memoized(self):
        model = tracked_machine().fidelity_model()
        assert model.profile(2) is model.profile(2)

    def test_untracked_machine_has_no_model(self):
        assert QuantumMachine(3, num_qubits=6).fidelity_model() is None

    def test_target_fidelity_folds_into_threshold(self):
        machine = tracked_machine(target_fidelity=0.99)
        assert machine.params.threshold_fidelity == pytest.approx(0.99)
        profile = machine.fidelity_model().profile(2)
        assert profile.target_fidelity == pytest.approx(0.99)
        # A looser target needs fewer purification rounds than the default.
        default_level = tracked_machine().fidelity_model().profile(2).purification_level
        assert profile.purification_level <= default_level

    def test_invalid_target_fidelity_rejected(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError, match="target_fidelity"):
                tracked_machine(target_fidelity=bad)


class TestQueuePurifierStateTracking:
    def _drain(self, engine):
        engine.run()

    def test_good_pair_fidelities_match_analytical_recurrence(self):
        engine = SimulationEngine()
        protocol = get_protocol("dejmps")
        state = BellDiagonalState.werner(0.95)
        purifier = QueuePurifier(
            engine, depth=2, input_state=state, protocol=protocol
        )
        for _ in range(8):
            purifier.accept_raw_pair()
        self._drain(engine)
        expected = protocol.iterate(state, 2)[-1].fidelity
        assert purifier.good_pairs_produced == 2
        assert purifier.good_pair_fidelities == [expected, expected]

    def test_tracking_off_keeps_empty_fidelity_list(self):
        engine = SimulationEngine()
        purifier = QueuePurifier(engine, depth=2)
        for _ in range(4):
            purifier.accept_raw_pair()
        self._drain(engine)
        assert purifier.good_pairs_produced == 1
        assert purifier.good_pair_fidelities == []

    def test_tracking_does_not_change_timing(self):
        def run(**kwargs):
            engine = SimulationEngine()
            done = []
            purifier = QueuePurifier(
                engine, depth=2, on_good_pair=lambda: done.append(engine.now), **kwargs
            )
            for _ in range(8):
                purifier.accept_raw_pair()
            engine.run()
            return done

        plain = run()
        tracked = run(
            input_state=BellDiagonalState.werner(0.9), protocol=get_protocol("dejmps")
        )
        assert plain == tracked

    def test_partial_tracking_arguments_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ConfigurationError, match="both input_state and protocol"):
            QueuePurifier(engine, depth=2, input_state=BellDiagonalState.werner(0.9))
        with pytest.raises(ConfigurationError, match="both input_state and protocol"):
            QueuePurifier(engine, depth=2, protocol=get_protocol("dejmps"))


class TestRunLevelAccounting:
    @pytest.mark.parametrize("backend", ["fluid", "detailed"])
    def test_every_channel_reports_fidelity(self, backend):
        spec = get_scenario("smoke_noisy")
        result = CommunicationSimulator(build_machine(spec), backend=backend).run(
            build_stream(spec)
        )
        assert result.channels
        for channel in result.channels:
            assert channel.delivered_fidelity is not None
            assert channel.purification_level is not None and channel.purification_level >= 1
            assert channel.delivered_fidelity >= result.target_fidelity
        summary = result.fidelity_summary()
        assert summary is not None
        assert summary["channels"] == len(result.channels)
        assert summary["below_target"] == 0
        assert summary["min"] <= summary["mean"] <= summary["max"]
        assert "delivered fidelity" in result.describe()

    def test_untracked_run_reports_nothing(self):
        spec = get_scenario("smoke")
        result = CommunicationSimulator(build_machine(spec)).run(build_stream(spec))
        assert result.target_fidelity is None
        assert result.fidelity_summary() is None
        assert all(c.delivered_fidelity is None for c in result.channels)
        assert "delivered fidelity" not in result.describe()

    @pytest.mark.parametrize("backend", ["fluid", "detailed"])
    def test_fidelity_trace_records_follow_channel_close(self, backend):
        spec = get_scenario("smoke_noisy")
        bus = TraceBus(kinds=CANONICAL_KINDS)
        CommunicationSimulator(build_machine(spec), backend=backend).run(
            build_stream(spec), trace=bus
        )
        closes = bus.filtered([ChannelClosed.kind])
        fidelities = bus.filtered([ChannelFidelity.kind])
        assert len(fidelities) == len(closes) > 0
        for record in fidelities:
            assert record.meets_target
            assert 0.0 <= record.arrival_fidelity <= record.delivered_fidelity <= 1.0
        # The fidelity record of flow f rides directly behind its close.
        order = [(r.kind, r.flow_id) for r in bus.records if hasattr(r, "flow_id")]
        for index, (kind, flow_id) in enumerate(order):
            if kind == ChannelClosed.kind:
                assert order[index + 1] == (ChannelFidelity.kind, flow_id)

    def test_untracked_trace_has_no_fidelity_records(self):
        spec = get_scenario("smoke")
        bus = TraceBus(kinds=CANONICAL_KINDS)
        CommunicationSimulator(build_machine(spec)).run(build_stream(spec), trace=bus)
        assert not bus.filtered([ChannelFidelity.kind])

    def test_run_record_record_carries_noise_and_fidelity(self):
        record = run_record(get_scenario("smoke_noisy"))
        assert record["noise"]["base_fidelity"] == pytest.approx(0.999)
        assert record["fidelity"]["below_target"] == 0
        plain = run_record(get_scenario("smoke"))
        assert plain["noise"] is None and plain["fidelity"] is None

    def test_fluid_dynamics_identical_without_noise(self):
        # The accounting pipeline must be invisible when off: same makespan
        # and channel timeline as the spec without a noise section, compared
        # against the same spec *with* noise attached only for tracking
        # (identical physics: no overrides, default target).
        spec = get_scenario("smoke")
        baseline = CommunicationSimulator(build_machine(spec)).run(build_stream(spec))
        tracked_spec = spec.with_noise({})
        tracked = CommunicationSimulator(build_machine(tracked_spec)).run(
            build_stream(tracked_spec)
        )
        assert tracked.makespan_us == baseline.makespan_us
        assert [
            (c.source, c.destination, c.start_us, c.end_us) for c in tracked.channels
        ] == [(c.source, c.destination, c.start_us, c.end_us) for c in baseline.channels]
        assert all(c.delivered_fidelity is not None for c in tracked.channels)
        assert all(c.delivered_fidelity is None for c in baseline.channels)
