"""Tests for the instruction scheduler and the classical control unit."""

import pytest

from repro.errors import SchedulingError
from repro.sim.control import ControlUnit
from repro.sim.machine import QuantumMachine
from repro.sim.scheduler import InstructionScheduler
from repro.workloads.instructions import InstructionStream
from repro.workloads.qft import qft_stream


def make_stream(pairs, num_qubits=8):
    return InstructionStream.from_pairs("test", num_qubits, pairs)


class TestScheduler:
    def test_initially_ready_ops_have_no_dependencies(self):
        scheduler = InstructionScheduler(make_stream([(1, 2), (3, 4), (2, 3)]))
        ready = [op.qubits for op in scheduler.ready_operations()]
        assert ready == [(1, 2), (3, 4)]

    def test_completion_unblocks_dependents(self):
        scheduler = InstructionScheduler(make_stream([(1, 2), (2, 3)]))
        scheduler.mark_issued(0)
        newly = scheduler.mark_completed(0)
        assert [op.index for op in newly] == [1]

    def test_dependent_needs_all_predecessors(self):
        scheduler = InstructionScheduler(make_stream([(1, 2), (3, 4), (2, 3)]))
        scheduler.mark_issued(0)
        scheduler.mark_issued(1)
        assert scheduler.mark_completed(0) == []
        newly = scheduler.mark_completed(1)
        assert [op.index for op in newly] == [2]

    def test_finished_after_all_completions(self):
        scheduler = InstructionScheduler(make_stream([(1, 2), (2, 3)]))
        for index in (0, 1):
            for op in scheduler.ready_operations():
                scheduler.mark_issued(op.index)
            scheduler.mark_completed(index)
        assert scheduler.finished

    def test_cannot_issue_unready_op(self):
        scheduler = InstructionScheduler(make_stream([(1, 2), (2, 3)]))
        with pytest.raises(SchedulingError):
            scheduler.mark_issued(1)

    def test_cannot_complete_unissued_op(self):
        scheduler = InstructionScheduler(make_stream([(1, 2)]))
        with pytest.raises(SchedulingError):
            scheduler.mark_completed(0)

    def test_cannot_complete_twice(self):
        scheduler = InstructionScheduler(make_stream([(1, 2)]))
        scheduler.mark_issued(0)
        scheduler.mark_completed(0)
        with pytest.raises(SchedulingError):
            scheduler.mark_completed(0)

    def test_full_qft_drains_in_wavefront_order(self):
        stream = qft_stream(8)
        scheduler = InstructionScheduler(stream)
        completed = 0
        while not scheduler.finished:
            ready = scheduler.ready_operations()
            assert ready, "scheduler deadlocked"
            for op in ready:
                scheduler.mark_issued(op.index)
            for op in ready:
                scheduler.mark_completed(op.index)
                completed += 1
            scheduler.assert_consistent()
        assert completed == len(stream)

    def test_parallelism_matches_wavefronts(self):
        stream = qft_stream(8)
        scheduler = InstructionScheduler(stream)
        fronts = stream.wavefronts()
        for front in fronts:
            ready = scheduler.ready_operations()
            assert {op.index for op in ready} == {op.index for op in front}
            for op in ready:
                scheduler.mark_issued(op.index)
            for op in ready:
                scheduler.mark_completed(op.index)


class TestControlUnit:
    def test_home_base_operation_produces_round_trip(self):
        machine = QuantumMachine(4, layout="home_base")
        control = ControlUnit(machine)
        stream = make_stream([(1, 16)], num_qubits=16)
        planned = control.plan_operation(stream[0])
        assert len(planned) == 2
        assert planned[0].plan is not None
        assert planned[0].hops == planned[1].hops == 6

    def test_mobile_walk_is_single_hop(self):
        machine = QuantumMachine(4, layout="mobile_qubit")
        control = ControlUnit(machine)
        stream = make_stream([(1, 2)], num_qubits=16)
        planned = control.plan_operation(stream[0])
        assert len(planned) == 1
        assert planned[0].hops == 1

    def test_messages_issued_per_good_pair(self):
        machine = QuantumMachine(4, layout="home_base")
        control = ControlUnit(machine)
        stream = make_stream([(1, 16)], num_qubits=16)
        planned = control.plan_operation(stream[0])
        messages = control.issue_messages(planned[0])
        assert len(messages) == machine.good_pairs_per_logical_communication()
        assert control.messages_issued == len(messages)

    def test_local_communication_issues_no_messages(self):
        machine = QuantumMachine(4, layout="mobile_qubit")
        control = ControlUnit(machine)
        # Force a local request by planning an operation between co-located qubits.
        stream = make_stream([(1, 2)], num_qubits=16)
        planned = control.plan_operation(stream[0])
        # Walk again between the same two qubits: mover is now at the target site.
        planned_again = control.plan_operation(stream[0])
        for item in planned_again:
            if item.is_local:
                assert control.issue_messages(item) == []

    def test_reset_restores_positions_and_clears_log(self):
        machine = QuantumMachine(4, layout="mobile_qubit")
        control = ControlUnit(machine)
        stream = make_stream([(1, 5)], num_qubits=16)
        control.plan_operation(stream[0])
        control.issue_messages(control.plan_operation(stream[0])[0]) if control.plan_operation(stream[0]) else None
        control.reset()
        assert control.messages_issued == 0
        assert machine.layout.position_of(1) == machine.layout.home_site(1)
