"""Channel planning on a mesh topology (paper Section 3.2, "Route Planning").

High-level classical control tracks logical qubits, picks a path for every
logical communication with dimension-order routing, designates the G node
nearest the middle of the path as the pair source, and computes the EPR budget
the channel will need.  :class:`ChannelPlanner` implements exactly that and is
the bridge between the analytical core and the network/simulation layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import RoutingError
from ..network.geometry import Coordinate
from ..network.routing import DimensionOrder, Path, candidate_paths
from ..network.topology import MeshTopology
from ..physics.parameters import IonTrapParameters
from .budget import ChannelBudget, EPRBudgetModel
from .logical import STEANE_LEVEL_2, LogicalQubitEncoding
from .placement import PurificationPlacement, endpoint_only


@dataclass(frozen=True)
class ChannelPlan:
    """A planned channel: path, seed generator and resource budget."""

    source: Coordinate
    destination: Coordinate
    path: Path
    generator_node: Coordinate
    budget: ChannelBudget
    encoding: LogicalQubitEncoding

    @property
    def hops(self) -> int:
        return self.path.hops

    @property
    def feasible(self) -> bool:
        return self.budget.feasible

    @property
    def pairs_per_logical_communication(self) -> float:
        return self.budget.pairs_per_logical_communication(self.encoding)

    @property
    def setup_latency_us(self) -> float:
        return self.budget.setup_latency_us

    def describe(self) -> str:
        return (
            f"ChannelPlan {self.source}->{self.destination}: {self.hops} hops via "
            f"{self.generator_node}, {self.pairs_per_logical_communication:.0f} pairs "
            f"per logical communication, setup {self.setup_latency_us:.0f} us"
        )


class ChannelPlanner:
    """Plans channels between T' nodes of a mesh."""

    def __init__(
        self,
        topology: MeshTopology,
        params: IonTrapParameters | None = None,
        *,
        placement: Optional[PurificationPlacement] = None,
        protocol: str = "dejmps",
        encoding: LogicalQubitEncoding = STEANE_LEVEL_2,
        order: DimensionOrder = DimensionOrder.XY,
    ) -> None:
        self.topology = topology
        self.params = params or IonTrapParameters.default()
        if self.params.cells_per_hop != topology.cells_per_hop:
            self.params = self.params.with_hop_cells(topology.cells_per_hop)
        self.placement = placement or endpoint_only()
        self.protocol = protocol
        self.encoding = encoding
        self.order = order
        self._budget_model = EPRBudgetModel(
            self.params, protocol=protocol, placement=self.placement
        )
        self._budget_cache: dict = {}
        self._arrival_cache: dict = {}
        self._plan_cache: dict = {}
        # Instance-local memos for multi-path fabrics; deliberately NOT part
        # of the warm-start exchange (budgets — the expensive part — are).
        self._candidate_cache: dict = {}
        self._path_plan_cache: dict = {}

    def route(self, source: Coordinate, destination: Coordinate) -> Path:
        """The default (policy-free) path between two T' nodes.

        Dimension-order on grid fabrics; the first minimal candidate on
        hierarchical fabrics.  Load balancers pick among :meth:`candidates`
        instead and plan via :meth:`plan_via`.
        """
        return self.candidates(source, destination)[0]

    def candidates(self, source: Coordinate, destination: Coordinate) -> Tuple[Path, ...]:
        """All candidate paths for the pair (memoized per endpoint pair)."""
        key = (source, destination)
        cached = self._candidate_cache.get(key)
        if cached is None:
            self.topology.validate_node(source)
            self.topology.validate_node(destination)
            cached = candidate_paths(source, destination, self.topology, order=self.order)
            self._candidate_cache[key] = cached
        return cached

    def budget_for_hops(self, hops: int) -> ChannelBudget:
        """EPR budget for a channel of ``hops`` hops (cached per distance)."""
        if hops not in self._budget_cache:
            self._budget_cache[hops] = self._budget_model.budget(hops)
        return self._budget_cache[hops]

    def arrival_state(self, hops: int):
        """Bell-diagonal endpoint arrival state for ``hops`` (cached per distance).

        This is the state the endpoint queue purifiers receive — generation,
        chained teleportation and the local moves already applied — and the
        input the fidelity-accounting pipeline purifies, analytically on the
        fluid backend and pair by pair on the detailed one.
        """
        if hops not in self._arrival_cache:
            self._arrival_cache[hops] = self._budget_model.arrival_trajectory(hops)[0]
        return self._arrival_cache[hops]

    @property
    def protocol_instance(self):
        """The purification protocol object the budget model runs."""
        return self._budget_model.protocol

    def plan(self, source: Coordinate, destination: Coordinate) -> ChannelPlan:
        """Plan a channel between two T' nodes (memoized per endpoint pair).

        Plans are immutable and deterministic in (source, destination) for a
        fixed planner configuration, so the memo — shared across runs by the
        warm-start cache — is exact.  Service mode plans a channel per
        dispatched request, which makes repeated endpoint pairs the common
        case.
        """
        key = (source, destination)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        if source == destination:
            raise RoutingError("source and destination T' nodes coincide; no channel needed")
        path = self.route(source, destination)
        budget = self.budget_for_hops(path.hops)
        plan = ChannelPlan(
            source=source,
            destination=destination,
            path=path,
            generator_node=path.midpoint_node(),
            budget=budget,
            encoding=self.encoding,
        )
        self._plan_cache[key] = plan
        return plan

    def plan_via(
        self, source: Coordinate, destination: Coordinate, path: Path
    ) -> ChannelPlan:
        """Plan a channel along a specific (balancer-chosen) candidate path.

        Memoized per (endpoints, path nodes): a balancer re-picking the same
        candidate for a later flow reuses the plan object, and the budget is
        shared per hop count with :meth:`plan` through ``budget_for_hops``.
        """
        key = (source, destination, path.nodes)
        cached = self._path_plan_cache.get(key)
        if cached is not None:
            return cached
        plan = ChannelPlan(
            source=source,
            destination=destination,
            path=path,
            generator_node=path.midpoint_node(),
            budget=self.budget_for_hops(path.hops),
            encoding=self.encoding,
        )
        self._path_plan_cache[key] = plan
        return plan

    def adopt_caches(
        self, *, budgets: dict, arrivals: dict, plans: dict
    ) -> None:
        """Share memo dicts owned by a cross-run warm-start entry.

        All three caches hold pure functions of the planner configuration
        (which the warm-start key covers), so adoption only skips recompute.
        """
        self._budget_cache = budgets
        self._arrival_cache = arrivals
        self._plan_cache = plans

    def plan_many(
        self, endpoints: Sequence[Tuple[Coordinate, Coordinate]]
    ) -> List[ChannelPlan]:
        """Plan several channels (skipping zero-length requests)."""
        plans = []
        for source, destination in endpoints:
            if source == destination:
                continue
            plans.append(self.plan(source, destination))
        return plans

    def worst_case_plan(self) -> ChannelPlan:
        """Plan for the longest channel on the fabric.

        Corner to corner on a mesh; hierarchical fabrics expose their own
        ``worst_case_endpoints`` (first host to last host).
        """
        endpoints = getattr(self.topology, "worst_case_endpoints", None)
        if endpoints is not None:
            corner_a, corner_b = endpoints()
        else:
            corner_a = Coordinate(0, 0)
            corner_b = Coordinate(self.topology.width - 1, self.topology.height - 1)
        return self.plan(corner_a, corner_b)
