"""Purification placement policies (paper Section 4.7).

The paper studies where along a channel purification should happen, with three
options (and two strengths for the latter two), always followed by endpoint
purification up to the fault-tolerance threshold:

* **Endpoints only** — raw virtual-wire pairs everywhere, purify only the
  pairs that arrive at the channel endpoints.
* **Virtual wire** ("before teleport") — purify the link pairs that form each
  virtual wire, once or twice, before they are consumed by chained
  teleportation.
* **Between teleports** ("after each teleport") — purify the pair being chain
  teleported after every hop, once or twice.

A :class:`PurificationPlacement` value captures one such policy and is
consumed by :class:`repro.core.budget.EPRBudgetModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from ..errors import ConfigurationError


class PlacementScheme(Enum):
    """Coarse categories of purification placement."""

    ENDPOINTS_ONLY = "endpoints_only"
    VIRTUAL_WIRE = "virtual_wire"
    BETWEEN_TELEPORTS = "between_teleports"


@dataclass(frozen=True)
class PurificationPlacement:
    """Where and how strongly purification is applied along a channel.

    Attributes
    ----------
    virtual_wire_rounds:
        Purification rounds applied to every virtual-wire link pair before it
        is consumed ("before teleport" in Figures 10/11).
    per_hop_rounds:
        Purification rounds applied to the chain-teleported pair after every
        hop ("after each teleport").
    endpoint_to_threshold:
        Whether the endpoints purify arriving pairs up to the fault-tolerance
        threshold.  The paper always does; disabling it is useful for
        ablations.
    label:
        Legend label used by the figure-regeneration code.
    """

    virtual_wire_rounds: int = 0
    per_hop_rounds: int = 0
    endpoint_to_threshold: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.virtual_wire_rounds < 0:
            raise ConfigurationError(
                f"virtual_wire_rounds must be non-negative, got {self.virtual_wire_rounds}"
            )
        if self.per_hop_rounds < 0:
            raise ConfigurationError(
                f"per_hop_rounds must be non-negative, got {self.per_hop_rounds}"
            )
        if not self.label:
            object.__setattr__(self, "label", self._default_label())

    def _default_label(self) -> str:
        if self.per_hop_rounds and self.virtual_wire_rounds:
            return (
                f"{_times(self.virtual_wire_rounds)} before and "
                f"{_times(self.per_hop_rounds)} after each teleport"
            )
        if self.per_hop_rounds:
            return f"{_times(self.per_hop_rounds)} after each teleport"
        if self.virtual_wire_rounds:
            return f"{_times(self.virtual_wire_rounds)} before teleport"
        return "only at end"

    @property
    def scheme(self) -> PlacementScheme:
        """Coarse category of this placement."""
        if self.per_hop_rounds > 0:
            return PlacementScheme.BETWEEN_TELEPORTS
        if self.virtual_wire_rounds > 0:
            return PlacementScheme.VIRTUAL_WIRE
        return PlacementScheme.ENDPOINTS_ONLY

    @property
    def purifies_links(self) -> bool:
        return self.virtual_wire_rounds > 0

    @property
    def purifies_per_hop(self) -> bool:
        return self.per_hop_rounds > 0


def _times(n: int) -> str:
    return {1: "once", 2: "twice"}.get(n, f"{n} times")


def endpoint_only() -> PurificationPlacement:
    """Purify only at the channel endpoints (the paper's chosen baseline)."""
    return PurificationPlacement()


def virtual_wire(rounds: int = 1) -> PurificationPlacement:
    """Purify the virtual-wire link pairs ``rounds`` times before use."""
    if rounds < 1:
        raise ConfigurationError(f"virtual_wire rounds must be >= 1, got {rounds}")
    return PurificationPlacement(virtual_wire_rounds=rounds)


def between_teleports(rounds: int = 1) -> PurificationPlacement:
    """Purify the chain-teleported pair ``rounds`` times after every hop."""
    if rounds < 1:
        raise ConfigurationError(f"between_teleports rounds must be >= 1, got {rounds}")
    return PurificationPlacement(per_hop_rounds=rounds)


def standard_schemes() -> List[PurificationPlacement]:
    """The five placement policies compared in Figures 10, 11 and 12.

    Ordered as in the paper's legends: twice/once after each teleport,
    twice/once before teleport, and only at the end.
    """
    return [
        between_teleports(2),
        between_teleports(1),
        virtual_wire(2),
        virtual_wire(1),
        endpoint_only(),
    ]
