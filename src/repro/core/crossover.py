"""Ballistic vs. teleportation latency crossover (paper Section 4.6).

Teleportation takes ~122 us regardless of distance (the classical bits are
orders of magnitude faster than ion movement), while ballistic movement costs
0.2 us per cell.  The crossover — the distance beyond which teleportation is
faster — lands near 600 cells, which the paper adopts as the spacing between
T' nodes (one "hop").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..physics.parameters import IonTrapParameters


@dataclass(frozen=True)
class LatencyComparison:
    """Latency of both transport mechanisms at one distance."""

    distance_cells: float
    ballistic_us: float
    teleportation_us: float

    @property
    def teleportation_faster(self) -> bool:
        return self.teleportation_us < self.ballistic_us

    @property
    def ratio(self) -> float:
        """Ballistic latency divided by teleportation latency."""
        if self.teleportation_us == 0:
            return math.inf
        return self.ballistic_us / self.teleportation_us


def latency_comparison(
    distance_cells: float, params: IonTrapParameters | None = None
) -> LatencyComparison:
    """Compare ballistic and teleportation latency at ``distance_cells``."""
    params = params or IonTrapParameters.default()
    if distance_cells < 0:
        raise ConfigurationError(f"distance_cells must be non-negative, got {distance_cells}")
    return LatencyComparison(
        distance_cells=distance_cells,
        ballistic_us=params.times.ballistic(distance_cells),
        teleportation_us=params.times.teleport(distance_cells),
    )


def crossover_distance_cells(params: IonTrapParameters | None = None) -> int:
    """Smallest whole-cell distance at which teleportation beats ballistic movement.

    Solves ``t_teleport(D) < t_mv * D`` for integer ``D``; with the paper's
    constants this is ~610 cells, matching the "about 600 cells" in the text.
    """
    params = params or IonTrapParameters.default()
    per_cell = params.times.move_cell - params.times.classical_per_cell
    if per_cell <= 0:
        raise ConfigurationError(
            "classical transport must be faster than ballistic movement for a crossover to exist"
        )
    fixed = params.times.teleport(0.0)
    return int(math.ceil(fixed / per_cell)) + 1


def crossover_series(
    max_cells: int,
    step: int = 50,
    params: IonTrapParameters | None = None,
) -> List[LatencyComparison]:
    """Latency comparison sampled from 0 to ``max_cells`` cells."""
    params = params or IonTrapParameters.default()
    if max_cells < 0:
        raise ConfigurationError(f"max_cells must be non-negative, got {max_cells}")
    if step <= 0:
        raise ConfigurationError(f"step must be positive, got {step}")
    return [latency_comparison(d, params) for d in range(0, max_cells + 1, step)]


def recommended_hop_cells(params: IonTrapParameters | None = None) -> int:
    """Hop length the paper recommends: the latency crossover, rounded to 600."""
    crossover = crossover_distance_cells(params)
    # Round to the nearest 100 cells, which is how the paper quotes it.
    return int(round(crossover / 100.0)) * 100
