"""EPR pair distribution methodologies (paper Section 3.1, Figures 4 and 5).

Two ways of getting the halves of an EPR pair to the endpoints of a channel:

* **Ballistic movement** — the pair is generated at a G node near the middle
  of the path and its halves are physically shuttled to the endpoint purifier
  nodes.  Fidelity decays geometrically with the full path length (Eq. 1) and
  latency is linear in distance.
* **Chained teleportation** — the pair is generated at the midpoint and each
  half is successively teleported from T' node to T' node over pre-distributed
  virtual-wire link pairs.  The pair accumulates the link pairs' errors plus
  gate/measurement noise per hop, but latency is nearly distance-independent
  because the links are pre-established.

Both methodologies produce a Bell-diagonal arrival state and a setup latency,
which feed the budget and channel models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..physics.ballistic import ballistic_time
from ..physics.epr import generation_state, generation_time
from ..physics.parameters import IonTrapParameters
from ..physics.purification import PurificationProtocol, get_protocol
from ..physics.states import BellDiagonalState
from ..physics.teleportation import teleport_state, teleportation_time
from .placement import PurificationPlacement, endpoint_only


@dataclass(frozen=True)
class DistributionResult:
    """Outcome of distributing one EPR pair to the endpoints of a channel."""

    arrival_state: BellDiagonalState
    latency_us: float
    teleport_operations: int
    ballistic_cells: float
    link_pairs_consumed: float

    @property
    def arrival_fidelity(self) -> float:
        return self.arrival_state.fidelity

    @property
    def arrival_error(self) -> float:
        return self.arrival_state.error


class DistributionMethod(ABC):
    """Common interface for EPR distribution methodologies."""

    name: str = "abstract"

    def __init__(
        self,
        params: IonTrapParameters | None = None,
        *,
        protocol: str = "dejmps",
        placement: Optional[PurificationPlacement] = None,
    ) -> None:
        self.params = params or IonTrapParameters.default()
        self.placement = placement or endpoint_only()
        self.protocol: PurificationProtocol = get_protocol(protocol, self.params)

    @abstractmethod
    def distribute(self, hops: int) -> DistributionResult:
        """Distribute one EPR pair across a path of ``hops`` teleportation hops."""

    def path_cells(self, hops: int) -> float:
        """Physical length of the path in ballistic cells."""
        if hops < 0:
            raise ConfigurationError(f"hops must be non-negative, got {hops}")
        return float(hops * self.params.cells_per_hop)


class BallisticDistribution(DistributionMethod):
    """Figure 4: generate at the midpoint, shuttle the halves ballistically."""

    name = "ballistic"

    def distribute(self, hops: int) -> DistributionResult:
        cells = self.path_cells(hops)
        state = generation_state(self.params)
        # Each half travels half the path; decoherence acts on both halves, so
        # the pair decays over the full path length.
        state = state.movement_decay(self.params.errors.move_cell, cells)
        state = state.movement_decay(
            self.params.errors.move_cell, 2 * self.params.endpoint_local_cells
        )
        latency = generation_time(self.params) + ballistic_time(cells / 2.0, self.params)
        latency += ballistic_time(self.params.endpoint_local_cells, self.params)
        return DistributionResult(
            arrival_state=state,
            latency_us=latency,
            teleport_operations=0,
            ballistic_cells=cells + 2 * self.params.endpoint_local_cells,
            link_pairs_consumed=0.0,
        )


class ChainedTeleportationDistribution(DistributionMethod):
    """Figure 5: successively teleport the pair's halves over virtual wires."""

    name = "chained_teleportation"

    # -- link (virtual wire) pairs -------------------------------------------

    def raw_link_state(self) -> BellDiagonalState:
        """State of a virtual-wire pair as delivered to adjacent T' nodes.

        A G node sits between two T' nodes; each generated half travels about
        half a hop ballistically, so the pair decays over one hop length.
        """
        state = generation_state(self.params)
        return state.movement_decay(self.params.errors.move_cell, self.params.cells_per_hop)

    def link_state(self) -> BellDiagonalState:
        """Link state after any virtual-wire purification mandated by placement."""
        state = self.raw_link_state()
        if self.placement.virtual_wire_rounds:
            outcomes = self.protocol.iterate(state, self.placement.virtual_wire_rounds)
            state = outcomes[-1].state
        return state

    def link_cost(self) -> float:
        """Expected raw generated pairs consumed per usable link pair."""
        if not self.placement.virtual_wire_rounds:
            return 1.0
        outcomes = self.protocol.iterate(
            self.raw_link_state(), self.placement.virtual_wire_rounds
        )
        cost = 1.0
        for outcome in outcomes:
            cost *= 2.0 / outcome.success_probability
        return cost

    # -- chained transport -----------------------------------------------------

    def distribute(self, hops: int) -> DistributionResult:
        if hops < 0:
            raise ConfigurationError(f"hops must be non-negative, got {hops}")
        link = self.link_state()
        state = link  # The delivered pair starts life as a link pair at the midpoint.
        teleports = 0
        link_pairs = 1.0 * self.link_cost()
        overhead = self.params.router_overhead_cells
        for _ in range(max(hops - 1, 0)):
            state = state.movement_decay(self.params.errors.move_cell, overhead)
            state = teleport_state(state, link, self.params)
            teleports += 1
            link_pairs += self.link_cost()
            if self.placement.per_hop_rounds:
                outcomes = self.protocol.iterate(state, self.placement.per_hop_rounds)
                state = outcomes[-1].state
        state = state.movement_decay(
            self.params.errors.move_cell, 2 * self.params.endpoint_local_cells
        )
        # Latency: the links are pre-distributed, so the chained swaps happen in
        # one teleportation round; correction bits then ride the classical
        # network over the whole path.
        cells = self.path_cells(hops)
        latency = generation_time(self.params)
        latency += teleportation_time(0.0, self.params)
        latency += self.params.times.classical(cells)
        latency += ballistic_time(self.params.endpoint_local_cells, self.params)
        if self.placement.per_hop_rounds:
            latency += (
                self.placement.per_hop_rounds
                * max(hops - 1, 0)
                * self.params.times.purify_round(self.params.cells_per_hop)
            )
        return DistributionResult(
            arrival_state=state,
            latency_us=latency,
            teleport_operations=teleports,
            ballistic_cells=overhead * max(hops - 1, 0) + 2 * self.params.endpoint_local_cells,
            link_pairs_consumed=link_pairs,
        )


def get_distribution(
    name: str,
    params: IonTrapParameters | None = None,
    **kwargs: object,
) -> DistributionMethod:
    """Construct a distribution methodology by name."""
    key = name.strip().lower()
    table = {
        "ballistic": BallisticDistribution,
        "chained": ChainedTeleportationDistribution,
        "chained_teleportation": ChainedTeleportationDistribution,
        "teleportation": ChainedTeleportationDistribution,
    }
    if key not in table:
        raise ConfigurationError(
            f"unknown distribution method {name!r}; expected one of {sorted(table)}"
        )
    return table[key](params, **kwargs)  # type: ignore[arg-type]
