"""EPR resource budget engine (paper Section 4.7, Figures 10-12).

For a channel of ``hops`` teleportation hops and a purification placement
policy, the budget model answers:

* what Bell-diagonal state arrives at the endpoints (after chained
  teleportation over the virtual wires, intra-router shuttling and the final
  local move);
* how many endpoint purification rounds are needed to clear the
  fault-tolerance threshold, and with what expected yield;
* how many EPR pairs must therefore *transit* the channel per delivered
  above-threshold pair (Figure 11);
* how many raw generated pairs are consumed in total, counting the virtual
  wire pairs burned by every hop of every transiting pair and by any
  virtual-wire purification (Figure 10);
* whether the channel is feasible at all for a given operation error rate
  (Figure 12's breakdown near 1e-5).

Accounting conventions (documented in DESIGN.md):

* A path of ``D`` hops needs ``D - 1`` chained teleportations (the delivered
  pair starts life as the middle virtual-wire pair).
* ``transit(j)`` is the expected number of pairs that perform hop ``j``.  For
  endpoint-only and virtual-wire placements it equals the endpoint tree's
  expected input count; for between-teleport placements it grows by the
  per-hop purification cost factor, which is what makes that policy's resource
  usage exponential in distance (the paper's qualitative conclusion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, InfeasibleError
from ..physics.parameters import IonTrapParameters
from ..physics.purification import PurificationProtocol, get_protocol
from ..physics.purification_tree import expected_pairs_for_rounds
from ..physics.states import BellDiagonalState
from ..physics.teleportation import teleport_state
from .distribution import ChainedTeleportationDistribution
from .logical import STEANE_LEVEL_2, LogicalQubitEncoding
from .placement import PurificationPlacement, endpoint_only


@dataclass(frozen=True)
class ChannelBudget:
    """Resource budget for delivering one above-threshold EPR pair."""

    hops: int
    placement: PurificationPlacement
    protocol_name: str
    feasible: bool
    link_error_raw: float
    link_error: float
    link_cost: float
    arrival_error: float
    endpoint_rounds: int
    endpoint_pairs: float
    pairs_teleported: float
    teleport_operations: float
    total_pairs: float
    setup_latency_us: float
    per_hop_costs: Tuple[float, ...] = ()

    @property
    def arrival_fidelity(self) -> float:
        return 1.0 - self.arrival_error

    def pairs_per_logical_communication(
        self, encoding: LogicalQubitEncoding = STEANE_LEVEL_2
    ) -> float:
        """Raw pairs that must transit the channel to move one logical qubit."""
        return self.pairs_teleported * encoding.physical_qubits

    def total_pairs_per_logical_communication(
        self, encoding: LogicalQubitEncoding = STEANE_LEVEL_2
    ) -> float:
        """Total raw pairs consumed to move one logical qubit."""
        return self.total_pairs * encoding.physical_qubits

    def describe(self) -> str:
        status = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"ChannelBudget({self.placement.label}, D={self.hops} hops, {status}): "
            f"arrival error={self.arrival_error:.3e}, "
            f"endpoint rounds={self.endpoint_rounds}, "
            f"pairs teleported={self.pairs_teleported:.3g}, "
            f"total pairs={self.total_pairs:.3g}"
        )


class EPRBudgetModel:
    """Computes :class:`ChannelBudget` values for a parameter set and policy."""

    def __init__(
        self,
        params: IonTrapParameters | None = None,
        *,
        protocol: str = "dejmps",
        placement: Optional[PurificationPlacement] = None,
        max_endpoint_rounds: int = 30,
    ) -> None:
        self.params = params or IonTrapParameters.default()
        self.placement = placement or endpoint_only()
        self.protocol_name = protocol
        self.protocol: PurificationProtocol = get_protocol(protocol, self.params)
        self.max_endpoint_rounds = max_endpoint_rounds
        self._distribution = ChainedTeleportationDistribution(
            self.params, protocol=protocol, placement=self.placement
        )

    # -- intermediate quantities -------------------------------------------------

    def raw_link_state(self) -> BellDiagonalState:
        """Raw virtual-wire pair state (generation plus one hop of movement)."""
        return self._distribution.raw_link_state()

    def link_state(self) -> BellDiagonalState:
        """Virtual-wire pair state after any mandated link purification."""
        return self._distribution.link_state()

    def link_cost(self) -> float:
        """Expected raw generated pairs per usable link pair."""
        return self._distribution.link_cost()

    def arrival_trajectory(self, hops: int) -> Tuple[BellDiagonalState, List[float]]:
        """Arrival state at the endpoints plus per-hop purification cost factors."""
        if hops < 0:
            raise ConfigurationError(f"hops must be non-negative, got {hops}")
        link = self.link_state()
        state = link
        per_hop_costs: List[float] = []
        overhead = self.params.router_overhead_cells
        for _ in range(max(hops - 1, 0)):
            state = state.movement_decay(self.params.errors.move_cell, overhead)
            state = teleport_state(state, link, self.params)
            if self.placement.per_hop_rounds:
                outcomes = self.protocol.iterate(state, self.placement.per_hop_rounds)
                cost = 1.0
                for outcome in outcomes:
                    cost *= 2.0 / outcome.success_probability
                per_hop_costs.append(cost)
                state = outcomes[-1].state
            else:
                per_hop_costs.append(1.0)
        state = state.movement_decay(
            self.params.errors.move_cell, 2 * self.params.endpoint_local_cells
        )
        return state, per_hop_costs

    # -- the budget ---------------------------------------------------------------

    def budget(self, hops: int) -> ChannelBudget:
        """Full resource budget for a channel of ``hops`` teleportation hops."""
        arrival, per_hop_costs = self.arrival_trajectory(hops)
        raw_link = self.raw_link_state()
        link = self.link_state()
        link_cost = self.link_cost()

        feasible = True
        endpoint_rounds = 0
        endpoint_pairs = 1.0
        if self.placement.endpoint_to_threshold:
            rounds = self.protocol.rounds_to_fidelity(
                arrival, self.params.threshold_fidelity, max_rounds=self.max_endpoint_rounds
            )
            if rounds is None:
                feasible = False
                endpoint_rounds = self.max_endpoint_rounds
                endpoint_pairs = float("inf")
            else:
                endpoint_rounds = rounds
                outcomes = self.protocol.iterate(arrival, rounds)
                endpoint_pairs = expected_pairs_for_rounds(outcomes)

        # Pairs that must *enter* the channel per delivered good pair: the
        # endpoint tree's expected inputs, inflated by every per-hop
        # purification stage they must survive on the way.
        hop_growth = 1.0
        for cost in per_hop_costs:
            hop_growth *= cost
        pairs_teleported = endpoint_pairs * hop_growth

        # transit(j): pairs performing hop j (j = 1 is the first swap away from
        # the generator).  Later hops carry fewer pairs because per-hop
        # purification has already consumed some.
        teleport_operations = 0.0
        suffix = 1.0
        for cost in reversed(per_hop_costs):
            suffix *= cost
            teleport_operations += endpoint_pairs * suffix
        if not per_hop_costs:
            teleport_operations = endpoint_pairs * max(hops - 1, 0)

        total_pairs = (
            float("inf")
            if math.isinf(endpoint_pairs)
            else link_cost * (pairs_teleported + teleport_operations)
        )

        latency = self._setup_latency(hops, endpoint_rounds)

        return ChannelBudget(
            hops=hops,
            placement=self.placement,
            protocol_name=self.protocol_name,
            feasible=feasible,
            link_error_raw=raw_link.error,
            link_error=link.error,
            link_cost=link_cost,
            arrival_error=arrival.error,
            endpoint_rounds=endpoint_rounds,
            endpoint_pairs=endpoint_pairs,
            pairs_teleported=pairs_teleported,
            teleport_operations=teleport_operations,
            total_pairs=total_pairs,
            setup_latency_us=latency,
            per_hop_costs=tuple(per_hop_costs),
        )

    def budget_or_none(self, hops: int) -> Optional[ChannelBudget]:
        """Like :meth:`budget` but returns None instead of raising on bad input."""
        try:
            return self.budget(hops)
        except (ConfigurationError, InfeasibleError):
            return None

    def sweep(self, hop_values: Sequence[int]) -> List[ChannelBudget]:
        """Budgets for a sequence of distances (Figure 10/11 series)."""
        return [self.budget(hops) for hops in hop_values]

    # -- helpers --------------------------------------------------------------------

    def _setup_latency(self, hops: int, endpoint_rounds: int) -> float:
        """Channel setup latency for one delivered pair (pipeline depth, not throughput)."""
        cells = float(hops * self.params.cells_per_hop)
        times = self.params.times
        latency = times.generate
        if self.placement.virtual_wire_rounds:
            latency += self.placement.virtual_wire_rounds * times.purify_round(
                self.params.cells_per_hop
            )
        if hops > 1:
            # All swaps fire in parallel; corrections ride the classical network.
            latency += times.teleport(0.0) + times.classical(cells)
            if self.placement.per_hop_rounds:
                latency += (
                    self.placement.per_hop_rounds
                    * (hops - 1)
                    * times.purify_round(self.params.cells_per_hop)
                )
        latency += times.ballistic(self.params.endpoint_local_cells)
        latency += endpoint_rounds * times.purify_round(cells)
        return latency


def compare_placements(
    hops: int,
    placements: Sequence[PurificationPlacement],
    params: IonTrapParameters | None = None,
    *,
    protocol: str = "dejmps",
) -> List[ChannelBudget]:
    """Budgets for several placement policies at one distance."""
    params = params or IonTrapParameters.default()
    budgets = []
    for placement in placements:
        model = EPRBudgetModel(params, protocol=protocol, placement=placement)
        budgets.append(model.budget(hops))
    return budgets
