"""The :class:`QuantumChannel` facade.

A quantum channel is the paper's unit of long-distance communication: a pair
of endpoints, a distance, a distribution methodology and a purification
placement.  Constructing the channel means distributing enough above-threshold
EPR pairs to the endpoints that a logical qubit can be teleported across.

:class:`QuantumChannel` glues together the distribution, budget and logical
encoding models and produces a single :class:`ChannelReport` with everything
the paper's six metrics need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..physics.parameters import IonTrapParameters
from ..physics.teleportation import teleportation_fidelity, teleportation_time
from .budget import ChannelBudget, EPRBudgetModel
from .distribution import (
    BallisticDistribution,
    ChainedTeleportationDistribution,
    DistributionMethod,
    DistributionResult,
)
from .logical import STEANE_LEVEL_2, LogicalQubitEncoding
from .placement import PurificationPlacement, endpoint_only


@dataclass(frozen=True)
class ChannelReport:
    """Everything there is to know about one constructed channel."""

    hops: int
    distance_cells: float
    distribution_name: str
    placement: PurificationPlacement
    protocol_name: str
    encoding: LogicalQubitEncoding
    budget: ChannelBudget
    distribution: DistributionResult
    data_fidelity_in: float
    data_fidelity_out: float
    data_teleport_latency_us: float

    @property
    def feasible(self) -> bool:
        return self.budget.feasible

    @property
    def setup_latency_us(self) -> float:
        """Latency to establish the channel (distribute + purify one pair)."""
        return self.budget.setup_latency_us

    @property
    def pairs_per_logical_communication(self) -> float:
        """Raw EPR pairs that must transit the channel per logical qubit moved."""
        return self.budget.pairs_per_logical_communication(self.encoding)

    @property
    def total_pairs_per_logical_communication(self) -> float:
        """Total raw EPR pairs consumed per logical qubit moved."""
        return self.budget.total_pairs_per_logical_communication(self.encoding)

    @property
    def data_error_introduced(self) -> float:
        """Error added to the data qubit by the teleportation itself."""
        return self.data_fidelity_in - self.data_fidelity_out

    def describe(self) -> str:
        lines = [
            f"QuantumChannel over {self.hops} hops "
            f"({self.distance_cells:.0f} cells), {self.distribution_name} distribution, "
            f"{self.placement.label}, {self.protocol_name.upper()}",
            f"  feasible            : {self.feasible}",
            f"  arrival EPR error   : {self.budget.arrival_error:.3e}",
            f"  endpoint rounds     : {self.budget.endpoint_rounds}",
            f"  pairs teleported    : {self.budget.pairs_teleported:.3g} per good pair",
            f"  total pairs         : {self.budget.total_pairs:.3g} per good pair",
            f"  per logical comm    : {self.pairs_per_logical_communication:.3g} pairs "
            f"({self.encoding.physical_qubits} physical qubits)",
            f"  setup latency       : {self.setup_latency_us:.1f} us",
            f"  data fidelity out   : {self.data_fidelity_out:.8f}",
        ]
        return "\n".join(lines)


class QuantumChannel:
    """Build reliable quantum channels and report their cost.

    Parameters
    ----------
    hops:
        Path length in teleportation hops (T'-node to T'-node links).
    params:
        Ion-trap parameter bundle.
    distribution:
        ``"chained"`` (default, the paper's choice) or ``"ballistic"``.
    placement:
        Purification placement policy; default purifies only at the endpoints.
    protocol:
        Purification protocol name (``"dejmps"`` default, or ``"bbpssw"``).
    encoding:
        Logical qubit encoding used for per-communication accounting.
    """

    def __init__(
        self,
        hops: int,
        params: IonTrapParameters | None = None,
        *,
        distribution: str = "chained",
        placement: Optional[PurificationPlacement] = None,
        protocol: str = "dejmps",
        encoding: LogicalQubitEncoding = STEANE_LEVEL_2,
    ) -> None:
        if hops < 1:
            raise ConfigurationError(f"a channel needs at least 1 hop, got {hops}")
        self.hops = hops
        self.params = params or IonTrapParameters.default()
        self.placement = placement or endpoint_only()
        self.protocol_name = protocol
        self.encoding = encoding
        self.distribution_name = distribution
        self._distribution = self._build_distribution(distribution)
        self._budget_model = EPRBudgetModel(
            self.params, protocol=protocol, placement=self.placement
        )

    def _build_distribution(self, name: str) -> DistributionMethod:
        key = name.strip().lower()
        if key in ("chained", "chained_teleportation", "teleportation"):
            return ChainedTeleportationDistribution(
                self.params, protocol=self.protocol_name, placement=self.placement
            )
        if key == "ballistic":
            return BallisticDistribution(
                self.params, protocol=self.protocol_name, placement=self.placement
            )
        raise ConfigurationError(f"unknown distribution methodology {name!r}")

    @property
    def distance_cells(self) -> float:
        """Physical channel length in ballistic cells."""
        return float(self.hops * self.params.cells_per_hop)

    def build(self, data_fidelity_in: float = 1.0) -> ChannelReport:
        """Construct the channel and report its cost and delivered quality.

        ``data_fidelity_in`` is the fidelity of the data qubit before it is
        teleported through the channel; the report includes its fidelity after
        a single long-distance teleportation using an endpoint-purified pair.
        """
        budget = self._budget_model.budget(self.hops)
        distribution = self._distribution.distribute(self.hops)
        # The data qubit is teleported once, using a pair purified up to the
        # fault-tolerance threshold (or the arrival fidelity if endpoint
        # purification is disabled for an ablation).
        epr_fidelity = (
            max(self.params.threshold_fidelity, budget.arrival_fidelity)
            if self.placement.endpoint_to_threshold and budget.feasible
            else budget.arrival_fidelity
        )
        data_out = teleportation_fidelity(data_fidelity_in, epr_fidelity, self.params)
        data_latency = teleportation_time(self.distance_cells, self.params)
        return ChannelReport(
            hops=self.hops,
            distance_cells=self.distance_cells,
            distribution_name=self.distribution_name,
            placement=self.placement,
            protocol_name=self.protocol_name,
            encoding=self.encoding,
            budget=budget,
            distribution=distribution,
            data_fidelity_in=data_fidelity_in,
            data_fidelity_out=data_out,
            data_teleport_latency_us=data_latency,
        )
