"""The paper's six evaluation metrics (Section 3.3).

The paper evaluates EPR distribution mechanisms on: error rate, EPR pair
count, latency, quantum resource needs, classical control complexity and
runtime.  :func:`evaluate_channel_metrics` collects the first five from a
channel report (runtime is the simulator's output and is reported by
:mod:`repro.sim.results`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..physics.purification_tree import hardware_purifiers_for_tree
from .channel import ChannelReport


@dataclass(frozen=True)
class ChannelMetrics:
    """The paper's evaluation metrics for one channel."""

    #: Error (1 - fidelity) of EPR pairs delivered to the endpoints before
    #: endpoint purification.
    error_rate: float
    #: Raw EPR pairs that must transit the channel per logical communication.
    epr_pair_count: float
    #: Channel setup latency in microseconds.
    latency_us: float
    #: Quantum resource needs: hardware purifier units required at each
    #: endpoint (queue-purifier implementation) plus storage cells per router.
    endpoint_purifier_units: int
    router_storage_cells: int
    #: Classical control complexity: classical messages exchanged per
    #: delivered good pair (one ID packet per hop plus two bits per
    #: teleportation and one per purification round).
    classical_messages: float

    def describe(self) -> str:
        return (
            f"ChannelMetrics(error={self.error_rate:.3e}, "
            f"pairs/logical comm={self.epr_pair_count:.3g}, "
            f"latency={self.latency_us:.1f} us, "
            f"purifier units={self.endpoint_purifier_units}, "
            f"storage cells={self.router_storage_cells}, "
            f"classical msgs={self.classical_messages:.3g})"
        )


def evaluate_channel_metrics(
    report: ChannelReport,
    *,
    teleporters_per_node: int = 1,
) -> ChannelMetrics:
    """Evaluate the paper's metrics for a built channel."""
    budget = report.budget
    # Classical traffic: every transiting pair carries an ID packet per hop,
    # every teleportation sends two classical bits, and every purification
    # round exchanges one bit per endpoint.
    per_pair_messages = budget.teleport_operations * 3.0
    endpoint_rounds_messages = budget.endpoint_pairs * 2.0
    classical = (per_pair_messages + endpoint_rounds_messages) * report.encoding.physical_qubits
    return ChannelMetrics(
        error_rate=budget.arrival_error,
        epr_pair_count=report.pairs_per_logical_communication,
        latency_us=report.setup_latency_us,
        endpoint_purifier_units=hardware_purifiers_for_tree(budget.endpoint_rounds),
        router_storage_cells=4 * teleporters_per_node,
        classical_messages=classical,
    )
