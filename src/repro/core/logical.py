"""Logical qubit encodings and per-communication EPR requirements.

The paper uses concatenated Steane [[7,1,3]] codes: a level-``L`` logical
qubit is encoded in ``7**L`` physical qubits (level 2 = 49, level 3 = 343).
Moving a logical qubit through a teleportation channel therefore requires one
high-fidelity EPR pair per physical qubit, and each high-fidelity pair is the
survivor of a purification tree, so the number of raw EPR pairs that must be
distributed per logical communication is

    pairs = (2 ** purification_rounds) * (7 ** level)

For the simulated machine (level 2, depth-3 purification) this is the paper's
392 pairs (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LogicalQubitEncoding:
    """A concatenated error-correction encoding of one logical qubit.

    Attributes
    ----------
    name:
        Human-readable encoding name.
    physical_per_logical_base:
        Number of physical qubits per logical qubit at one level of encoding
        (7 for the Steane code, 9 for Shor's code, ...).
    level:
        Concatenation level.  Level 0 means an unencoded physical qubit.
    """

    name: str = "steane"
    physical_per_logical_base: int = 7
    level: int = 2

    def __post_init__(self) -> None:
        if self.physical_per_logical_base < 1:
            raise ConfigurationError(
                f"physical_per_logical_base must be >= 1, got {self.physical_per_logical_base}"
            )
        if self.level < 0:
            raise ConfigurationError(f"level must be non-negative, got {self.level}")

    @property
    def physical_qubits(self) -> int:
        """Physical qubits per logical qubit at this concatenation level."""
        return self.physical_per_logical_base ** self.level

    def data_teleports_per_communication(self) -> int:
        """Teleportations needed to move one logical qubit between endpoints."""
        return self.physical_qubits

    def describe(self) -> str:
        return (
            f"{self.name} level {self.level}: "
            f"{self.physical_qubits} physical qubits per logical qubit"
        )


#: Level-1 Steane encoding (7 physical qubits / logical qubit).
STEANE_LEVEL_1 = LogicalQubitEncoding(level=1)
#: Level-2 Steane encoding (49 physical qubits / logical qubit), the paper's
#: baseline for resource accounting.
STEANE_LEVEL_2 = LogicalQubitEncoding(level=2)
#: Level-3 Steane encoding (343 physical qubits / logical qubit).
STEANE_LEVEL_3 = LogicalQubitEncoding(level=3)


def pairs_per_logical_communication(
    purification_rounds: int,
    encoding: LogicalQubitEncoding = STEANE_LEVEL_2,
) -> int:
    """Raw EPR pairs that must reach the endpoints per logical communication.

    ``2 ** purification_rounds`` raw pairs are consumed per surviving
    high-fidelity pair (ignoring the small failure-probability overhead), and
    one surviving pair is needed per physical qubit teleported.

    >>> pairs_per_logical_communication(3)
    392
    """
    if purification_rounds < 0:
        raise ConfigurationError(
            f"purification_rounds must be non-negative, got {purification_rounds}"
        )
    return (2 ** purification_rounds) * encoding.physical_qubits


def expected_pairs_per_logical_communication(
    expected_pairs_per_good_pair: float,
    encoding: LogicalQubitEncoding = STEANE_LEVEL_2,
) -> float:
    """Like :func:`pairs_per_logical_communication` but with yield accounting.

    ``expected_pairs_per_good_pair`` comes from the purification tree model
    (:func:`repro.physics.purification_tree.expected_pairs_for_rounds`) and
    includes the probability of failed rounds, so it is slightly larger than
    ``2 ** rounds``.
    """
    if expected_pairs_per_good_pair < 1.0:
        raise ConfigurationError(
            "expected_pairs_per_good_pair must be >= 1, got "
            f"{expected_pairs_per_good_pair}"
        )
    return expected_pairs_per_good_pair * encoding.physical_qubits
