"""The paper's primary contribution: reliable quantum channels.

A *quantum channel* between two points of the datapath is established by
distributing high-fidelity EPR pairs to the endpoints and using them to
teleport data qubits.  This subpackage models the end-to-end construction of
such channels:

* :mod:`repro.core.logical` — logical qubit encodings and how many EPR pairs a
  logical communication needs (the 392 = 2**3 x 49 headline number).
* :mod:`repro.core.distribution` — the two EPR distribution methodologies
  (ballistic movement vs. chained teleportation, Figures 4 and 5).
* :mod:`repro.core.placement` — where purification is applied (endpoints only,
  virtual wires, or between every teleport).
* :mod:`repro.core.budget` — the EPR resource budget engine behind
  Figures 10, 11 and 12.
* :mod:`repro.core.channel` — the :class:`QuantumChannel` facade producing a
  single end-to-end report (fidelity, latency, budget, feasibility).
* :mod:`repro.core.crossover` — the ballistic/teleportation latency crossover
  that motivates the ~600-cell hop length.
* :mod:`repro.core.planner` — mapping endpoint pairs onto a mesh topology.
* :mod:`repro.core.metrics` — the paper's six evaluation metrics.
"""

from .logical import LogicalQubitEncoding, STEANE_LEVEL_1, STEANE_LEVEL_2, pairs_per_logical_communication
from .distribution import (
    BallisticDistribution,
    ChainedTeleportationDistribution,
    DistributionMethod,
    get_distribution,
)
from .placement import (
    PlacementScheme,
    PurificationPlacement,
    endpoint_only,
    between_teleports,
    virtual_wire,
    standard_schemes,
)
from .budget import ChannelBudget, EPRBudgetModel
from .channel import ChannelReport, QuantumChannel
from .crossover import crossover_distance_cells, latency_comparison
from .metrics import ChannelMetrics, evaluate_channel_metrics
from .planner import ChannelPlan, ChannelPlanner

__all__ = [
    "BallisticDistribution",
    "ChainedTeleportationDistribution",
    "ChannelBudget",
    "ChannelMetrics",
    "ChannelPlan",
    "ChannelPlanner",
    "ChannelReport",
    "DistributionMethod",
    "EPRBudgetModel",
    "LogicalQubitEncoding",
    "PlacementScheme",
    "PurificationPlacement",
    "QuantumChannel",
    "STEANE_LEVEL_1",
    "STEANE_LEVEL_2",
    "between_teleports",
    "crossover_distance_cells",
    "endpoint_only",
    "evaluate_channel_metrics",
    "get_distribution",
    "latency_comparison",
    "pairs_per_logical_communication",
    "standard_schemes",
    "virtual_wire",
]
