"""On-disk result cache keyed by parameter hash.

Sweep points are pure functions of their parameters, so their results can be
memoized across processes and runs.  Values are pickled to one file per key
under a cache directory; writes are atomic (temp file + rename) so a crashed
or parallel writer never leaves a truncated entry behind.  Corrupt entries
are treated as misses and discarded; transient I/O errors are misses that
leave the entry in place, and temp files leaked by killed writers are reaped
on init and by :meth:`ResultCache.clear`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import hashlib
import os
import pickle
import tempfile
import time
from typing import Any, Iterator, Optional

#: Bump when cached artefact layouts change incompatibly.  Version 2 fixed
#: the key-coercion collision where dict keys were canonicalised through
#: ``str(k)`` (so ``{1: x}`` and ``{"1": x}`` shared a slot); keys now carry
#: a type tag, which legitimately invalidates all version-1 entries.
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def _canonicalise_key(key: Any) -> Any:
    """Canonical form of a dict key: (type tag, canonical value).

    Coercing keys through ``str`` would make ``{1: x}`` and ``{"1": x}`` hash
    identically and serve each other's cached results; the type tag keeps
    equal-looking keys of different types in distinct slots (``bool`` vs
    ``int`` included, since their qualnames differ).
    """
    return ("key", type(key).__qualname__, _canonicalise(key))


def _canonicalise(value: Any) -> Any:
    """Reduce a parameter structure to a deterministic, hashable form."""
    if isinstance(value, dict):
        # Sort by the repr of the canonical (type-tagged) key: mixed-type key
        # sets would make direct tuple comparison raise, while reprs of
        # canonical forms are deterministic and totally ordered.
        items = sorted(
            ((_canonicalise_key(k), _canonicalise(v)) for k, v in value.items()),
            key=lambda kv: repr(kv[0]),
        )
        return ("dict", tuple(items))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonicalise(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonicalise(v)) for v in value)))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, _canonicalise(getattr(value, f.name))) for f in dataclasses.fields(value)
        )
        return ("dataclass", type(value).__qualname__, fields)
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    # Fall back to repr for anything else (enums, coordinates, ...); reprs in
    # this codebase are stable and value-based.
    return ("repr", type(value).__qualname__, repr(value))


def fingerprinted_files(package_root: Optional[str] = None) -> Iterator[str]:
    """Package-relative paths of every source file the fingerprint covers.

    Walks the live package directory, so *every* subpackage — including ones
    added after a cache was first populated, like ``repro.scenarios`` — is
    covered automatically; nothing enumerates package names that could go
    stale.  ``__pycache__`` and hidden directories are pruned.
    """
    package_root = package_root or _default_package_root()
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.relpath(os.path.join(dirpath, name), package_root)


def _default_package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _compute_fingerprint(root: str) -> str:
    digest = hashlib.sha256()
    for relpath in fingerprinted_files(root):
        digest.update(relpath.encode("utf-8"))
        with open(os.path.join(root, relpath), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def _default_fingerprint() -> str:
    return _compute_fingerprint(_default_package_root())


def source_fingerprint(package_root: Optional[str] = None) -> str:
    """Content hash of the ``repro`` package's source files.

    Cached results are only valid for the code that produced them, so the
    runner folds this into every cache key: editing any module under
    ``src/repro`` — the scenario spec schema included — invalidates all
    previously cached artefacts instead of silently serving stale ones.

    ``package_root`` exists for tests (and is recomputed on every call);
    production callers use the memoized default, the installed ``repro``
    package.
    """
    if package_root is None:
        return _default_fingerprint()
    return _compute_fingerprint(package_root)


def parameter_hash(params: Any) -> str:
    """Stable short hash of an arbitrary parameter structure."""
    canonical = repr((CACHE_SCHEMA_VERSION, _canonicalise(params)))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def default_cache_dir() -> str:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


#: Temp files from a crashed writer older than this are reaped on cache init.
#: Younger ones are left alone: they may belong to a live concurrent writer
#: whose ``os.replace`` has not landed yet.
STALE_TMP_AGE_S = 3600.0


class ResultCache:
    """A directory of pickled results, one file per parameter hash."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()
        os.makedirs(self.directory, exist_ok=True)
        self._reap_stale_tmp(max_age_s=STALE_TMP_AGE_S)

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        for name in os.listdir(self.directory):
            if name.endswith(".pkl"):
                yield name[: -len(".pkl")]

    def get(self, key: str, default: Any = None) -> Any:
        """Load a cached value; corrupt or missing entries return ``default``.

        Only genuine corruption (a truncated pickle, a stale class) deletes
        the entry.  Transient I/O failures — ``EACCES``, ``EMFILE``, a flaky
        network mount — are a plain miss that leaves the file in place, so a
        momentary fault never throws away a valid result.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return default
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError, IndexError):
            # A truncated or stale entry is a miss; drop it so the slot heals.
            with contextlib.suppress(OSError):
                os.remove(path)
            return default
        except OSError:
            return default

    def put(self, key: str, value: Any) -> str:
        """Atomically store a value; returns the entry's path."""
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(tmp_path)
            raise
        return path

    def clear(self) -> int:
        """Remove every entry and leftover temp file; returns the count."""
        removed = 0
        for key in list(self.keys()):
            with contextlib.suppress(OSError):
                os.remove(self.path_for(key))
                removed += 1
        return removed + self._reap_stale_tmp(max_age_s=0.0)

    def _reap_stale_tmp(self, *, max_age_s: float) -> int:
        """Remove ``*.tmp`` files older than ``max_age_s`` seconds.

        A writer killed between ``mkstemp`` and ``os.replace`` leaks its temp
        file forever (``keys()`` skips them, so ``clear()`` used to as well).
        Init sweeps only comfortably stale ones to avoid racing a live
        writer; ``clear()`` passes 0.0 to take everything.
        """
        removed = 0
        now = time.time()
        with contextlib.suppress(OSError):
            for name in os.listdir(self.directory):
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(self.directory, name)
                with contextlib.suppress(OSError):
                    if now - os.path.getmtime(path) >= max_age_s:
                        os.remove(path)
                        removed += 1
        return removed
