"""Sharded, restartable work queue with per-point fault isolation.

The execution core under :class:`~repro.runtime.runner.ExperimentRunner`:
tasks are split into shards, each shard runs on a fresh worker pool, and
every point's outcome — success, exception or timeout — comes back as a
structured :class:`PointOutcome` instead of an exception that would abort
the batch.  One poisoned grid point can no longer throw away its siblings'
results.

Semantics:

* **Fault isolation** — a worker exception is caught inside the worker and
  shipped back as an ``error`` outcome carrying the exception type, message
  and formatted traceback.
* **Timeout** — ``timeout_s`` bounds how long the queue waits for each
  point's result.  A point that exceeds it has its pool terminated (hung
  workers die with it), is recorded as a ``TimeoutError`` outcome, and the
  rest of the shard restarts on a fresh pool.
* **Bounded retry** — ``retries`` re-queues failed points (exceptions and
  timeouts alike) up to N extra attempts, at the back of the queue so a
  persistently failing point never starves healthy ones.
* **Sharding** — pools are created per shard (``shard_size`` tasks), so
  long sweeps run on periodically restarted workers and the streamed
  ``on_result`` callback (which the runner uses to journal completions)
  gets called at most a shard behind execution.

Execution is in-process when a single worker suffices and no timeout is
requested (keeping debuggers and single-core machines happy); a timeout
always forces a pool, because preempting an in-process call is not possible.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Deque, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Tasks per pool lifetime: each shard gets a fresh pool of workers.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class PointOutcome:
    """The structured result of executing one task (picklable)."""

    status: str  # "ok" | "error"
    value: Any = None
    error: Optional[dict] = None
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _error_record(exc: BaseException, *, tb: Optional[str]) -> dict:
    return {
        "type": type(exc).__qualname__,
        "message": str(exc),
        "traceback": tb,
    }


def _call_guarded(worker: Callable[[Any], Any], task: Any) -> PointOutcome:
    """Run one task, converting any exception into an error outcome.

    Module-level (and partial-applied over a module-level worker) so the
    multiprocessing pool can pickle it.  ``KeyboardInterrupt``/``SystemExit``
    are deliberately not caught: a user interrupt should stop the sweep.
    """
    started = time.perf_counter()
    try:
        value = worker(task)
    except Exception as exc:
        return PointOutcome(
            status="error",
            error=_error_record(exc, tb=traceback.format_exc()),
            elapsed_s=time.perf_counter() - started,
        )
    return PointOutcome(status="ok", value=value, elapsed_s=time.perf_counter() - started)


def _timeout_outcome(timeout_s: float) -> PointOutcome:
    return PointOutcome(
        status="error",
        error={
            "type": "TimeoutError",
            "message": f"point exceeded the {timeout_s:g}s per-point timeout",
            "traceback": None,
        },
        elapsed_s=timeout_s,
    )


#: (task index, task payload, attempt number starting at 1).
_QueueItem = Tuple[int, Any, int]


class ShardedWorkQueue:
    """Executes tasks through restartable worker pools, never raising per point."""

    def __init__(
        self,
        worker: Callable[[Any], Any],
        *,
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        shard_size: Optional[int] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if shard_size is not None and shard_size < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
        self.worker = worker
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.shard_size = shard_size or DEFAULT_SHARD_SIZE

    # -- sizing -------------------------------------------------------------------

    def _pool_size(self, task_count: int) -> int:
        if task_count < 1:
            return 1
        workers = self.workers or os.cpu_count() or 1
        return max(1, min(workers, task_count))

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        *,
        on_result: Optional[Callable[[int, PointOutcome], None]] = None,
    ) -> List[PointOutcome]:
        """Execute every task; outcomes come back in task order.

        ``on_result`` streams final outcomes (after retries are exhausted) as
        they land, in completion order — the runner journals from it.
        """
        outcomes: List[Optional[PointOutcome]] = [None] * len(tasks)
        pending: Deque[_QueueItem] = deque(
            (index, task, 1) for index, task in enumerate(tasks)
        )
        while pending:
            shard = [pending.popleft() for _ in range(min(self.shard_size, len(pending)))]
            for index, task, attempt, outcome in self._run_shard(shard):
                outcome = replace(outcome, attempts=attempt)
                if not outcome.ok and attempt <= self.retries:
                    # Back of the queue: healthy points drain first.
                    pending.append((index, task, attempt + 1))
                    continue
                outcomes[index] = outcome
                if on_result is not None:
                    on_result(index, outcome)
        return [outcome for outcome in outcomes if outcome is not None]

    def _run_shard(
        self, shard: List[_QueueItem]
    ) -> List[Tuple[int, Any, int, PointOutcome]]:
        """Run one shard, restarting the pool after any per-point timeout."""
        pool_size = self._pool_size(len(shard))
        if pool_size == 1 and self.timeout_s is None:
            # In-process: no pickling round-trip, debugger-friendly.  A
            # timeout always forces a pool because an in-process call cannot
            # be preempted.
            return [
                (index, task, attempt, _call_guarded(self.worker, task))
                for index, task, attempt in shard
            ]
        completed: List[Tuple[int, Any, int, PointOutcome]] = []
        remaining = list(shard)
        call = functools.partial(_call_guarded, self.worker)
        while remaining:
            pool_size = self._pool_size(len(remaining))
            timed_out_at: Optional[int] = None
            with multiprocessing.Pool(processes=pool_size) as pool:
                results = pool.imap(call, [task for _, task, _ in remaining])
                for position, (index, task, attempt) in enumerate(remaining):
                    try:
                        if self.timeout_s is not None:
                            outcome = results.next(self.timeout_s)
                        else:
                            outcome = next(results)
                    except multiprocessing.TimeoutError:
                        # Kill the hung worker with its pool; in-flight
                        # siblings restart on a fresh pool below (their
                        # attempt counts are untouched — they did not fail).
                        pool.terminate()
                        completed.append(
                            (index, task, attempt, _timeout_outcome(self.timeout_s or 0.0))
                        )
                        timed_out_at = position
                        break
                    completed.append((index, task, attempt, outcome))
            if timed_out_at is None:
                break
            remaining = remaining[timed_out_at + 1 :]
        return completed
