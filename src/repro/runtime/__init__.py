"""Execution runtime: parallel experiment running, caching and the CLI.

The analysis layer defines *what* each figure is; this package is *how* they
get executed at scale — an :class:`ExperimentRunner` that fans sweeps out
across a ``multiprocessing`` pool, a :class:`ResultCache` that memoizes every
point on disk under a parameter hash, and the ``python -m repro`` command-line
entry point built on both.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    default_cache_dir,
    fingerprinted_files,
    parameter_hash,
    source_fingerprint,
)
from .runner import ExperimentRunner, SweepPoint

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExperimentRunner",
    "ResultCache",
    "SweepPoint",
    "default_cache_dir",
    "fingerprinted_files",
    "parameter_hash",
    "source_fingerprint",
]
