"""Execution runtime: journaled sweeps, caching, fault isolation and the CLI.

The analysis layer defines *what* each figure is; this package is *how* they
get executed at scale — an :class:`ExperimentRunner` that fans sweeps out
across the sharded, restartable :class:`ShardedWorkQueue`, a
:class:`ResultCache` that memoizes points on disk under a parameter hash, a
:class:`SweepJournal` that makes long sweeps crash-resumable (one append-only
JSONL store per sweep), and the ``python -m repro`` command-line entry point
built on all three.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    default_cache_dir,
    fingerprinted_files,
    parameter_hash,
    source_fingerprint,
)
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalPoint,
    SweepJournal,
    journal_status,
    read_journal,
)
from .queue import PointOutcome, ShardedWorkQueue
from .runner import ExperimentRunner, SweepPoint

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "ExperimentRunner",
    "JournalPoint",
    "PointOutcome",
    "ResultCache",
    "ShardedWorkQueue",
    "SweepJournal",
    "SweepPoint",
    "default_cache_dir",
    "fingerprinted_files",
    "journal_status",
    "parameter_hash",
    "read_journal",
    "source_fingerprint",
]
