"""``python -m repro`` — reproduce the paper's figures and tables.

Subcommands
-----------

``list``
    Show every registered experiment with its kind and description.
``run [IDENTIFIER ...]``
    Regenerate specific artefacts (default: all light ones) and print them.
``report``
    Print the full reproduction report.

``run`` and ``report`` execute through :class:`repro.runtime.ExperimentRunner`,
so independent experiments run across a process pool and results are cached on
disk — a second invocation prints instantly.  ``--no-cache`` recomputes
without touching the cache, ``--force`` recomputes and refreshes it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from .runner import ExperimentRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of the ISCA 2006 "
        "quantum-interconnect paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    for name, help_text in (
        ("run", "regenerate one or more artefacts and print them"),
        ("report", "print the full reproduction report"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        if name == "run":
            sub.add_argument(
                "identifiers",
                nargs="*",
                metavar="IDENTIFIER",
                help="experiments to run (default: all light experiments)",
            )
        sub.add_argument(
            "--heavy",
            action="store_true",
            help="include heavy experiments (full contention sweeps)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="process-pool size (default: one per CPU, capped by task count)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="result cache directory (default: $REPRO_CACHE_DIR or ./.repro-cache)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute everything; do not read or write the cache",
        )
        sub.add_argument(
            "--force",
            action="store_true",
            help="recompute everything but refresh the cache with the results",
        )
        sub.add_argument(
            "--points",
            type=int,
            default=8,
            metavar="N",
            help="x-samples printed per figure series (default: 8)",
        )
    return parser


def _runner_from(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _cmd_list() -> int:
    from ..analysis.experiments import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        heavy = "  [heavy]" if experiment.heavy else ""
        print(f"{name:{width}s}  {experiment.kind:6s}  {experiment.description}{heavy}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from ..analysis.experiments import get_experiment
    from ..analysis.report import render_artifact

    identifiers: Optional[List[str]] = args.identifiers or None
    runner = _runner_from(args)
    results = runner.run(identifiers, include_heavy=args.heavy, force=args.force)
    for identifier, artifact in results.items():
        experiment = get_experiment(identifier)
        print(f"[{identifier}] {experiment.description}")
        print(render_artifact(artifact, max_points=args.points))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis.experiments import get_experiment
    from ..analysis.report import render_report

    runner = _runner_from(args)
    results = runner.run(include_heavy=args.heavy, force=args.force)
    pairs = [(get_experiment(identifier), artifact) for identifier, artifact in results.items()]
    print(render_report(pairs, max_points=args.points))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
