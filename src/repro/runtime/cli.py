"""``python -m repro`` — reproduce the paper's figures and tables.

Subcommands
-----------

``list``
    Show every registered experiment with its kind and description.
``backends``
    Show every registered transport backend with a one-line description.
``run [IDENTIFIER ...]``
    Regenerate specific artefacts (default: all light ones) and print them.
``report``
    Print the full reproduction report.
``scenarios list|run|sweep``
    The declarative scenario engine: list the catalog, run named or
    file-defined scenarios, or fan a topology x workload grid across the
    pool.  ``--backend NAME`` re-runs the selection on another transport
    granularity; ``--emit-bench out.json`` writes the machine-readable
    benchmark payload the CI perf trajectory records.
``verify run|record|diff|fidelity``
    The differential-verification harness (see :mod:`repro.verify.cli`):
    replay scenarios under both allocators and diff their dynamics,
    record/diff canonical golden traces under ``tests/golden/``, or hold the
    fluid and detailed backends' delivered channel fidelities to the
    documented tolerance.

``run``, ``report`` and the scenario commands execute through
:class:`repro.runtime.ExperimentRunner`, so independent experiments run
across a process pool and results are cached on disk — a second invocation
prints instantly.  ``--no-cache`` recomputes without touching the cache,
``--force`` recomputes and refreshes it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from .runner import ExperimentRunner


def _add_runner_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size (default: one per CPU, capped by task count)",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything; do not read or write the cache",
    )
    sub.add_argument(
        "--force",
        action="store_true",
        help="recompute everything but refresh the cache with the results",
    )


def _add_scenario_io_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON/YAML scenario file (single scenario, bundle or sweep)",
    )
    sub.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="run every selected scenario on this transport backend "
        "(see `python -m repro backends`; overrides runtime.backend)",
    )
    sub.add_argument(
        "--emit-bench",
        default=None,
        metavar="OUT",
        help="write the machine-readable benchmark payload to OUT (JSON)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of the ISCA 2006 "
        "quantum-interconnect paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    subparsers.add_parser(
        "backends", help="list the registered transport backends"
    )

    for name, help_text in (
        ("run", "regenerate one or more artefacts and print them"),
        ("report", "print the full reproduction report"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        if name == "run":
            sub.add_argument(
                "identifiers",
                nargs="*",
                metavar="IDENTIFIER",
                help="experiments to run (default: all light experiments)",
            )
        sub.add_argument(
            "--heavy",
            action="store_true",
            help="include heavy experiments (full contention sweeps)",
        )
        _add_runner_options(sub)
        sub.add_argument(
            "--points",
            type=int,
            default=8,
            metavar="N",
            help="x-samples printed per figure series (default: 8)",
        )

    scenarios = subparsers.add_parser(
        "scenarios", help="declarative scenario engine (list/run/sweep)"
    )
    scenario_subs = scenarios.add_subparsers(dest="scenario_command", required=True)

    sc_list = scenario_subs.add_parser(
        "list", help="list built-in (or file-defined) scenarios"
    )
    sc_list.add_argument(
        "--spec", default=None, metavar="FILE", help="list a scenario file instead"
    )

    sc_run = scenario_subs.add_parser(
        "run", help="run scenarios by name (catalog or --spec file)"
    )
    sc_run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="scenario names (default: every scenario the source defines)",
    )
    _add_scenario_io_options(sc_run)
    _add_runner_options(sc_run)

    sc_sweep = scenario_subs.add_parser(
        "sweep", help="fan a scenario grid across the process pool"
    )
    sc_sweep.add_argument(
        "--topologies",
        default=None,
        metavar="A,B",
        help="comma-separated fabric kinds for the built-in grid "
        "(default: mesh,ring,torus)",
    )
    sc_sweep.add_argument(
        "--workloads",
        default=None,
        metavar="X,Y",
        help="comma-separated workload kinds for the built-in grid "
        "(default: qft,permutation)",
    )
    _add_scenario_io_options(sc_sweep)
    _add_runner_options(sc_sweep)

    # Imported lazily (like the experiment/scenario handlers below) so bare
    # invocations never pay the simulation-stack import behind repro.verify.
    from ..lint.cli import add_lint_parser
    from ..verify.cli import add_verify_parser

    add_verify_parser(subparsers)
    add_lint_parser(subparsers)
    return parser


def _runner_from(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _cmd_list() -> int:
    from ..analysis.experiments import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        heavy = "  [heavy]" if experiment.heavy else ""
        print(f"{name:{width}s}  {experiment.kind:6s}  {experiment.description}{heavy}")
    return 0


def _cmd_backends() -> int:
    from ..sim.transport import backend_descriptions

    descriptions = backend_descriptions()
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        print(f"{name:{width}s}  {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from ..analysis.experiments import get_experiment
    from ..analysis.report import render_artifact

    identifiers: Optional[List[str]] = args.identifiers or None
    runner = _runner_from(args)
    results = runner.run(identifiers, include_heavy=args.heavy, force=args.force)
    for identifier, artifact in results.items():
        experiment = get_experiment(identifier)
        print(f"[{identifier}] {experiment.description}")
        print(render_artifact(artifact, max_points=args.points))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis.experiments import get_experiment
    from ..analysis.report import render_report

    runner = _runner_from(args)
    results = runner.run(include_heavy=args.heavy, force=args.force)
    pairs = [(get_experiment(identifier), artifact) for identifier, artifact in results.items()]
    print(render_report(pairs, max_points=args.points))
    return 0


# -- scenario commands --------------------------------------------------------------


def _require_specs(specs, source: str):
    if not specs:
        from ..errors import ScenarioError

        raise ScenarioError(f"{source} defines no scenarios")
    return specs


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from ..scenarios import select_scenarios

    specs = _require_specs(select_scenarios(spec_path=args.spec), args.spec or "the catalog")
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        description = spec.description or spec.label
        print(f"{spec.name:{width}s}  {spec.label}  --  {description}")
    return 0


def _execute_scenarios(specs, args: argparse.Namespace) -> int:
    """Fan specs across the pool, print the result table, emit the payload."""
    from ..scenarios import run_scenario
    from ..scenarios.bench import bench_payload, write_bench_file

    _require_specs(specs, "the scenario selection")
    if args.backend:
        specs = [spec.with_backend(args.backend) for spec in specs]
    runner = _runner_from(args)
    # Pool payloads are canonical (name/description stripped), so two
    # differently-named specs describing the same experiment share one cache
    # slot; each record is re-labelled with its caller-side identity below.
    points = runner.sweep_records(
        run_scenario, [{"spec": spec.canonical_dict()} for spec in specs], force=args.force
    )
    name_width = max(len(spec.name) for spec in specs)
    records = []
    for spec, point in zip(specs, points):
        record = {
            **point.result,
            "name": spec.name,
            "label": spec.label,
            "spec": spec.to_dict(),
            "cached": point.cached,
        }
        records.append(record)
        flag = "cache" if point.cached else f"{record['wall_time_s']:.2f}s"
        print(
            f"{spec.name:{name_width}s}  makespan={record['makespan_us']:14.3f} us  "
            f"channels={record['channel_count']:4d}  ops={record['operations']:4d}  "
            f"[{flag}]"
        )
    if args.emit_bench:
        payload = bench_payload(records)
        path = write_bench_file(args.emit_bench, payload)
        print(
            f"wrote {path}: {payload['scenario_count']} scenarios, "
            f"{payload['cache_hits']} cache hits, "
            f"{payload['computed_wall_time_s']:.2f}s computed"
        )
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from ..scenarios import select_scenarios

    return _execute_scenarios(select_scenarios(args.names or None, args.spec), args)


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    from ..errors import ScenarioError
    from ..scenarios import default_grid, load_scenario_file

    if args.spec:
        if args.topologies or args.workloads:
            raise ScenarioError(
                "--spec defines its own grid; it cannot be combined with "
                "--topologies/--workloads"
            )
        specs = load_scenario_file(args.spec)
    else:
        topologies = [t for t in (args.topologies or "").split(",") if t] or None
        workloads = [w for w in (args.workloads or "").split(",") if w] or None
        kwargs = {}
        if topologies:
            kwargs["topologies"] = topologies
        if workloads:
            kwargs["workloads"] = workloads
        specs = default_grid(**kwargs)
    return _execute_scenarios(specs, args)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        return _cmd_scenarios_list(args)
    if args.scenario_command == "run":
        return _cmd_scenarios_run(args)
    if args.scenario_command == "sweep":
        return _cmd_scenarios_sweep(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled scenario command {args.scenario_command!r}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "backends":
            return _cmd_backends()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "verify":
            from ..verify.cli import cmd_verify

            return cmd_verify(args)
        if args.command == "lint":
            from ..lint.cli import cmd_lint

            return cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
