"""``python -m repro`` — reproduce the paper's figures, tables and services.

The command surface is noun-verb:

``experiments list|run|report``
    The paper-artefact registry: list every registered experiment, regenerate
    specific artefacts, or print the full reproduction report.
``scenarios list|run|sweep``
    The declarative scenario engine: list the catalog, run named or
    file-defined scenarios, or fan a topology x workload grid across the
    pool.  ``--backend NAME`` re-runs the selection on another transport
    granularity; ``--emit-bench out.json`` writes the machine-readable
    benchmark payload the CI perf trajectory records.  Scenarios with a
    ``traffic`` section run in open-loop service mode and report steady-state
    metrics in place of batch counters.  ``--journal FILE`` makes the run
    crash-resumable (completed points stream into one JSONL store and are
    never recomputed on restart); ``--point-timeout``/``--retries`` bound a
    poisoned point's damage to its own structured error record; and
    ``--progress`` streams progress/ETA lines to stderr.
``sweep status``
    Inspect a sweep journal: how many points are recorded, failed or still
    missing, retry counts, and whether a crashed writer's truncated tail was
    found.
``serve``
    Run one open-loop service scenario (``--scenario`` catalog name or
    ``--spec`` file; a ``traffic`` section is required) and report offered
    vs. delivered load, completion-time p50/p99, per-tenant queue depths and
    drop rates.
``verify run|record|diff|fidelity|traffic``
    The differential-verification harness (see :mod:`repro.verify.cli`):
    replay scenarios under both allocators and diff their dynamics,
    record/diff canonical golden traces under ``tests/golden/``, or hold the
    fluid and detailed backends to the documented fidelity and traffic
    parity tolerances.
``lint``
    The determinism/contract static analysis pass.
``backends``
    List the registered transport backends.

Commands that print data accept one shared ``--format text|json`` option;
``json`` emits the machine-readable form of exactly what ``text`` shows.

The legacy top-level ``list``, ``run`` and ``report`` commands remain as
hidden deprecated aliases of ``experiments list|run|report``: they warn on
stderr and print byte-identical output on stdout.

``experiments`` and the scenario commands execute through
:class:`repro.runtime.ExperimentRunner`, so independent experiments run
across a process pool and results are cached on disk — a second invocation
prints instantly.  ``--no-cache`` recomputes without touching the cache,
``--force`` recomputes and refreshes it.

External code should not import this module (or :mod:`repro.runtime.runner`)
directly — :mod:`repro.api` is the stable programmatic surface.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from .runner import ExperimentRunner


def _add_runner_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size (default: one per CPU, capped by task count)",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything; do not read or write the cache",
    )
    sub.add_argument(
        "--force",
        action="store_true",
        help="recompute everything but refresh the cache with the results",
    )


def _add_format_option(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )


def _emit_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _add_sweep_execution_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="append completed points to this JSONL journal and resume from "
        "it on restart (one compact store per sweep; failed points retry)",
    )
    sub.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point timeout; a point that exceeds it becomes a "
        "structured error record instead of hanging the sweep",
    )
    sub.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts for failed points before recording the error "
        "(default: 0)",
    )
    sub.add_argument(
        "--progress",
        action="store_true",
        help="stream progress/ETA lines to stderr while the sweep runs",
    )


def _add_scenario_io_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON/YAML scenario file (single scenario, bundle or sweep)",
    )
    sub.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="run every selected scenario on this transport backend "
        "(see `python -m repro backends`; overrides runtime.backend)",
    )
    sub.add_argument(
        "--emit-bench",
        default=None,
        metavar="OUT",
        help="write the machine-readable benchmark payload to OUT (JSON)",
    )


def _add_experiment_run_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--heavy",
        action="store_true",
        help="include heavy experiments (full contention sweeps)",
    )
    _add_runner_options(sub)
    sub.add_argument(
        "--points",
        type=int,
        default=8,
        metavar="N",
        help="x-samples printed per figure series (default: 8)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of the ISCA 2006 "
        "quantum-interconnect paper.",
    )
    # The metavar pins the usage line to the public nouns; the deprecated
    # top-level aliases registered below stay callable but invisible.
    subparsers = parser.add_subparsers(
        dest="command",
        required=True,
        metavar="{backends,experiments,scenarios,sweep,serve,verify,lint}",
    )

    backends = subparsers.add_parser(
        "backends", help="list the registered transport backends"
    )
    _add_format_option(backends)

    experiments = subparsers.add_parser(
        "experiments", help="paper-artefact experiments (list/run/report)"
    )
    experiment_subs = experiments.add_subparsers(dest="experiment_command", required=True)
    ex_list = experiment_subs.add_parser("list", help="list the registered experiments")
    _add_format_option(ex_list)
    ex_run = experiment_subs.add_parser(
        "run", help="regenerate one or more artefacts and print them"
    )
    ex_run.add_argument(
        "identifiers",
        nargs="*",
        metavar="IDENTIFIER",
        help="experiments to run (default: all light experiments)",
    )
    _add_experiment_run_options(ex_run)
    ex_report = experiment_subs.add_parser(
        "report", help="print the full reproduction report"
    )
    _add_experiment_run_options(ex_report)

    # Legacy aliases (deprecated, hidden: no help= keeps them out of --help).
    # They accept exactly the options their pre-noun-verb forms accepted and
    # print byte-identical stdout; the deprecation warning goes to stderr.
    legacy_list = subparsers.add_parser("list")
    legacy_list.set_defaults(format="text")
    legacy_run = subparsers.add_parser("run")
    legacy_run.add_argument("identifiers", nargs="*", metavar="IDENTIFIER")
    _add_experiment_run_options(legacy_run)
    legacy_report = subparsers.add_parser("report")
    _add_experiment_run_options(legacy_report)

    scenarios = subparsers.add_parser(
        "scenarios", help="declarative scenario engine (list/run/sweep)"
    )
    scenario_subs = scenarios.add_subparsers(dest="scenario_command", required=True)

    sc_list = scenario_subs.add_parser(
        "list", help="list built-in (or file-defined) scenarios"
    )
    sc_list.add_argument(
        "--spec", default=None, metavar="FILE", help="list a scenario file instead"
    )
    _add_format_option(sc_list)

    sc_run = scenario_subs.add_parser(
        "run", help="run scenarios by name (catalog or --spec file)"
    )
    sc_run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="scenario names (default: every scenario the source defines)",
    )
    _add_scenario_io_options(sc_run)
    _add_runner_options(sc_run)
    _add_sweep_execution_options(sc_run)
    _add_format_option(sc_run)

    sc_sweep = scenario_subs.add_parser(
        "sweep", help="fan a scenario grid across the process pool"
    )
    sc_sweep.add_argument(
        "--topologies",
        default=None,
        metavar="A,B",
        help="comma-separated fabric kinds for the built-in grid "
        "(default: mesh,ring,torus)",
    )
    sc_sweep.add_argument(
        "--workloads",
        default=None,
        metavar="X,Y",
        help="comma-separated workload kinds for the built-in grid "
        "(default: qft,permutation)",
    )
    _add_scenario_io_options(sc_sweep)
    _add_runner_options(sc_sweep)
    _add_sweep_execution_options(sc_sweep)
    _add_format_option(sc_sweep)

    sweep = subparsers.add_parser(
        "sweep", help="sweep execution tools (journal status)"
    )
    sweep_subs = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_status = sweep_subs.add_parser(
        "status", help="summarise a sweep journal: completed/failed/missing points"
    )
    sweep_status.add_argument(
        "journal", metavar="JOURNAL", help="path to the sweep's JSONL journal"
    )
    _add_format_option(sweep_status)

    serve = subparsers.add_parser(
        "serve",
        help="run an open-loop service scenario and report steady-state metrics",
    )
    serve.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="built-in catalog scenario to serve (needs a traffic section)",
    )
    serve.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON/YAML scenario file to serve instead of a catalog entry",
    )
    serve.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="scenario to pick when --spec defines several",
    )
    serve.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="transport backend to serve on (fluid or detailed; "
        "overrides runtime.backend)",
    )
    serve.add_argument(
        "--emit-bench",
        default=None,
        metavar="OUT",
        help="write the machine-readable benchmark payload to OUT (JSON)",
    )
    _add_format_option(serve)

    # Imported lazily (like the experiment/scenario handlers below) so bare
    # invocations never pay the simulation-stack import behind repro.verify.
    from ..lint.cli import add_lint_parser
    from ..verify.cli import add_verify_parser

    add_verify_parser(subparsers)
    add_lint_parser(subparsers)
    return parser


def _runner_from(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _warn_deprecated(old: str, new: str) -> None:
    print(
        f"warning: `python -m repro {old}` is deprecated; "
        f"use `python -m repro {new}`",
        file=sys.stderr,
    )


# -- experiment commands ------------------------------------------------------------


def _cmd_experiments_list(args: argparse.Namespace) -> int:
    from ..analysis.experiments import EXPERIMENTS

    if getattr(args, "format", "text") == "json":
        _emit_json(
            [
                {
                    "name": name,
                    "kind": experiment.kind,
                    "description": experiment.description,
                    "heavy": experiment.heavy,
                }
                for name, experiment in EXPERIMENTS.items()
            ]
        )
        return 0
    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        heavy = "  [heavy]" if experiment.heavy else ""
        print(f"{name:{width}s}  {experiment.kind:6s}  {experiment.description}{heavy}")
    return 0


def _cmd_experiments_run(args: argparse.Namespace) -> int:
    from ..analysis.experiments import get_experiment
    from ..analysis.report import render_artifact

    identifiers: Optional[List[str]] = args.identifiers or None
    runner = _runner_from(args)
    results = runner.run(identifiers, include_heavy=args.heavy, force=args.force)
    for identifier, artifact in results.items():
        experiment = get_experiment(identifier)
        print(f"[{identifier}] {experiment.description}")
        print(render_artifact(artifact, max_points=args.points))
        print()
    return 0


def _cmd_experiments_report(args: argparse.Namespace) -> int:
    from ..analysis.experiments import get_experiment
    from ..analysis.report import render_report

    runner = _runner_from(args)
    results = runner.run(include_heavy=args.heavy, force=args.force)
    pairs = [(get_experiment(identifier), artifact) for identifier, artifact in results.items()]
    print(render_report(pairs, max_points=args.points))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.experiment_command == "list":
        return _cmd_experiments_list(args)
    if args.experiment_command == "run":
        return _cmd_experiments_run(args)
    if args.experiment_command == "report":
        return _cmd_experiments_report(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled experiment command {args.experiment_command!r}"
    )


def _cmd_backends(args: argparse.Namespace) -> int:
    from ..sim.transport import backend_descriptions

    descriptions = backend_descriptions()
    if getattr(args, "format", "text") == "json":
        _emit_json(descriptions)
        return 0
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        print(f"{name:{width}s}  {description}")
    return 0


# -- scenario commands --------------------------------------------------------------


def _require_specs(specs, source: str):
    if not specs:
        from ..errors import ScenarioError

        raise ScenarioError(f"{source} defines no scenarios")
    return specs


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from ..scenarios import select_scenarios

    specs = _require_specs(select_scenarios(spec_path=args.spec), args.spec or "the catalog")
    if args.format == "json":
        _emit_json(
            [
                {
                    "name": spec.name,
                    "label": spec.label,
                    "description": spec.description,
                    "mode": "service" if spec.traffic is not None else "batch",
                }
                for spec in specs
            ]
        )
        return 0
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        description = spec.description or spec.label
        print(f"{spec.name:{width}s}  {spec.label}  --  {description}")
    return 0


def _scenario_table_line(name: str, record: Dict[str, Any], flag: str, width: int) -> str:
    if "offered" in record:  # service-mode flat record
        return (
            f"{name:{width}s}  makespan={record['makespan_us']:14.3f} us  "
            f"completed={record['completed']:3d}/{record['offered']:3d}  "
            f"p99={record['latency_p99_us']:10.1f} us  "
            f"drop={record['drop_rate']:6.1%}  [{flag}]"
        )
    return (
        f"{name:{width}s}  makespan={record['makespan_us']:14.3f} us  "
        f"channels={record['channel_count']:4d}  ops={record['operations']:4d}  "
        f"[{flag}]"
    )


def _execute_scenarios(specs, args: argparse.Namespace) -> int:
    """Fan specs across the pool, print the result table, emit the payload.

    A failed point (worker exception or per-point timeout) prints as an
    ``ERROR`` row and makes the exit code 1, but never aborts its siblings:
    every other scenario still completes, and with ``--journal`` the failure
    is durably recorded and retried on the next invocation.
    """
    from ..scenarios import run_record
    from ..scenarios.bench import bench_payload, write_bench_file

    _require_specs(specs, "the scenario selection")
    if args.backend:
        specs = [spec.with_backend(args.backend) for spec in specs]
    runner = _runner_from(args)
    # Pool payloads are canonical (name/description stripped), so two
    # differently-named specs describing the same experiment share one cache
    # slot; each record is re-labelled with its caller-side identity below.
    points = runner.sweep_records(
        run_record,
        [{"spec": spec.canonical_dict()} for spec in specs],
        force=args.force,
        journal=getattr(args, "journal", None),
        timeout_s=getattr(args, "point_timeout", None),
        retries=getattr(args, "retries", 0),
        progress=getattr(args, "progress", False),
    )
    name_width = max(len(spec.name) for spec in specs)
    records = []
    failed = 0
    as_json = getattr(args, "format", "text") == "json"
    for spec, point in zip(specs, points):
        if point.error is not None:
            failed += 1
            record = {
                "name": spec.name,
                "label": spec.label,
                "spec": spec.to_dict(),
                "cached": False,
                "journaled": point.journaled,
                "error": point.error,
                "attempts": point.attempts,
            }
            records.append(record)
            if not as_json:
                print(
                    f"{spec.name:{name_width}s}  ERROR "
                    f"{point.error.get('type', 'Error')}: "
                    f"{point.error.get('message', '')}  "
                    f"[{point.attempts} attempt(s)]"
                )
            continue
        record = {
            **point.result,
            "name": spec.name,
            "label": spec.label,
            "spec": spec.to_dict(),
            "cached": point.cached,
            "journaled": point.journaled,
        }
        records.append(record)
        if not as_json:
            if point.cached:
                flag = "cache"
            elif point.journaled:
                flag = "journal"
            else:
                flag = f"{record['wall_time_s']:.2f}s"
            print(_scenario_table_line(spec.name, record, flag, name_width))
    if as_json:
        _emit_json(records)
    if args.emit_bench:
        payload = bench_payload(records)
        path = write_bench_file(args.emit_bench, payload)
        print(
            f"wrote {path}: {payload['scenario_count']} scenarios, "
            f"{payload['cache_hits']} cache hits, "
            f"{payload['resume_hits']} journal hits, "
            f"{payload['computed_wall_time_s']:.2f}s computed",
            file=sys.stderr if as_json else sys.stdout,
        )
    return 1 if failed else 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from ..scenarios import select_scenarios

    return _execute_scenarios(select_scenarios(args.names or None, args.spec), args)


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    from ..errors import ScenarioError
    from ..scenarios import default_grid, load_scenario_file

    if args.spec:
        if args.topologies or args.workloads:
            raise ScenarioError(
                "--spec defines its own grid; it cannot be combined with "
                "--topologies/--workloads"
            )
        specs = load_scenario_file(args.spec)
    else:
        topologies = [t for t in (args.topologies or "").split(",") if t] or None
        workloads = [w for w in (args.workloads or "").split(",") if w] or None
        kwargs = {}
        if topologies:
            kwargs["topologies"] = topologies
        if workloads:
            kwargs["workloads"] = workloads
        specs = default_grid(**kwargs)
    return _execute_scenarios(specs, args)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        return _cmd_scenarios_list(args)
    if args.scenario_command == "run":
        return _cmd_scenarios_run(args)
    if args.scenario_command == "sweep":
        return _cmd_scenarios_sweep(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled scenario command {args.scenario_command!r}"
    )


# -- sweep tools --------------------------------------------------------------------


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from .journal import journal_status

    status = journal_status(args.journal)
    if args.format == "json":
        _emit_json(status)
        return 0
    meta = status["meta"]
    print(f"journal: {status['path']}")
    if meta.get("func"):
        print(f"sweep:   {meta['func']}  (source {meta.get('source', '?')})")
    print(
        f"points:  {status['ok']}/{status['total']} ok, "
        f"{status['error_count']} failed, {status['missing']} missing"
    )
    print(
        f"entries: {status['entries']} recorded "
        f"({status['retries']} retries), {status['elapsed_s']:.2f}s compute"
    )
    if status["truncated_bytes"]:
        print(
            f"note:    {status['truncated_bytes']} bytes of truncated tail "
            "(crashed writer); the partial point will be recomputed on resume"
        )
    for error in status["errors"][:5]:
        print(
            f"  failed {error['key']}: {error.get('type', 'Error')}: "
            f"{error.get('message', '')}  [{error['attempts']} attempt(s)]"
        )
    if len(status["errors"]) > 5:
        print(f"  ... and {len(status['errors']) - 5} more failures")
    if status["complete"]:
        print("state:   complete — a re-run recomputes nothing")
    elif status["missing"] or status["error_count"]:
        print("state:   resumable — a re-run executes only missing/failed points")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.sweep_command == "status":
        return _cmd_sweep_status(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled sweep command {args.sweep_command!r}"
    )


# -- serve --------------------------------------------------------------------------


def _render_service_text(result) -> str:
    view = result.service
    lines = [
        f"{result.name}  [{result.label}]  backend={result.backend}  "
        f"allocator={result.allocator}",
        f"  traffic horizon {view.duration_us:.1f} us; queue drained at "
        f"makespan {view.makespan_us:.3f} us",
        f"  requests: offered {view.offered} -> admitted {view.admitted}, "
        f"dropped {view.dropped} (drop rate {view.drop_rate:.1%}), "
        f"completed {view.completed}",
        f"  load: offered {view.offered_load_per_ms:.3f} ch/ms -> "
        f"delivered {view.delivered_load_per_ms:.3f} ch/ms",
        f"  completion time p50/p99: {view.latency_p50_us:.1f}/"
        f"{view.latency_p99_us:.1f} us; queue wait p50/p99: "
        f"{view.wait_p50_us:.1f}/{view.wait_p99_us:.1f} us",
        f"  max queue depth {view.max_queue_depth}",
    ]
    if view.utilisation:
        util = "  ".join(f"{k}={v:.4f}" for k, v in sorted(view.utilisation.items()))
        lines.append(f"  utilisation: {util}")
    for tenant in sorted(view.tenants):
        stats = view.tenants[tenant]
        lines.append(
            f"  tenant {tenant}: offered {stats['offered']}, "
            f"completed {stats['completed']}, dropped {stats['dropped']} "
            f"({stats['drop_rate']:.1%}), completion p50/p99 "
            f"{stats['latency_p50_us']:.1f}/{stats['latency_p99_us']:.1f} us, "
            f"max queue {stats['max_queue_depth']}"
        )
    if view.fidelity:
        parts = "  ".join(
            f"{key}={value:.6g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(view.fidelity.items())
        )
        lines.append(f"  fidelity: {parts}")
    lines.append(f"  wall time {result.wall_time_s:.2f}s")
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .. import api
    from ..errors import ScenarioError

    if bool(args.scenario) == bool(args.spec):
        raise ScenarioError("serve needs exactly one of --scenario NAME or --spec FILE")
    spec = api.load_scenario(args.scenario or args.spec, args.name)
    result = api.serve(spec, backend=args.backend)
    if args.format == "json":
        _emit_json(result.to_dict())
    else:
        print(_render_service_text(result))
    if args.emit_bench:
        from ..scenarios.bench import bench_payload, write_bench_file

        record = {**result.flat_record(), "cached": False}
        path = write_bench_file(args.emit_bench, bench_payload([record]))
        view = result.service
        print(
            f"wrote {path}: p99={view.latency_p99_us:.1f} us, "
            f"drop rate {view.drop_rate:.1%}",
            file=sys.stderr if args.format == "json" else sys.stdout,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            _warn_deprecated("list", "experiments list")
            return _cmd_experiments_list(args)
        if args.command == "run":
            _warn_deprecated("run", "experiments run")
            return _cmd_experiments_run(args)
        if args.command == "report":
            _warn_deprecated("report", "experiments report")
            return _cmd_experiments_report(args)
        if args.command == "experiments":
            return _cmd_experiments(args)
        if args.command == "backends":
            return _cmd_backends(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "verify":
            from ..verify.cli import cmd_verify

            return cmd_verify(args)
        if args.command == "lint":
            from ..lint.cli import cmd_lint

            return cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
