"""Parallel experiment execution with on-disk result caching.

:class:`ExperimentRunner` drives the figure/table registry in
:mod:`repro.analysis.experiments` and arbitrary parameter sweeps across a
``multiprocessing`` pool.  Every unit of work is addressed by a parameter
hash, so re-running a sweep only executes the points that are not already on
disk — regenerating all figures a second time is effectively free, and a
killed sweep resumes where it stopped.

Work is shipped to workers as (module, qualname, params) triples rather than
pickled callables, which keeps lambdas and bound methods out of the pool and
the tasks byte-cheap.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .cache import ResultCache, parameter_hash, source_fingerprint


@dataclass(frozen=True)
class SweepPoint:
    """One executed sweep point: its parameters, result and cache provenance."""

    params: Dict[str, Any]
    result: Any
    cache_key: str
    cached: bool


def _resolve(module_name: str, qualname: str) -> Callable[..., Any]:
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _execute_call(task: Tuple[str, str, Dict[str, Any]]) -> Any:
    """Pool worker: import the callable and run it (module-level, picklable)."""
    module_name, qualname, params = task
    return _resolve(module_name, qualname)(**params)


def _execute_experiment(identifier: str) -> Any:
    """Pool worker: run one registry experiment by identifier."""
    from ..analysis.experiments import get_experiment

    return get_experiment(identifier).run()


def _callable_path(func: Callable[..., Any]) -> Tuple[str, str]:
    """(module, qualname) of a function, rejecting unimportable callables."""
    module_name = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module_name or not qualname or "<" in qualname:
        raise ConfigurationError(
            f"sweep functions must be importable module-level callables, got {func!r}"
        )
    return module_name, qualname


class ExperimentRunner:
    """Runs experiments and sweeps over a process pool with caching.

    Parameters
    ----------
    workers:
        Pool size.  Defaults to ``min(len(tasks), cpu_count)``; with one
        worker (or one task) everything runs in-process, which keeps
        single-core machines and debuggers happy.
    cache_dir:
        Where results are stored.  ``None`` uses ``$REPRO_CACHE_DIR`` or
        ``./.repro-cache``.
    use_cache:
        Disable to always recompute and never write to disk.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache: Optional[ResultCache] = ResultCache(cache_dir) if use_cache else None

    # -- generic machinery ----------------------------------------------------------

    def _pool_size(self, task_count: int) -> int:
        if task_count <= 1:
            return 1
        workers = self.workers or os.cpu_count() or 1
        return max(1, min(workers, task_count))

    def _execute(self, worker: Callable[[Any], Any], tasks: List[Any]) -> List[Any]:
        """Run ``worker`` over ``tasks``, in-process or across a pool."""
        pool_size = self._pool_size(len(tasks))
        if pool_size == 1:
            return [worker(task) for task in tasks]
        with multiprocessing.Pool(processes=pool_size) as pool:
            return pool.map(worker, tasks)

    def _run_keyed(
        self,
        worker: Callable[[Any], Any],
        keyed_tasks: List[Tuple[str, Any]],
        *,
        force: bool,
    ) -> Tuple[Dict[str, Any], set]:
        """Run (cache_key, task) pairs, satisfying what it can from the cache.

        Returns the results by key plus the set of keys actually *served*
        from the cache — an existence probe is not enough, because a corrupt
        entry reads as a miss and gets recomputed.
        """
        results: Dict[str, Any] = {}
        hit_keys: set = set()
        misses: List[Tuple[str, Any]] = []
        missing_keys = set()
        sentinel = object()
        for key, task in keyed_tasks:
            if self.cache is not None and not force:
                hit = self.cache.get(key, sentinel)
                if hit is not sentinel:
                    results[key] = hit
                    hit_keys.add(key)
                    continue
            if key not in results and key not in missing_keys:
                missing_keys.add(key)
                misses.append((key, task))
        if misses:
            computed = self._execute(worker, [task for _, task in misses])
            for (key, _), value in zip(misses, computed):
                if self.cache is not None:
                    self.cache.put(key, value)
                results[key] = value
        return results, hit_keys

    # -- registry experiments ---------------------------------------------------------

    def run(
        self,
        identifiers: Optional[Sequence[str]] = None,
        *,
        include_heavy: bool = False,
        force: bool = False,
    ) -> Dict[str, Any]:
        """Run registry experiments; returns ``{identifier: artifact}``.

        ``identifiers=None`` runs every registered experiment (heavy ones only
        when ``include_heavy``).  Cached artefacts are returned without
        recomputation unless ``force`` is set.
        """
        from ..analysis.experiments import get_experiment, list_experiments

        if identifiers is None:
            identifiers = list_experiments(include_heavy=include_heavy)
        identifiers = list(identifiers)
        for identifier in identifiers:
            get_experiment(identifier)  # validate before spawning workers
        # Keys include the source fingerprint: editing the package invalidates
        # previously cached artefacts instead of silently serving stale ones.
        source = source_fingerprint()
        keyed = [
            (parameter_hash({"experiment": identifier, "source": source}), identifier)
            for identifier in identifiers
        ]
        by_key, _ = self._run_keyed(_execute_experiment, keyed, force=force)
        return {identifier: by_key[key] for key, identifier in keyed}

    # -- parameter sweeps ---------------------------------------------------------------

    def sweep(
        self,
        func: Callable[..., Any],
        param_grid: Sequence[Dict[str, Any]],
        *,
        force: bool = False,
    ) -> List[Any]:
        """Run ``func(**params)`` for every point of ``param_grid``.

        ``func`` must be an importable module-level callable (workers re-import
        it by name).  Results come back in grid order; each point is cached
        under the hash of (function, params).
        """
        return [point.result for point in self.sweep_records(func, param_grid, force=force)]

    def sweep_records(
        self,
        func: Callable[..., Any],
        param_grid: Sequence[Dict[str, Any]],
        *,
        force: bool = False,
    ) -> List[SweepPoint]:
        """Like :meth:`sweep`, but each point also reports its cache provenance.

        A point is ``cached`` when its value was actually served from the
        cache (a corrupt on-disk entry counts as a miss) — which is what lets
        the scenario CLI show (and the benchmark payload record) which grid
        points were free.
        """
        module_name, qualname = _callable_path(func)
        source = source_fingerprint()
        keyed = []
        for params in param_grid:
            key = parameter_hash(
                {"func": f"{module_name}:{qualname}", "params": params, "source": source}
            )
            keyed.append((key, (module_name, qualname, dict(params))))
        by_key, hit_keys = self._run_keyed(_execute_call, keyed, force=force)
        return [
            SweepPoint(
                params=dict(params),
                result=by_key[key],
                cache_key=key,
                cached=key in hit_keys,
            )
            for (key, _), params in zip(keyed, param_grid)
        ]
