"""Parallel experiment execution with caching, journaling and fault isolation.

:class:`ExperimentRunner` drives the figure/table registry in
:mod:`repro.analysis.experiments` and arbitrary parameter sweeps across the
sharded work queue in :mod:`repro.runtime.queue`.  Every unit of work is
addressed by a parameter hash, so re-running a sweep only executes the
points that are not already stored — regenerating all figures a second time
is effectively free, and a killed sweep resumes where it stopped.

Sweeps have two storage modes:

* **Cache mode** (default): each point is pickled under its hash in the
  :class:`~repro.runtime.cache.ResultCache`, exactly as before.
* **Journal mode** (``journal=path``): every completed point — structured
  failures included — is appended to one JSONL journal for the whole sweep
  (see :mod:`repro.runtime.journal`).  Restarting the same sweep loads the
  journal and computes only the missing points; failed points are retried.

Either way, a worker exception no longer kills the batch: it becomes a
structured :attr:`SweepPoint.error`, with an optional per-point timeout and
bounded retry, and progress/ETA reporting streamed to stderr.

Work is shipped to workers as (module, qualname, params) triples rather than
pickled callables, which keeps lambdas and bound methods out of the pool and
the tasks byte-cheap.
"""

from __future__ import annotations

import importlib
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from ..errors import ConfigurationError, SweepError
from .cache import ResultCache, parameter_hash, source_fingerprint
from .journal import JournalPoint, SweepJournal
from .queue import PointOutcome, ShardedWorkQueue


@dataclass(frozen=True)
class SweepPoint:
    """One executed sweep point: parameters, result (or error) and provenance.

    ``cached`` marks points served from the pickle cache, ``journaled``
    points loaded back from a sweep journal; ``error`` carries the
    structured failure record (type, message, traceback) when the point's
    final attempt failed, in which case ``result`` is ``None``.
    """

    params: Dict[str, Any]
    result: Any
    cache_key: str
    cached: bool
    journaled: bool = False
    error: Optional[Dict[str, Any]] = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


def _resolve(module_name: str, qualname: str) -> Callable[..., Any]:
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _execute_call(task: Tuple[str, str, Dict[str, Any]]) -> Any:
    """Pool worker: import the callable and run it (module-level, picklable)."""
    module_name, qualname, params = task
    return _resolve(module_name, qualname)(**params)


def _execute_experiment(identifier: str) -> Any:
    """Pool worker: run one registry experiment by identifier."""
    from ..analysis.experiments import get_experiment

    return get_experiment(identifier).run()


def _callable_path(func: Callable[..., Any]) -> Tuple[str, str]:
    """(module, qualname) of a function, rejecting unimportable callables."""
    module_name = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module_name or not qualname or "<" in qualname:
        raise ConfigurationError(
            f"sweep functions must be importable module-level callables, got {func!r}"
        )
    return module_name, qualname


class _Progress:
    """Throttled progress/ETA lines on stderr for long sweeps."""

    def __init__(
        self, total: int, preloaded: int, *, enabled: bool, stream: Optional[TextIO] = None
    ) -> None:
        self.total = total
        self.done = 0
        self.failed = 0
        self.enabled = enabled
        self.stream = stream or sys.stderr
        self.started = time.perf_counter()
        self._last_emit = 0.0
        if enabled and total:
            print(
                f"[sweep] {total} points to run ({preloaded} already stored)",
                file=self.stream,
            )

    def update(self, outcome: PointOutcome) -> None:
        self.done += 1
        if not outcome.ok:
            self.failed += 1
        if not self.enabled:
            return
        now = time.perf_counter()
        # Emit at most twice a second, plus always the final point.
        if self.done < self.total and now - self._last_emit < 0.5:
            return
        self._last_emit = now
        elapsed = now - self.started
        rate = self.done / elapsed if elapsed > 0 else 0.0
        eta = (self.total - self.done) / rate if rate > 0 else float("inf")
        eta_text = f"{eta:.0f}s" if eta != float("inf") else "?"
        failed = f", {self.failed} failed" if self.failed else ""
        print(
            f"[sweep] {self.done}/{self.total} done{failed}  "
            f"({rate:.1f} pts/s, eta {eta_text})",
            file=self.stream,
        )


@dataclass
class _Resolved:
    """Where one key's value came from, however it was obtained."""

    value: Any
    cached: bool = False
    journaled: bool = False
    error: Optional[Dict[str, Any]] = None
    attempts: int = 0


class ExperimentRunner:
    """Runs experiments and sweeps over restartable worker pools with caching.

    Parameters
    ----------
    workers:
        Pool size.  Defaults to ``min(len(tasks), cpu_count)``; with one
        worker (or one task) everything runs in-process, which keeps
        single-core machines and debuggers happy.
    cache_dir:
        Where results are stored.  ``None`` uses ``$REPRO_CACHE_DIR`` or
        ``./.repro-cache``.
    use_cache:
        Disable to always recompute and never write to disk.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache: Optional[ResultCache] = ResultCache(cache_dir) if use_cache else None

    # -- generic machinery ----------------------------------------------------------

    def _run_keyed(
        self,
        worker: Callable[[Any], Any],
        keyed_tasks: List[Tuple[str, Any]],
        *,
        force: bool,
        journal: Optional[str] = None,
        journal_meta: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        shard_size: Optional[int] = None,
        progress: bool = False,
    ) -> Dict[str, _Resolved]:
        """Run (cache_key, task) pairs, satisfying what it can from storage.

        With ``journal`` set, the journal is the sweep's single store: points
        already recorded ``ok`` are loaded instead of recomputed (failures
        are retried) and every completion is appended as it lands — the
        pickle cache is bypassed entirely.  Without it, hits come from (and
        misses go to) the :class:`ResultCache`, where an existence probe is
        not enough: a corrupt entry reads as a miss and gets recomputed.
        """
        results: Dict[str, _Resolved] = {}
        unique_keys: List[str] = []
        seen = set()
        for key, _ in keyed_tasks:
            if key not in seen:
                seen.add(key)
                unique_keys.append(key)

        journal_handle: Optional[SweepJournal] = None
        if journal is not None:
            journal_handle = SweepJournal(journal)
            sweep_id = parameter_hash(
                {"journal": journal_meta or {}, "keys": sorted(unique_keys)}
            )
            state = journal_handle.open(
                sweep_id=sweep_id, total=len(unique_keys), meta=journal_meta
            )
            if not force:
                for key, point in state.ok_points.items():
                    if key in seen:
                        results[key] = _Resolved(
                            point.result, journaled=True, attempts=point.attempts
                        )

        misses: List[Tuple[str, Any]] = []
        missing_keys = set()
        sentinel = object()
        for key, task in keyed_tasks:
            if key in results or key in missing_keys:
                continue
            if journal_handle is None and self.cache is not None and not force:
                hit = self.cache.get(key, sentinel)
                if hit is not sentinel:
                    results[key] = _Resolved(hit, cached=True)
                    continue
            missing_keys.add(key)
            misses.append((key, task))

        try:
            if misses:
                reporter = _Progress(len(misses), len(results), enabled=progress)
                queue = ShardedWorkQueue(
                    worker,
                    workers=self.workers,
                    timeout_s=timeout_s,
                    retries=retries,
                    shard_size=shard_size,
                )

                def _store(index: int, outcome: PointOutcome) -> None:
                    key = misses[index][0]
                    if journal_handle is not None:
                        journal_handle.append(
                            JournalPoint(
                                key=key,
                                index=index,
                                status=outcome.status,
                                result=outcome.value,
                                error=outcome.error,
                                attempts=outcome.attempts,
                                elapsed_s=outcome.elapsed_s,
                            )
                        )
                    elif self.cache is not None and outcome.ok:
                        # Failures are never cached: a transient fault must
                        # not poison the slot for the next run.
                        self.cache.put(key, outcome.value)
                    reporter.update(outcome)

                outcomes = queue.run([task for _, task in misses], on_result=_store)
                for (key, _), outcome in zip(misses, outcomes):
                    results[key] = _Resolved(
                        outcome.value,
                        error=outcome.error,
                        attempts=outcome.attempts,
                    )
        finally:
            if journal_handle is not None:
                journal_handle.close()
        return results

    @staticmethod
    def _raise_on_errors(results: Dict[str, _Resolved], what: str) -> None:
        failures = {
            key: resolved.error
            for key, resolved in results.items()
            if resolved.error is not None
        }
        if not failures:
            return
        key, first = next(iter(failures.items()))
        first = first or {}
        detail = f"{first.get('type', 'Error')}: {first.get('message', '')}"
        tb = first.get("traceback")
        raise SweepError(
            f"{len(failures)} of {len(results)} {what} failed; "
            f"first failure ({key}): {detail}"
            + (f"\n{tb}" if tb else ""),
            errors=failures,
        )

    # -- registry experiments ---------------------------------------------------------

    def run(
        self,
        identifiers: Optional[Sequence[str]] = None,
        *,
        include_heavy: bool = False,
        force: bool = False,
    ) -> Dict[str, Any]:
        """Run registry experiments; returns ``{identifier: artifact}``.

        ``identifiers=None`` runs every registered experiment (heavy ones only
        when ``include_heavy``).  Cached artefacts are returned without
        recomputation unless ``force`` is set.
        """
        from ..analysis.experiments import get_experiment, list_experiments

        if identifiers is None:
            identifiers = list_experiments(include_heavy=include_heavy)
        identifiers = list(identifiers)
        for identifier in identifiers:
            get_experiment(identifier)  # validate before spawning workers
        # Keys include the source fingerprint: editing the package invalidates
        # previously cached artefacts instead of silently serving stale ones.
        source = source_fingerprint()
        keyed = [
            (parameter_hash({"experiment": identifier, "source": source}), identifier)
            for identifier in identifiers
        ]
        by_key = self._run_keyed(_execute_experiment, keyed, force=force)
        self._raise_on_errors(by_key, "experiments")
        return {identifier: by_key[key].value for key, identifier in keyed}

    # -- parameter sweeps ---------------------------------------------------------------

    def sweep(
        self,
        func: Callable[..., Any],
        param_grid: Sequence[Dict[str, Any]],
        *,
        force: bool = False,
        journal: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        shard_size: Optional[int] = None,
        progress: bool = False,
    ) -> List[Any]:
        """Run ``func(**params)`` for every point of ``param_grid``.

        ``func`` must be an importable module-level callable (workers re-import
        it by name).  Results come back in grid order.  Fault isolation still
        applies — every healthy point completes (and is stored) first — but
        this results-only surface then raises :class:`SweepError` if any
        point ultimately failed; use :meth:`sweep_records` to consume
        structured per-point errors instead.
        """
        points = self.sweep_records(
            func,
            param_grid,
            force=force,
            journal=journal,
            timeout_s=timeout_s,
            retries=retries,
            shard_size=shard_size,
            progress=progress,
        )
        self._raise_on_errors(
            {
                point.cache_key: _Resolved(
                    point.result, error=point.error, attempts=point.attempts
                )
                for point in points
            },
            "sweep points",
        )
        return [point.result for point in points]

    def sweep_records(
        self,
        func: Callable[..., Any],
        param_grid: Sequence[Dict[str, Any]],
        *,
        force: bool = False,
        journal: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        shard_size: Optional[int] = None,
        progress: bool = False,
    ) -> List[SweepPoint]:
        """Like :meth:`sweep`, but each point also reports its provenance.

        A point is ``cached``/``journaled`` when its value was actually
        served from storage (a corrupt on-disk entry counts as a miss) —
        which is what lets the scenario CLI show (and the benchmark payload
        record) which grid points were free.  A failed point comes back with
        ``result=None`` and a structured ``error`` record instead of raising;
        with ``journal`` set the failure is durably recorded and retried on
        the next run.
        """
        module_name, qualname = _callable_path(func)
        source = source_fingerprint()
        keyed = []
        for params in param_grid:
            key = parameter_hash(
                {"func": f"{module_name}:{qualname}", "params": params, "source": source}
            )
            keyed.append((key, (module_name, qualname, dict(params))))
        by_key = self._run_keyed(
            _execute_call,
            keyed,
            force=force,
            journal=journal,
            journal_meta={"func": f"{module_name}:{qualname}", "source": source},
            timeout_s=timeout_s,
            retries=retries,
            shard_size=shard_size,
            progress=progress,
        )
        return [
            SweepPoint(
                params=dict(params),
                result=by_key[key].value,
                cache_key=key,
                cached=by_key[key].cached,
                journaled=by_key[key].journaled,
                error=by_key[key].error,
                attempts=by_key[key].attempts,
            )
            for (key, _), params in zip(keyed, param_grid)
        ]
