"""Append-only JSONL journal of sweep results: one compact store per sweep.

A journaled sweep writes every completed point — successes *and* structured
failures — as one JSON line to a single file, instead of one pickle per
spec.  That single file is the sweep's durable state: a killed run restarts
by loading the journal, skipping every point already recorded ``ok``, and
executing only what is missing (failed points are retried on resume, so a
transient worker crash heals itself).

Layout::

    {"kind": "header", "schema": 1, "sweep_id": ..., "total": N, "meta": {...}}
    {"kind": "point", "key": ..., "index": ..., "status": "ok", "result": ..., ...}
    {"kind": "point", "key": ..., "index": ..., "status": "error", "error": {...}, ...}

Crash tolerance is structural: a writer killed mid-line leaves a truncated
tail, which the reader drops (a partial line is a point that never finished)
and the appender truncates away before writing, so the file never
accumulates garbage between two valid lines.  The header's ``sweep_id`` pins
the journal to one exact sweep — same function, same source fingerprint,
same key set — and appending under a different identity is refused rather
than silently mixing two sweeps' points in one store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional

from ..errors import ConfigurationError

#: Bump when the journal line layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class JournalPoint:
    """One journaled sweep point (the decoded ``kind: point`` line)."""

    key: str
    index: int
    status: str  # "ok" | "error"
    result: Any = None
    error: Optional[Dict[str, Any]] = None
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_line(self) -> str:
        payload: Dict[str, Any] = {
            "kind": "point",
            "key": self.key,
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }
        if self.status == "ok":
            payload["result"] = self.result
        else:
            payload["error"] = self.error
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JournalPoint":
        return cls(
            key=str(payload["key"]),
            index=int(payload["index"]),
            status=str(payload["status"]),
            result=payload.get("result"),
            error=payload.get("error"),
            attempts=int(payload.get("attempts", 1)),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )


@dataclass
class JournalState:
    """Everything a resuming sweep needs to know about an existing journal."""

    header: Dict[str, Any]
    points: Dict[str, JournalPoint] = field(default_factory=dict)  # last entry per key
    line_count: int = 0
    truncated_bytes: int = 0  # partial tail dropped by the reader
    valid_length: int = 0  # byte offset of the end of the last complete line

    @property
    def ok_points(self) -> Dict[str, JournalPoint]:
        return {key: point for key, point in self.points.items() if point.ok}

    @property
    def error_points(self) -> Dict[str, JournalPoint]:
        return {key: point for key, point in self.points.items() if not point.ok}


def _read_state(path: str) -> JournalState:
    """Parse a journal file, tolerating (and measuring) a truncated tail.

    A line is only trusted when it parses as JSON *and* is newline-terminated
    — a parseable line without its terminator may still be a partial write of
    a longer record, so it is dropped along with anything else past the last
    complete line.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    state: Optional[JournalState] = None
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # unterminated tail: a crashed writer's partial line
        line = raw[offset:newline]
        try:
            payload = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break  # garbage mid-file ends the trusted prefix
        if state is None:
            if not isinstance(payload, dict) or payload.get("kind") != "header":
                raise ConfigurationError(
                    f"{path} is not a sweep journal (first line is not a header)"
                )
            schema = int(payload.get("schema", -1))
            if schema != JOURNAL_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"{path} has journal schema {schema}, "
                    f"expected {JOURNAL_SCHEMA_VERSION}"
                )
            state = JournalState(header=payload)
        elif isinstance(payload, dict) and payload.get("kind") == "point":
            point = JournalPoint.from_payload(payload)
            state.points[point.key] = point  # last write wins (retries)
            state.line_count += 1
        offset = newline + 1
        state.valid_length = offset
    if state is None:
        raise ConfigurationError(f"{path} is empty or has no complete header line")
    state.truncated_bytes = len(raw) - state.valid_length
    return state


class SweepJournal:
    """The append handle for one sweep's journal file.

    Use :meth:`open` to create-or-resume (it validates the header identity
    and repairs a truncated tail), :meth:`append` to record completed
    points, and :meth:`close` (or a ``with`` block) when done.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = None

    # -- lifecycle ----------------------------------------------------------------

    def open(
        self,
        *,
        sweep_id: str,
        total: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> JournalState:
        """Create the journal (writing its header) or resume an existing one.

        Resuming validates that the on-disk header carries the same
        ``sweep_id``: a journal recorded for a different function, source
        fingerprint or grid is refused, not silently appended to.  A
        truncated tail from a crashed writer is cut off before appending so
        the next line starts clean.
        """
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            state = _read_state(self.path)
            recorded = state.header.get("sweep_id")
            if recorded != sweep_id:
                raise ConfigurationError(
                    f"{self.path} was recorded for a different sweep "
                    f"(journal sweep_id {recorded!r}, this sweep {sweep_id!r}); "
                    "the function, package source or grid changed — delete the "
                    "journal or point the sweep at a fresh path"
                )
            if state.truncated_bytes:
                with open(self.path, "r+b") as handle:
                    handle.truncate(state.valid_length)
        else:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            header = {
                "kind": "header",
                "schema": JOURNAL_SCHEMA_VERSION,
                "sweep_id": sweep_id,
                "total": total,
                "meta": dict(meta or {}),
            }
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header, sort_keys=True) + "\n")
            state = JournalState(header=header, valid_length=os.path.getsize(self.path))
        self._handle = open(self.path, "a", encoding="utf-8")
        return state

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ------------------------------------------------------------------

    def append(self, point: JournalPoint) -> None:
        """Append one completed point and flush it to disk immediately.

        Results must be JSON-serializable — the journal is the sweep's
        durable store, and an unserializable result would otherwise be
        discovered only when resuming.
        """
        if self._handle is None:
            raise ConfigurationError("journal is not open for appending")
        try:
            line = point.to_line()
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"journaled sweeps need JSON-serializable results; point "
                f"{point.key} produced {type(point.result).__qualname__}: {exc}"
            ) from exc
        self._handle.write(line + "\n")
        self._handle.flush()


# -- reading without an append handle -------------------------------------------------


def read_journal(path: str) -> JournalState:
    """Load a journal's state (header, last entry per key, truncation info)."""
    if not os.path.exists(path):
        raise ConfigurationError(f"no sweep journal at {path!r}")
    return _read_state(path)


def iter_ok_results(path: str) -> Iterator[Any]:
    """Yield the result of every successfully completed point, in key order."""
    state = read_journal(path)
    for key in sorted(state.ok_points):
        yield state.ok_points[key].result


def journal_status(path: str) -> Dict[str, Any]:
    """Summarise a journal for humans and machines (`repro sweep status`).

    ``missing`` is how many of the sweep's points have no entry at all;
    ``errors`` counts points whose *latest* attempt failed (they will be
    retried on resume).
    """
    state = read_journal(path)
    total = int(state.header.get("total", 0))
    ok = len(state.ok_points)
    errors: List[Dict[str, Any]] = []
    for key in sorted(state.error_points):
        point = state.error_points[key]
        record = dict(point.error or {})
        record["key"] = key
        record["attempts"] = point.attempts
        errors.append(record)
    elapsed = sum(point.elapsed_s for point in state.points.values())
    return {
        "path": path,
        "schema": int(state.header.get("schema", JOURNAL_SCHEMA_VERSION)),
        "sweep_id": state.header.get("sweep_id"),
        "meta": dict(state.header.get("meta", {})),
        "total": total,
        "ok": ok,
        "error_count": len(errors),
        "missing": max(0, total - ok - len(errors)),
        "complete": total > 0 and ok == total,
        "entries": state.line_count,
        "retries": max(0, state.line_count - len(state.points)),
        "elapsed_s": elapsed,
        "truncated_bytes": state.truncated_bytes,
        "errors": errors,
    }
