"""``python -m repro verify`` — differential verification and golden traces.

Three subcommands over the same scenario selection (catalog names, a
``--spec`` file, or ``--all-catalog``):

``run``
    Replay each scenario under every requested allocator and diff makespans,
    per-operation completion orders, channel timelines and flow-rate
    (utilisation) timelines.  ``--backends`` additionally replays the
    scenario under both transport backends (fluid and detailed) and holds
    their makespans and op orders to the documented tolerances.  Exits
    non-zero on any divergence.
``record``
    (Re-)serialize each scenario's canonical trace to its golden fixture —
    the one deliberate command that moves the goldens.
``diff``
    Replay each scenario and compare its canonical trace line-by-line
    against the checked-in fixture.  Exits non-zero on any mismatch.
``fidelity``
    Replay each scenario under the fluid and detailed backends with fidelity
    accounting on (scenarios without a ``noise`` section get the documented
    parity noise applied) and hold the delivered per-channel fidelities to
    the documented tolerance.  Exits non-zero on any divergence.
``traffic``
    Replay each open-loop service scenario (one with a ``traffic`` section)
    under the fluid and detailed backends: the offered request streams must
    be bitwise identical, the completed request sets equal, the completion
    orders within the documented disorder tolerance and the delivered loads
    within the documented ratio.  Exits non-zero on any divergence.
``routing``
    Replay each scenario under every load-balancing policy: every opened
    channel must emit exactly one well-formed ``route`` record, the set of
    completed work must be identical across policies, ``least_loaded`` must
    not lose to ``ecmp`` on makespan beyond the documented tolerance, and
    the fluid and detailed backends must agree per policy within the
    documented tolerances.  Exits non-zero on any divergence.
"""

from __future__ import annotations

import argparse
from typing import TYPE_CHECKING, List

from ..errors import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.spec import ScenarioSpec

#: Mirrored from :data:`repro.scenarios.spec.ALLOCATOR_NAMES` at call time;
#: the parser needs the default string before the scenario stack is imported.
_DEFAULT_ALLOCATORS = "incremental,reference,vectorized"


def add_verify_parser(subparsers: argparse._SubParsersAction) -> None:
    """Wire the ``verify`` command group onto the top-level parser."""
    verify = subparsers.add_parser(
        "verify", help="differential verification and golden-trace regression"
    )
    verify_subs = verify.add_subparsers(dest="verify_command", required=True)

    def _common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "names",
            nargs="*",
            metavar="NAME",
            help="scenario names (default: the full built-in catalog)",
        )
        sub.add_argument(
            "--all-catalog",
            action="store_true",
            help="select every built-in catalog scenario explicitly",
        )
        sub.add_argument(
            "--spec",
            default=None,
            metavar="FILE",
            help="JSON/YAML scenario file to select scenarios from",
        )

    run = verify_subs.add_parser(
        "run", help="replay scenarios under multiple allocators and diff the dynamics"
    )
    _common(run)
    run.add_argument(
        "--allocators",
        default=_DEFAULT_ALLOCATORS,
        metavar="A,B",
        help=f"comma-separated allocators to diff (default: {_DEFAULT_ALLOCATORS})",
    )
    run.add_argument(
        "--backends",
        action="store_true",
        help="also replay each scenario under the fluid and detailed transport "
        "backends and diff makespans/op order within documented tolerances",
    )

    record = verify_subs.add_parser(
        "record", help="(re-)record golden trace fixtures — a deliberate act"
    )
    _common(record)
    record.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help="fixture directory (default: tests/golden)",
    )

    diff = verify_subs.add_parser(
        "diff", help="diff canonical traces against the checked-in golden fixtures"
    )
    _common(diff)
    diff.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help="fixture directory (default: tests/golden)",
    )

    fidelity = verify_subs.add_parser(
        "fidelity",
        help="fluid-vs-detailed delivered-fidelity parity check (noise applied)",
    )
    _common(fidelity)
    fidelity.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="TOL",
        help="absolute delivered-fidelity tolerance (default: the documented "
        "FIDELITY_ABS_TOL)",
    )

    traffic = verify_subs.add_parser(
        "traffic",
        help="fluid-vs-detailed parity on open-loop service traffic "
        "(delivered load and request completion order)",
    )
    _common(traffic)

    routing = verify_subs.add_parser(
        "routing",
        help="load-balancing policy equivalence (completion sets, makespan "
        "ordering, route records, fluid-vs-detailed parity per policy)",
    )
    _common(routing)
    routing.add_argument(
        "--policies",
        default=None,
        metavar="P,Q",
        help="comma-separated routing policies to replay (default: the "
        "documented ROUTING_POLICIES)",
    )


def _selected_specs(args: argparse.Namespace) -> List["ScenarioSpec"]:
    from ..scenarios import select_scenarios

    if args.all_catalog:
        if args.spec:
            raise ScenarioError("--all-catalog selects built-ins; it cannot follow --spec")
        return select_scenarios()
    return select_scenarios(args.names or None, args.spec)


def cmd_verify(args: argparse.Namespace) -> int:
    if args.verify_command == "run":
        return _cmd_run(args)
    if args.verify_command == "record":
        return _cmd_record(args)
    if args.verify_command == "diff":
        return _cmd_diff(args)
    if args.verify_command == "fidelity":
        return _cmd_fidelity(args)
    if args.verify_command == "traffic":
        return _cmd_traffic(args)
    if args.verify_command == "routing":
        return _cmd_routing(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled verify command {args.verify_command!r}"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from .harness import verify_backends, verify_scenario

    allocators = tuple(a for a in args.allocators.split(",") if a)
    specs = _selected_specs(args)
    width = max(len(spec.name) for spec in specs)
    failures = 0
    for spec in specs:
        verdict = verify_scenario(spec, allocators=allocators)
        divergences = list(verdict.divergences)
        if args.backends:
            divergences.extend(verify_backends(spec))
        status = "ok" if not divergences else f"DIVERGED ({len(divergences)})"
        print(
            f"{spec.name:{width}s}  makespan={verdict.makespan_us:14.3f} us  "
            f"ops={verdict.operations:4d}  channels={verdict.channels:4d}  "
            f"allocators={','.join(verdict.allocators)}  {status}"
        )
        for divergence in divergences:
            print(f"  {divergence}")
        failures += bool(divergences)
    total = len(specs)
    print(
        f"verified {total} scenario{'s' if total != 1 else ''}: "
        f"{total - failures} agreed, {failures} diverged"
    )
    return 1 if failures else 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .golden import record_golden

    specs = _selected_specs(args)
    for spec in specs:
        path = record_golden(spec, directory=args.golden_dir)
        print(f"recorded {spec.name} -> {path}")
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from .harness import FIDELITY_ABS_TOL, verify_fidelity

    tolerance = FIDELITY_ABS_TOL if args.tolerance is None else args.tolerance
    specs = _selected_specs(args)
    width = max(len(spec.name) for spec in specs)
    failures = 0
    for spec in specs:
        divergences = verify_fidelity(spec, tolerance=tolerance)
        status = "ok" if not divergences else f"DIVERGED ({len(divergences)})"
        print(f"{spec.name:{width}s}  fluid vs detailed delivered fidelity  {status}")
        for divergence in divergences:
            print(f"  {divergence}")
        failures += bool(divergences)
    total = len(specs)
    print(
        f"fidelity parity on {total} scenario{'s' if total != 1 else ''}: "
        f"{total - failures} agreed, {failures} diverged (tolerance {tolerance:g})"
    )
    return 1 if failures else 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from .harness import verify_traffic

    specs = _selected_specs(args)
    service_specs = [spec for spec in specs if spec.traffic is not None]
    if not service_specs:
        raise ScenarioError(
            "no selected scenario has a traffic section; the traffic parity "
            "check needs open-loop service scenarios"
        )
    skipped = len(specs) - len(service_specs)
    width = max(len(spec.name) for spec in service_specs)
    failures = 0
    for spec in service_specs:
        divergences = verify_traffic(spec)
        status = "ok" if not divergences else f"DIVERGED ({len(divergences)})"
        print(f"{spec.name:{width}s}  fluid vs detailed service traffic  {status}")
        for divergence in divergences:
            print(f"  {divergence}")
        failures += bool(divergences)
    total = len(service_specs)
    print(
        f"traffic parity on {total} scenario{'s' if total != 1 else ''}: "
        f"{total - failures} agreed, {failures} diverged"
        + (f" ({skipped} batch scenario{'s' if skipped != 1 else ''} skipped)" if skipped else "")
    )
    return 1 if failures else 0


def _cmd_routing(args: argparse.Namespace) -> int:
    from .harness import ROUTING_POLICIES, verify_routing

    policies = (
        ROUTING_POLICIES
        if args.policies is None
        else tuple(p for p in args.policies.split(",") if p)
    )
    specs = _selected_specs(args)
    width = max(len(spec.name) for spec in specs)
    failures = 0
    for spec in specs:
        divergences = verify_routing(spec, policies=policies)
        status = "ok" if not divergences else f"DIVERGED ({len(divergences)})"
        print(f"{spec.name:{width}s}  policies={','.join(policies)}  {status}")
        for divergence in divergences:
            print(f"  {divergence}")
        failures += bool(divergences)
    total = len(specs)
    print(
        f"routing equivalence on {total} scenario{'s' if total != 1 else ''}: "
        f"{total - failures} agreed, {failures} diverged"
    )
    return 1 if failures else 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .golden import diff_golden

    specs = _selected_specs(args)
    failures = 0
    for spec in specs:
        diff = diff_golden(spec, directory=args.golden_dir)
        print(diff.summary())
        failures += not diff.ok
    return 1 if failures else 0
