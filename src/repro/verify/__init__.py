"""Differential verification harness over the simulation trace bus.

Two allocators and two transport backends implement the same physics; this
package is how the repository proves they keep agreeing while the fast paths
are rewritten.  :mod:`~repro.verify.harness` replays scenarios and diffs
their dynamics; :mod:`~repro.verify.golden` pins canonical traces as JSONL
fixtures; ``python -m repro verify run|record|diff`` is the front end.

Exports resolve lazily (PEP 562): importing :mod:`repro.verify` — which the
CLI does just to build its argument parser — must not drag in the whole
simulation stack behind the harness.
"""

from typing import Any

#: Export name -> defining submodule.
_EXPORTS = {
    "DEFAULT_GOLDEN_DIR": "golden",
    "GoldenDiff": "golden",
    "canonical_trace_lines": "golden",
    "diff_golden": "golden",
    "golden_path": "golden",
    "record_golden": "golden",
    "BACKEND_MAKESPAN_RATIO": "harness",
    "BACKEND_ORDER_TOLERANCE": "harness",
    "DIFFERENTIAL_KINDS": "harness",
    "Divergence": "harness",
    "FIDELITY_ABS_TOL": "harness",
    "PARITY_NOISE": "harness",
    "ROUTING_MAKESPAN_TOL": "harness",
    "ROUTING_POLICIES": "harness",
    "ScenarioVerdict": "harness",
    "TracedRun": "harness",
    "compare_backend_runs": "harness",
    "compare_fidelity_runs": "harness",
    "compare_runs": "harness",
    "compare_traffic_runs": "harness",
    "traced_run": "harness",
    "verify_backends": "harness",
    "verify_fidelity": "harness",
    "verify_routing": "harness",
    "verify_scenario": "harness",
    "verify_traffic": "harness",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
