"""Golden-trace regression fixtures.

A golden fixture is the canonical JSONL trace of one scenario, checked into
``tests/golden/`` and re-derived on demand: ``record`` overwrites fixtures
deliberately, ``diff`` replays the scenario and compares line by line.  The
serialization is deterministic (see :mod:`repro.trace.serialize`), so a diff
is a pure string comparison and a mismatch pinpoints the first diverging
event — which makes "this refactor changed the physics" a one-line CI failure
instead of a silently shifted figure.

Fixtures open with the :class:`~repro.trace.RunStarted` header, so replaying
against a fixture recorded from a different machine/workload fails
immediately and explicitly rather than producing pages of event noise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Union

from ..errors import ScenarioError
from ..scenarios.spec import ScenarioSpec
from ..trace import CANONICAL_KINDS, records_to_lines, write_jsonl
from .harness import traced_run

def _default_golden_dir() -> str:
    """``tests/golden`` anchored at the repository root, not the CWD.

    The fixtures live next to the source tree (``src/repro/verify/`` is four
    levels below the root), so the verify CLI works from any directory; when
    the package runs from somewhere without that layout (e.g. installed),
    fall back to a CWD-relative path.
    """
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    if os.path.isdir(os.path.join(root, "tests")):
        return os.path.join(root, "tests", "golden")
    return os.path.join("tests", "golden")


#: Default fixture directory (repository-root ``tests/golden`` when present).
DEFAULT_GOLDEN_DIR = _default_golden_dir()

#: How many mismatching lines a diff reports before truncating.
MAX_REPORTED_MISMATCHES = 5


def golden_path(name: str, directory: Optional[str] = None) -> str:
    """Fixture path for scenario ``name`` (sweep slashes become ``__``)."""
    clean = (name or "").strip()
    if not clean:
        raise ScenarioError("a golden fixture needs a non-empty scenario name")
    filename = clean.replace(os.sep, "__").replace("/", "__") + ".jsonl"
    return os.path.join(directory or DEFAULT_GOLDEN_DIR, filename)


def canonical_trace_lines(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> List[str]:
    """The scenario's canonical trace, serialized to JSONL lines."""
    run = traced_run(spec, kinds=CANONICAL_KINDS)
    return records_to_lines(run.records)


def record_golden(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    directory: Optional[str] = None,
) -> str:
    """(Re-)record the golden fixture for ``spec``; returns the path."""
    run = traced_run(spec, kinds=CANONICAL_KINDS)
    return write_jsonl(golden_path(run.spec.name, directory), run.records)


@dataclass
class GoldenDiff:
    """Outcome of diffing one scenario against its checked-in fixture."""

    scenario: str
    path: str
    missing: bool = False
    golden_lines: int = 0
    current_lines: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing and not self.mismatches

    def summary(self) -> str:
        if self.missing:
            return (
                f"[{self.scenario}] no golden fixture at {self.path} "
                f"(run `python -m repro verify record {self.scenario}`)"
            )
        if self.ok:
            return f"[{self.scenario}] {self.golden_lines} trace lines match {self.path}"
        lines = [
            f"[{self.scenario}] trace diverges from {self.path} "
            f"({self.current_lines} current vs {self.golden_lines} golden lines):"
        ]
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


def diff_golden(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    directory: Optional[str] = None,
    max_mismatches: int = MAX_REPORTED_MISMATCHES,
) -> GoldenDiff:
    """Replay ``spec`` and diff its canonical trace against the fixture."""
    if not isinstance(spec, ScenarioSpec):
        spec = ScenarioSpec.from_dict(spec)
    path = golden_path(spec.name, directory)
    diff = GoldenDiff(scenario=spec.name, path=path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            golden = [line for line in handle.read().splitlines() if line.strip()]
    except OSError:
        diff.missing = True
        return diff
    current = canonical_trace_lines(spec)
    diff.golden_lines = len(golden)
    diff.current_lines = len(current)
    for index in range(max(len(golden), len(current))):
        want = golden[index] if index < len(golden) else "<missing>"
        got = current[index] if index < len(current) else "<missing>"
        if want != got:
            if len(diff.mismatches) >= max_mismatches:
                diff.mismatches.append("... (truncated)")
                break
            diff.mismatches.append(f"line {index + 1}: golden {want} != current {got}")
    return diff
