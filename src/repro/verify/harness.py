"""Differential verification: replay one scenario several ways, diff traces.

The paper's credibility rests on independent implementations of the same
physics agreeing: the incremental and reference max-min allocators must
produce *bitwise identical* dynamics, and the fluid flow backend must stay
consistent with the detailed per-pair backend.  This module turns that
agreement into a harness:

* :func:`traced_run` executes a scenario with a trace bus attached and
  returns the typed record stream next to the simulation result;
* :func:`verify_scenario` replays a scenario under every requested allocator
  and diffs four aspects — the makespan (bitwise), the per-operation
  completion order (exact), the per-channel open/close timeline (bitwise) and
  the per-flow rate timeline, i.e. the channel utilisation trajectory
  (bitwise); final per-class utilisation reports are compared to 1e-9
  relative (their summation *order* legitimately differs between allocators);
* :func:`verify_backends` cross-checks the fluid model against the detailed
  per-pair backend where that is tractable: for every distinct hop count the
  scenario exercises, the detailed simulator's steady-state raw-pair period
  must agree with the uncontended fluid prediction within a small factor —
  the two backends share no code above the engine, so agreement is evidence,
  not tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ScenarioError
from ..scenarios.run import build_machine, build_stream
from ..scenarios.spec import ALLOCATOR_NAMES, ScenarioSpec
from ..sim.channel_setup import DetailedChannelSetup
from ..sim.results import SimulationResult
from ..sim.simulator import CommunicationSimulator
from ..trace import (
    CANONICAL_KINDS,
    ChannelClosed,
    ChannelOpened,
    FlowRateChanged,
    OperationRetired,
    TraceBus,
    TraceRecord,
)

#: Kinds a differential run records: the canonical stream plus rate changes.
DIFFERENTIAL_KINDS = frozenset(CANONICAL_KINDS) | {FlowRateChanged.kind}

#: Relative tolerance for final utilisation reports (summation-order noise).
UTILISATION_REL_TOL = 1e-9

#: Acceptable ratio between detailed and fluid raw-pair periods.  The two
#: backends model different granularities (queueing and pipeline-fill against
#: a fluid steady state), so they agree to a small factor, not to the bit.
BACKEND_PERIOD_RATIO = 3.0


def _as_spec(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    return ScenarioSpec.from_dict(spec)


@dataclass
class TracedRun:
    """One simulated scenario with its trace attached."""

    spec: ScenarioSpec
    allocator: str
    result: SimulationResult
    records: List[TraceRecord]

    @property
    def makespan_us(self) -> float:
        return self.result.makespan_us

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [record for record in self.records if record.kind == kind]


def traced_run(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    allocator: Optional[str] = None,
    kinds: Optional[Sequence[str]] = None,
) -> TracedRun:
    """Run one scenario with a trace bus attached.

    ``allocator`` overrides the spec's runtime allocator; ``kinds`` limits
    which record kinds are kept (default: the differential set — canonical
    plus flow-rate changes).
    """
    spec = _as_spec(spec)
    allocator = allocator or spec.runtime.allocator
    machine = build_machine(spec)
    stream = build_stream(spec)
    bus = TraceBus(kinds=DIFFERENTIAL_KINDS if kinds is None else kinds)
    result = CommunicationSimulator(machine, allocator=allocator).run(
        stream, max_events=spec.runtime.max_events, trace=bus
    )
    return TracedRun(spec=spec, allocator=allocator, result=result, records=bus.records)


@dataclass(frozen=True)
class Divergence:
    """One disagreement between two runs of the same scenario."""

    scenario: str
    aspect: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.scenario}] {self.aspect}: {self.detail}"


@dataclass
class ScenarioVerdict:
    """Outcome of differentially verifying one scenario."""

    scenario: str
    allocators: Tuple[str, ...]
    makespan_us: float
    operations: int
    channels: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _op_completion_order(run: TracedRun) -> List[int]:
    return [record.op_index for record in run.of_kind(OperationRetired.kind)]


def compare_runs(a: TracedRun, b: TracedRun) -> List[Divergence]:
    """Diff two runs of the same scenario; empty list means agreement."""
    name = a.spec.name
    divergences: List[Divergence] = []

    if a.makespan_us != b.makespan_us:
        divergences.append(
            Divergence(
                name,
                "makespan",
                f"{a.allocator}={a.makespan_us!r} vs {b.allocator}={b.makespan_us!r}",
            )
        )

    order_a, order_b = _op_completion_order(a), _op_completion_order(b)
    if order_a != order_b:
        first = next(
            (i for i, (x, y) in enumerate(zip(order_a, order_b)) if x != y),
            min(len(order_a), len(order_b)),
        )
        divergences.append(
            Divergence(
                name,
                "op_order",
                f"completion orders differ at position {first} "
                f"({order_a[first:first + 3]} vs {order_b[first:first + 3]})",
            )
        )

    for kind, aspect in (
        (ChannelOpened.kind, "channel_open_timeline"),
        (ChannelClosed.kind, "channel_close_timeline"),
        (FlowRateChanged.kind, "rate_timeline"),
    ):
        recs_a, recs_b = a.of_kind(kind), b.of_kind(kind)
        if recs_a != recs_b:
            first = next(
                (i for i, (x, y) in enumerate(zip(recs_a, recs_b)) if x != y),
                min(len(recs_a), len(recs_b)),
            )
            got = recs_a[first] if first < len(recs_a) else "<missing>"
            want = recs_b[first] if first < len(recs_b) else "<missing>"
            divergences.append(
                Divergence(
                    name,
                    aspect,
                    f"{len(recs_a)} vs {len(recs_b)} records; first difference at "
                    f"index {first}: {got} vs {want}",
                )
            )

    util_a = a.result.resource_utilisation
    util_b = b.result.resource_utilisation
    if set(util_a) != set(util_b):
        divergences.append(
            Divergence(
                name,
                "utilisation",
                f"resource classes differ: {sorted(util_a)} vs {sorted(util_b)}",
            )
        )
    else:
        for kind in sorted(util_a):
            x, y = util_a[kind], util_b[kind]
            scale = max(abs(x), abs(y), 1.0)
            if abs(x - y) > UTILISATION_REL_TOL * scale:
                divergences.append(
                    Divergence(
                        name,
                        "utilisation",
                        f"{kind}: {a.allocator}={x!r} vs {b.allocator}={y!r}",
                    )
                )
    return divergences


def verify_scenario(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    allocators: Sequence[str] = ALLOCATOR_NAMES,
) -> ScenarioVerdict:
    """Replay ``spec`` under every allocator and diff the dynamics."""
    spec = _as_spec(spec)
    allocators = tuple(allocators)
    if len(allocators) < 2:
        raise ScenarioError(
            f"differential verification needs at least two allocators, got {list(allocators)}"
        )
    unknown = sorted(set(allocators) - set(ALLOCATOR_NAMES))
    if unknown:
        raise ScenarioError(
            f"unknown allocators {unknown}; available: {sorted(ALLOCATOR_NAMES)}"
        )
    baseline = traced_run(spec, allocator=allocators[0])
    divergences: List[Divergence] = []
    for other in allocators[1:]:
        divergences.extend(compare_runs(baseline, traced_run(spec, allocator=other)))
    return ScenarioVerdict(
        scenario=spec.name,
        allocators=allocators,
        makespan_us=baseline.makespan_us,
        operations=baseline.result.operation_count,
        channels=baseline.result.channel_count,
        divergences=divergences,
    )


# -- backend cross-check ------------------------------------------------------------


def verify_backends(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    max_hops: int = 16,
    period_ratio: float = BACKEND_PERIOD_RATIO,
) -> List[Divergence]:
    """Cross-check the fluid flow backend against the detailed backend.

    For every distinct hop count the scenario's operations exercise (up to
    ``max_hops``, which keeps the per-pair simulation tractable), simulate
    one channel with the detailed backend and require its steady-state
    raw-pair period to agree with the fluid model's uncontended prediction
    within ``period_ratio``.
    """
    spec = _as_spec(spec)
    machine = build_machine(spec)
    stream = build_stream(spec)

    from ..sim.control import ControlUnit

    control = ControlUnit(machine)
    control.reset()
    plans_by_hops: Dict[int, Any] = {}
    for op in stream.operations:
        for planned in control.plan_operation(op):
            if planned.plan is not None and planned.hops <= max_hops:
                plans_by_hops.setdefault(planned.hops, planned.plan)

    divergences: List[Divergence] = []
    # The pipeline window must never exceed one node's incoming storage: on a
    # long channel whose first teleporter is the bottleneck, every in-flight
    # pair can pile up at that single node.
    storage = machine.allocation.teleporter_spec.storage_cells
    for hops in sorted(plans_by_hops):
        plan = plans_by_hops[hops]
        window = min(2 * hops + 2, storage)
        detailed = DetailedChannelSetup(machine, plan, max_pairs_in_flight=window).run()
        if detailed.raw_pairs_injected <= 1:
            continue
        detailed_raw_period = detailed.setup_time_us / detailed.raw_pairs_injected
        profile = machine.flow_profile(hops)
        # Lone-flow fluid rate: bottleneck capacity over demand, taking the
        # per-resource work quantities the flow model itself would charge.
        per_pair_costs = [
            profile.generator_work / profile.pairs / machine.generator_bandwidth_per_link(),
        ]
        if hops > 1:
            per_pair_costs.append(
                profile.swap_work / profile.pairs / machine.teleporter_bandwidth_per_direction()
            )
        if profile.purifier_work > 0:
            per_pair_costs.append(
                profile.purifier_work / profile.pairs / machine.purifier_bandwidth_per_node()
            )
        fluid_raw_period = max(per_pair_costs)
        ratio = detailed_raw_period / fluid_raw_period
        if not (1.0 / period_ratio <= ratio <= period_ratio):
            divergences.append(
                Divergence(
                    spec.name,
                    "backend_throughput",
                    f"hops={hops}: detailed raw-pair period {detailed_raw_period:.3f} us "
                    f"vs fluid prediction {fluid_raw_period:.3f} us "
                    f"(ratio {ratio:.2f} outside 1/{period_ratio:g}..{period_ratio:g})",
                )
            )
    return divergences
