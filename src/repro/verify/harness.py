"""Differential verification: replay one scenario several ways, diff traces.

The paper's credibility rests on independent implementations of the same
physics agreeing: the incremental and reference max-min allocators must
produce *bitwise identical* dynamics, and the fluid flow backend must stay
consistent with the detailed per-pair backend.  This module turns that
agreement into a harness:

* :func:`traced_run` executes a scenario with a trace bus attached and
  returns the typed record stream next to the simulation result;
* :func:`verify_scenario` replays a scenario under every requested allocator
  and diffs four aspects — the makespan (bitwise), the per-operation
  completion order (exact), the per-channel open/close timeline (bitwise) and
  the per-flow rate timeline, i.e. the channel utilisation trajectory
  (bitwise); final per-class utilisation reports are compared to 1e-9
  relative (their summation *order* legitimately differs between allocators);
* :func:`verify_backends` cross-checks the fluid model against the detailed
  per-pair backend end to end: the *same* scenario is replayed under both
  transport granularities and their makespans and operation completion
  orders must agree within documented tolerances — the two backends share
  only the scheduler/control loop above the transport contract, so
  agreement is evidence, not tautology;
* :func:`verify_traffic` extends the cross-check to open-loop service mode:
  both backends are fed the *bitwise identical* request stream (the arrivals
  are pre-generated from the spec) and must agree on what was offered, what
  completed, the request completion order (within the documented disorder
  tolerance) and the delivered load (within the documented ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ScenarioError
from ..scenarios.run import build_machine, build_stream
from ..scenarios.spec import ALLOCATOR_NAMES, BACKEND_NAMES, ScenarioSpec
from ..sim.results import SimulationResult
from ..sim.simulator import CommunicationSimulator
from ..trace import (
    CANONICAL_KINDS,
    ChannelClosed,
    ChannelOpened,
    FlowRateChanged,
    OperationRetired,
    RequestArrived,
    RequestCompleted,
    RequestDropped,
    RouteChosen,
    TraceBus,
    TraceRecord,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.engine import ServiceResult

#: Kinds a differential run records: the canonical stream plus rate changes.
DIFFERENTIAL_KINDS = frozenset(CANONICAL_KINDS) | {FlowRateChanged.kind}

#: Relative tolerance for final utilisation reports (summation-order noise).
UTILISATION_REL_TOL = 1e-9

#: Documented makespan agreement between transport backends: the fluid and
#: detailed granularities model the same physics at different resolutions
#: (max-min fair rates against FIFO queueing and pipeline fill), so their
#: makespans agree to a small factor, not to the bit.  Catalog scenarios
#: currently land within ~1.3x; 1.5 leaves headroom without letting a broken
#: backend slip through.
BACKEND_MAKESPAN_RATIO = 1.5

#: Allowed disorder between the backends' operation completion sequences:
#: the normalized Kendall (pairwise-inversion) distance between the two
#: orders.  Queueing noise legitimately swaps near-simultaneous completions;
#: wholesale reordering means the backends disagree about the dynamics.
BACKEND_ORDER_TOLERANCE = 0.25

#: Documented agreement between the backends' delivered channel fidelities.
#: The fluid backend evaluates the purification recurrence analytically once
#: per distance; the detailed backend replays it per EPR pair through the
#: event-driven queue purifiers and averages the delivered pairs.  The
#: physics is the same exact Bell-diagonal algebra, so the only divergence
#: is float summation order in the per-pair average — parts in 1e15; 1e-6
#: leaves five orders of magnitude of headroom while still catching any
#: model change on either side.
FIDELITY_ABS_TOL = 1e-6

#: Noise section applied by :func:`verify_fidelity` to scenarios that do not
#: carry one: a slightly degraded EPR source with an explicit target, which
#: keeps every catalog scenario inside the purifying regime (purification
#: level >= 1) where both backends exercise their full fidelity paths.
PARITY_NOISE = {"base_fidelity": 0.999, "target_fidelity": 0.9999}

#: The policy axis :func:`verify_routing` sweeps (every registered balancer).
ROUTING_POLICIES = ("ecmp", "least_loaded", "adaptive")

#: Allowed relative excess of the least-loaded makespan over the ECMP one.
#: On congested workloads load-aware placement should win (and does, by a
#: wide margin, on the multi-path catalog scenarios); on uncongested or
#: single-path fabrics the two policies land on identical paths and the
#: makespans tie exactly.  The band only absorbs near-tie noise — a genuine
#: inversion means the load view or the policy is broken.
ROUTING_MAKESPAN_TOL = 0.05


def _as_spec(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    return ScenarioSpec.from_dict(spec)


@dataclass
class TracedRun:
    """One simulated scenario with its trace attached.

    ``result`` is a :class:`~repro.sim.results.SimulationResult` for batch
    scenarios and a :class:`~repro.service.engine.ServiceResult` for service
    scenarios — the comparison helpers only touch the members the two share
    (``makespan_us``, ``channels``, ``resource_utilisation``, counts).
    """

    spec: ScenarioSpec
    allocator: str
    result: Union[SimulationResult, "ServiceResult"]
    records: List[TraceRecord]
    backend: str = "fluid"

    @property
    def makespan_us(self) -> float:
        return self.result.makespan_us

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [record for record in self.records if record.kind == kind]


def traced_run(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    allocator: Optional[str] = None,
    backend: Optional[str] = None,
    kinds: Optional[Sequence[str]] = None,
) -> TracedRun:
    """Run one scenario with a trace bus attached.

    ``allocator`` and ``backend`` override the spec's runtime choices;
    ``kinds`` limits which record kinds are kept (default: the differential
    set — canonical plus flow-rate changes).  A spec with a ``traffic``
    section runs through the open-loop service simulator; everything else
    runs the workload's instruction stream through the batch simulator.
    """
    spec = _as_spec(spec)
    allocator = allocator or spec.runtime.allocator
    backend = backend or spec.runtime.backend
    machine = build_machine(spec)
    bus = TraceBus(kinds=DIFFERENTIAL_KINDS if kinds is None else kinds)
    if spec.traffic is not None:
        from ..service import ServiceSimulator

        service_result = ServiceSimulator(machine, allocator=allocator, backend=backend).run(
            spec.traffic, trace=bus
        )
        return TracedRun(
            spec=spec,
            allocator=allocator,
            result=service_result,
            records=bus.records,
            backend=backend,
        )
    stream = build_stream(spec)
    result = CommunicationSimulator(machine, allocator=allocator, backend=backend).run(
        stream, max_events=spec.runtime.max_events, trace=bus
    )
    return TracedRun(
        spec=spec, allocator=allocator, result=result, records=bus.records, backend=backend
    )


@dataclass(frozen=True)
class Divergence:
    """One disagreement between two runs of the same scenario."""

    scenario: str
    aspect: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.scenario}] {self.aspect}: {self.detail}"


@dataclass
class ScenarioVerdict:
    """Outcome of differentially verifying one scenario."""

    scenario: str
    allocators: Tuple[str, ...]
    makespan_us: float
    operations: int
    channels: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _op_completion_order(run: TracedRun) -> List[int]:
    return [record.op_index for record in run.of_kind(OperationRetired.kind)]


def compare_runs(a: TracedRun, b: TracedRun) -> List[Divergence]:
    """Diff two runs of the same scenario; empty list means agreement."""
    name = a.spec.name
    divergences: List[Divergence] = []

    # lint-ok: FLT001 -- allocator parity is a *bitwise* contract: both allocators
    # run the same float program, so any difference at all is a divergence
    if a.makespan_us != b.makespan_us:
        divergences.append(
            Divergence(
                name,
                "makespan",
                f"{a.allocator}={a.makespan_us!r} vs {b.allocator}={b.makespan_us!r}",
            )
        )

    order_a, order_b = _op_completion_order(a), _op_completion_order(b)
    if order_a != order_b:
        first = next(
            (i for i, (x, y) in enumerate(zip(order_a, order_b)) if x != y),
            min(len(order_a), len(order_b)),
        )
        divergences.append(
            Divergence(
                name,
                "op_order",
                f"completion orders differ at position {first} "
                f"({order_a[first:first + 3]} vs {order_b[first:first + 3]})",
            )
        )

    for kind, aspect in (
        (ChannelOpened.kind, "channel_open_timeline"),
        (ChannelClosed.kind, "channel_close_timeline"),
        (FlowRateChanged.kind, "rate_timeline"),
        # Request lifecycles only exist on service runs; on batch runs both
        # sides are empty and the comparison is vacuously bitwise.
        (RequestArrived.kind, "request_arrival_timeline"),
        (RequestDropped.kind, "request_drop_timeline"),
        (RequestCompleted.kind, "request_completion_timeline"),
    ):
        recs_a, recs_b = a.of_kind(kind), b.of_kind(kind)
        if recs_a != recs_b:
            first = next(
                (i for i, (x, y) in enumerate(zip(recs_a, recs_b)) if x != y),
                min(len(recs_a), len(recs_b)),
            )
            got = recs_a[first] if first < len(recs_a) else "<missing>"
            want = recs_b[first] if first < len(recs_b) else "<missing>"
            divergences.append(
                Divergence(
                    name,
                    aspect,
                    f"{len(recs_a)} vs {len(recs_b)} records; first difference at "
                    f"index {first}: {got} vs {want}",
                )
            )

    util_a = a.result.resource_utilisation
    util_b = b.result.resource_utilisation
    if set(util_a) != set(util_b):
        divergences.append(
            Divergence(
                name,
                "utilisation",
                f"resource classes differ: {sorted(util_a)} vs {sorted(util_b)}",
            )
        )
    else:
        for kind in sorted(util_a):
            x, y = util_a[kind], util_b[kind]
            scale = max(abs(x), abs(y), 1.0)
            if abs(x - y) > UTILISATION_REL_TOL * scale:
                divergences.append(
                    Divergence(
                        name,
                        "utilisation",
                        f"{kind}: {a.allocator}={x!r} vs {b.allocator}={y!r}",
                    )
                )
    return divergences


def verify_scenario(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    allocators: Sequence[str] = ALLOCATOR_NAMES,
) -> ScenarioVerdict:
    """Replay ``spec`` under every allocator and diff the dynamics."""
    spec = _as_spec(spec)
    allocators = tuple(allocators)
    if len(allocators) < 2:
        raise ScenarioError(
            f"differential verification needs at least two allocators, got {list(allocators)}"
        )
    unknown = sorted(set(allocators) - set(ALLOCATOR_NAMES))
    if unknown:
        raise ScenarioError(
            f"unknown allocators {unknown}; available: {sorted(ALLOCATOR_NAMES)}"
        )
    baseline = traced_run(spec, allocator=allocators[0])
    divergences: List[Divergence] = []
    for other in allocators[1:]:
        divergences.extend(compare_runs(baseline, traced_run(spec, allocator=other)))
    return ScenarioVerdict(
        scenario=spec.name,
        allocators=allocators,
        makespan_us=baseline.makespan_us,
        operations=baseline.result.operation_count,
        channels=baseline.result.channel_count,
        divergences=divergences,
    )


# -- backend cross-check ------------------------------------------------------------


def _order_distance(a: List[int], b: List[int]) -> float:
    """Normalized Kendall distance: fraction of pairwise inversions (0..1)."""
    position = {op: index for index, op in enumerate(a)}
    sequence = [position[op] for op in b]
    n = len(sequence)
    if n < 2:
        return 0.0
    inversions = 0
    for i in range(n):
        left = sequence[i]
        for j in range(i + 1, n):
            if left > sequence[j]:
                inversions += 1
    return inversions / (n * (n - 1) / 2)


def compare_backend_runs(
    a: TracedRun,
    b: TracedRun,
    *,
    makespan_ratio: float = BACKEND_MAKESPAN_RATIO,
    order_tolerance: float = BACKEND_ORDER_TOLERANCE,
) -> List[Divergence]:
    """Diff two runs of one scenario on different backends, within tolerances.

    Unlike :func:`compare_runs` (which demands bitwise agreement between
    allocators of the *same* model), backends model different granularities:
    makespans must agree within ``makespan_ratio``, the operation/channel
    structure must match exactly, and the operation completion orders may
    differ by at most ``order_tolerance`` normalized pairwise inversions.
    """
    name = a.spec.name
    divergences: List[Divergence] = []

    if a.makespan_us <= 0 or b.makespan_us <= 0:
        divergences.append(
            Divergence(
                name,
                "backend_makespan",
                f"non-positive makespan: {a.backend}={a.makespan_us!r} "
                f"vs {b.backend}={b.makespan_us!r}",
            )
        )
        return divergences
    ratio = b.makespan_us / a.makespan_us
    if not (1.0 / makespan_ratio <= ratio <= makespan_ratio):
        divergences.append(
            Divergence(
                name,
                "backend_makespan",
                f"{a.backend}={a.makespan_us:.3f} us vs {b.backend}={b.makespan_us:.3f} us "
                f"(ratio {ratio:.3f} outside 1/{makespan_ratio:g}..{makespan_ratio:g})",
            )
        )

    order_a, order_b = _op_completion_order(a), _op_completion_order(b)
    if sorted(order_a) != sorted(order_b):
        divergences.append(
            Divergence(
                name,
                "backend_op_set",
                f"completed operations differ: {len(order_a)} ({a.backend}) "
                f"vs {len(order_b)} ({b.backend})",
            )
        )
    else:
        disorder = _order_distance(order_a, order_b)
        if disorder > order_tolerance:
            divergences.append(
                Divergence(
                    name,
                    "backend_op_order",
                    f"completion orders differ by {disorder:.3f} normalized inversions "
                    f"(tolerance {order_tolerance:g})",
                )
            )

    opens_a = len(a.of_kind(ChannelOpened.kind))
    opens_b = len(b.of_kind(ChannelOpened.kind))
    if opens_a != opens_b:
        divergences.append(
            Divergence(
                name,
                "backend_channels",
                f"channel counts differ: {opens_a} ({a.backend}) vs {opens_b} ({b.backend})",
            )
        )
    return divergences


def verify_backends(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    backends: Sequence[str] = BACKEND_NAMES,
    makespan_ratio: float = BACKEND_MAKESPAN_RATIO,
    order_tolerance: float = BACKEND_ORDER_TOLERANCE,
) -> List[Divergence]:
    """Replay ``spec`` under every backend and diff the runs pairwise.

    The first backend is the baseline; every other backend's makespan must
    agree within ``makespan_ratio`` and its operation completion order
    within ``order_tolerance`` (see :func:`compare_backend_runs`).  Works on
    any catalog or file-defined scenario the backends can execute.
    """
    spec = _as_spec(spec)
    backends = tuple(backends)
    if len(backends) < 2:
        raise ScenarioError(
            f"the backend cross-check needs at least two backends, got {list(backends)}"
        )
    unknown = sorted(set(backends) - set(BACKEND_NAMES))
    if unknown:
        raise ScenarioError(
            f"unknown backends {unknown}; available: {sorted(BACKEND_NAMES)}"
        )
    baseline = traced_run(spec, backend=backends[0])
    divergences: List[Divergence] = []
    for other in backends[1:]:
        divergences.extend(
            compare_backend_runs(
                baseline,
                traced_run(spec, backend=other),
                makespan_ratio=makespan_ratio,
                order_tolerance=order_tolerance,
            )
        )
    return divergences


# -- fidelity parity ----------------------------------------------------------------


def _fidelity_by_hops(run: TracedRun) -> Dict[int, List[float]]:
    """Delivered fidelities grouped by hop count (order-independent key).

    Flow ids are allocated in service order, which legitimately differs
    between backends, but a channel's delivered fidelity is a function of its
    distance alone — so hop count is the stable join key for parity.
    """
    grouped: Dict[int, List[float]] = {}
    for channel in run.result.channels:
        if channel.delivered_fidelity is not None:
            grouped.setdefault(channel.hops, []).append(channel.delivered_fidelity)
    return grouped


def compare_fidelity_runs(
    a: TracedRun,
    b: TracedRun,
    *,
    tolerance: float = FIDELITY_ABS_TOL,
) -> List[Divergence]:
    """Diff the delivered-fidelity accounting of two runs of one scenario.

    Every channel must carry a delivered fidelity on both runs, the two runs
    must service the same channel population per hop count, and the
    per-hop-count fidelity extremes must agree within ``tolerance``
    (analytical Werner algebra vs per-pair purification outcomes).
    """
    name = a.spec.name
    divergences: List[Divergence] = []
    for run in (a, b):
        untracked = sum(
            1 for channel in run.result.channels if channel.delivered_fidelity is None
        )
        if untracked:
            divergences.append(
                Divergence(
                    name,
                    "fidelity_missing",
                    f"{untracked}/{len(run.result.channels)} channels on "
                    f"{run.backend} carry no delivered fidelity",
                )
            )
    if divergences:
        return divergences
    by_hops_a, by_hops_b = _fidelity_by_hops(a), _fidelity_by_hops(b)
    if set(by_hops_a) != set(by_hops_b):
        divergences.append(
            Divergence(
                name,
                "fidelity_channels",
                f"hop populations differ: {sorted(by_hops_a)} ({a.backend}) "
                f"vs {sorted(by_hops_b)} ({b.backend})",
            )
        )
        return divergences
    for hops in sorted(by_hops_a):
        values_a, values_b = by_hops_a[hops], by_hops_b[hops]
        if len(values_a) != len(values_b):
            divergences.append(
                Divergence(
                    name,
                    "fidelity_channels",
                    f"{len(values_a)} vs {len(values_b)} channels at {hops} hops",
                )
            )
            continue
        for aspect, reduce in (("min", min), ("max", max)):
            x, y = reduce(values_a), reduce(values_b)
            if abs(x - y) > tolerance:
                divergences.append(
                    Divergence(
                        name,
                        "fidelity_value",
                        f"{aspect} delivered fidelity at {hops} hops: "
                        f"{a.backend}={x!r} vs {b.backend}={y!r} "
                        f"(|diff| {abs(x - y):.3e} > {tolerance:g})",
                    )
                )
    return divergences


def verify_fidelity(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    backends: Sequence[str] = BACKEND_NAMES,
    tolerance: float = FIDELITY_ABS_TOL,
    noise: Optional[Mapping[str, Any]] = None,
) -> List[Divergence]:
    """Fluid-vs-detailed fidelity parity for one scenario.

    The scenario is replayed under every backend with fidelity accounting on
    — scenarios without a ``noise`` section get :data:`PARITY_NOISE` (or the
    ``noise`` argument) applied — and the delivered per-channel fidelities
    must agree within ``tolerance`` (see :func:`compare_fidelity_runs`).
    """
    spec = _as_spec(spec)
    if noise is not None or spec.noise is None:
        spec = spec.with_noise(dict(noise) if noise is not None else dict(PARITY_NOISE))
    backends = tuple(backends)
    if len(backends) < 2:
        raise ScenarioError(
            f"the fidelity parity check needs at least two backends, got {list(backends)}"
        )
    unknown = sorted(set(backends) - set(BACKEND_NAMES))
    if unknown:
        raise ScenarioError(
            f"unknown backends {unknown}; available: {sorted(BACKEND_NAMES)}"
        )
    baseline = traced_run(spec, backend=backends[0])
    divergences: List[Divergence] = []
    for other in backends[1:]:
        divergences.extend(
            compare_fidelity_runs(
                baseline, traced_run(spec, backend=other), tolerance=tolerance
            )
        )
    return divergences


# -- routing-policy diff ------------------------------------------------------------


def _completion_identity(run: TracedRun) -> List[int]:
    """What the run completed, order-independent: op indices or request ids."""
    if run.spec.traffic is not None:
        return sorted(record.request_id for record in run.of_kind(RequestCompleted.kind))
    return sorted(record.op_index for record in run.of_kind(OperationRetired.kind))


def verify_routing(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    policies: Sequence[str] = ROUTING_POLICIES,
    backends: Sequence[str] = BACKEND_NAMES,
    makespan_tolerance: float = ROUTING_MAKESPAN_TOL,
    makespan_ratio: float = BACKEND_MAKESPAN_RATIO,
    order_tolerance: float = BACKEND_ORDER_TOLERANCE,
) -> List[Divergence]:
    """Diff load-balancing policies against each other on one scenario.

    The scenario is replayed once per policy (its ``network.routing`` section
    overridden; the rest of the spec untouched) and the runs must agree on
    *what* completed — path choice may reshape contention and therefore
    timing, but never the delivered computation:

    * every policy completes the identical operation (or, for service
      scenarios, request) set;
    * every channel open is preceded by exactly one ``route`` record naming
      the policy, and each record's candidate count covers the chosen path;
    * the least-loaded makespan never exceeds the ECMP one by more than
      ``makespan_tolerance`` (load-aware placement must not lose to
      oblivious hashing — they tie exactly on single-path fabrics);
    * per policy, the fluid and detailed backends agree within the standard
      cross-backend tolerances (:func:`compare_backend_runs` /
      :func:`compare_traffic_runs`): the load view is channel counts, which
      both granularities maintain identically, so a policy must not open a
      divergence the unbalanced backends do not already have.
    """
    spec = _as_spec(spec)
    name = spec.name
    policies = tuple(policies)
    if not policies:
        raise ScenarioError("the routing diff needs at least one policy")
    divergences: List[Divergence] = []
    runs: Dict[str, TracedRun] = {}
    for policy in policies:
        pspec = spec.with_network({"routing": {"policy": policy}})
        run = traced_run(pspec, backend=backends[0])
        runs[policy] = run

        routes = run.of_kind(RouteChosen.kind)
        opens = run.of_kind(ChannelOpened.kind)
        if len(routes) != len(opens):
            divergences.append(
                Divergence(
                    name,
                    "routing_records",
                    f"{policy}: {len(routes)} route records for {len(opens)} channel opens",
                )
            )
        bad = [r for r in routes if r.policy != policy or r.candidates < 1]
        if bad:
            divergences.append(
                Divergence(
                    name,
                    "routing_records",
                    f"{policy}: {len(bad)} route records malformed (first: {bad[0]})",
                )
            )

        if len(backends) > 1:
            compare = (
                compare_traffic_runs if spec.traffic is not None else compare_backend_runs
            )
            for other in backends[1:]:
                divergences.extend(
                    compare(
                        run,
                        traced_run(pspec, backend=other),
                        makespan_ratio=makespan_ratio,
                        order_tolerance=order_tolerance,
                    )
                )

    baseline_policy = policies[0]
    completed = _completion_identity(runs[baseline_policy])
    for policy in policies[1:]:
        other = _completion_identity(runs[policy])
        if other != completed:
            divergences.append(
                Divergence(
                    name,
                    "routing_completion_set",
                    f"{policy} completed {len(other)} items vs "
                    f"{len(completed)} under {baseline_policy}",
                )
            )

    if "ecmp" in runs and "least_loaded" in runs:
        ecmp_makespan = runs["ecmp"].makespan_us
        ll_makespan = runs["least_loaded"].makespan_us
        if ll_makespan > ecmp_makespan * (1.0 + makespan_tolerance):
            divergences.append(
                Divergence(
                    name,
                    "routing_makespan_order",
                    f"least_loaded={ll_makespan:.3f} us exceeds "
                    f"ecmp={ecmp_makespan:.3f} us by more than {makespan_tolerance:.0%}",
                )
            )
    return divergences


# -- traffic parity -----------------------------------------------------------------


def _request_completion_order(run: TracedRun) -> List[int]:
    return [record.request_id for record in run.of_kind(RequestCompleted.kind)]


def _delivered_load_per_ms(run: TracedRun) -> float:
    """Delivered channel-load, recomputed from the trace alone."""
    channels = sum(record.channels for record in run.of_kind(RequestCompleted.kind))
    if run.makespan_us <= 0:
        return 0.0
    return channels / run.makespan_us * 1000.0


def compare_traffic_runs(
    a: TracedRun,
    b: TracedRun,
    *,
    makespan_ratio: float = BACKEND_MAKESPAN_RATIO,
    order_tolerance: float = BACKEND_ORDER_TOLERANCE,
) -> List[Divergence]:
    """Diff two service runs of one scenario on different backends.

    The offered load is pre-generated from the spec, so the arrival record
    streams must be *bitwise identical* — any difference means the backends
    were not fed the same traffic and the rest of the comparison is
    meaningless.  Given identical offers, the two backends must drop and
    complete the same request populations, complete them in nearly the same
    order (``order_tolerance`` normalized pairwise inversions) and deliver
    load at rates whose ratio stays within ``makespan_ratio``.
    """
    name = a.spec.name
    divergences: List[Divergence] = []

    arrivals_a, arrivals_b = a.of_kind(RequestArrived.kind), b.of_kind(RequestArrived.kind)
    if arrivals_a != arrivals_b:
        first = next(
            (i for i, (x, y) in enumerate(zip(arrivals_a, arrivals_b)) if x != y),
            min(len(arrivals_a), len(arrivals_b)),
        )
        got = arrivals_a[first] if first < len(arrivals_a) else "<missing>"
        want = arrivals_b[first] if first < len(arrivals_b) else "<missing>"
        divergences.append(
            Divergence(
                name,
                "traffic_arrivals",
                f"offered streams differ ({len(arrivals_a)} vs {len(arrivals_b)} "
                f"arrivals); first difference at index {first}: {got} vs {want}",
            )
        )
        return divergences

    drops_a = {record.request_id for record in a.of_kind(RequestDropped.kind)}
    drops_b = {record.request_id for record in b.of_kind(RequestDropped.kind)}
    if drops_a != drops_b:
        divergences.append(
            Divergence(
                name,
                "traffic_drop_set",
                f"dropped requests differ: {sorted(drops_a ^ drops_b)} "
                f"({len(drops_a)} on {a.backend} vs {len(drops_b)} on {b.backend})",
            )
        )

    order_a, order_b = _request_completion_order(a), _request_completion_order(b)
    if sorted(order_a) != sorted(order_b):
        divergences.append(
            Divergence(
                name,
                "traffic_completion_set",
                f"completed requests differ: {len(order_a)} ({a.backend}) "
                f"vs {len(order_b)} ({b.backend})",
            )
        )
    else:
        disorder = _order_distance(order_a, order_b)
        if disorder > order_tolerance:
            divergences.append(
                Divergence(
                    name,
                    "traffic_completion_order",
                    f"request completion orders differ by {disorder:.3f} normalized "
                    f"inversions (tolerance {order_tolerance:g})",
                )
            )

    load_a, load_b = _delivered_load_per_ms(a), _delivered_load_per_ms(b)
    if load_a <= 0 or load_b <= 0:
        divergences.append(
            Divergence(
                name,
                "traffic_delivered_load",
                f"non-positive delivered load: {a.backend}={load_a!r} "
                f"vs {b.backend}={load_b!r}",
            )
        )
    else:
        ratio = load_b / load_a
        if not (1.0 / makespan_ratio <= ratio <= makespan_ratio):
            divergences.append(
                Divergence(
                    name,
                    "traffic_delivered_load",
                    f"{a.backend}={load_a:.3f}/ms vs {b.backend}={load_b:.3f}/ms "
                    f"(ratio {ratio:.3f} outside 1/{makespan_ratio:g}..{makespan_ratio:g})",
                )
            )
    return divergences


def verify_traffic(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    backends: Sequence[str] = BACKEND_NAMES,
    makespan_ratio: float = BACKEND_MAKESPAN_RATIO,
    order_tolerance: float = BACKEND_ORDER_TOLERANCE,
) -> List[Divergence]:
    """Fluid-vs-detailed parity for one open-loop service scenario.

    Requires a spec with a ``traffic`` section.  The scenario is replayed
    under every backend with the identical pre-generated request stream and
    the runs are diffed pairwise against the first backend (see
    :func:`compare_traffic_runs`).
    """
    spec = _as_spec(spec)
    if spec.traffic is None:
        raise ScenarioError(
            f"scenario {spec.name!r} has no traffic section; "
            "the traffic parity check needs an open-loop service scenario"
        )
    backends = tuple(backends)
    if len(backends) < 2:
        raise ScenarioError(
            f"the traffic parity check needs at least two backends, got {list(backends)}"
        )
    unknown = sorted(set(backends) - set(BACKEND_NAMES))
    if unknown:
        raise ScenarioError(
            f"unknown backends {unknown}; available: {sorted(BACKEND_NAMES)}"
        )
    baseline = traced_run(spec, backend=backends[0])
    divergences: List[Divergence] = []
    for other in backends[1:]:
        divergences.extend(
            compare_traffic_runs(
                baseline,
                traced_run(spec, backend=other),
                makespan_ratio=makespan_ratio,
                order_tolerance=order_tolerance,
            )
        )
    return divergences
