"""Structured simulation observability: typed records on a trace bus.

The trace subsystem is how the simulators expose *what happened* without
perturbing *how fast it happens*: producers guard every emission with one
``is not None`` test, so an untraced run pays effectively nothing, and a
traced run yields a deterministic stream of typed records that serializes to
canonical JSONL.  :mod:`repro.verify` builds differential verification and
golden-trace regression on top of exactly this stream.
"""

from .bus import Probe, TraceBus
from .records import (
    CANONICAL_KINDS,
    RECORD_TYPES,
    REQUEST_KINDS,
    ChannelClosed,
    ChannelFidelity,
    ChannelOpened,
    EprPairGenerated,
    EventDispatched,
    FlowRateChanged,
    OperationIssued,
    OperationRetired,
    PurificationMilestone,
    RequestAdmitted,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    RequestDropped,
    RouteChosen,
    RunEnded,
    RunStarted,
    TeleportPerformed,
    TraceRecord,
    WarmStartApplied,
    machine_record,
    record_from_payload,
    warm_start_record_fields,
)
from .serialize import (
    line_to_record,
    read_jsonl,
    record_to_line,
    records_to_lines,
    trace_fingerprint,
    write_jsonl,
)

__all__ = [
    "CANONICAL_KINDS",
    "RECORD_TYPES",
    "REQUEST_KINDS",
    "ChannelClosed",
    "ChannelFidelity",
    "ChannelOpened",
    "EprPairGenerated",
    "EventDispatched",
    "FlowRateChanged",
    "OperationIssued",
    "OperationRetired",
    "Probe",
    "PurificationMilestone",
    "RequestAdmitted",
    "RequestArrived",
    "RequestCompleted",
    "RequestDispatched",
    "RequestDropped",
    "RouteChosen",
    "RunEnded",
    "RunStarted",
    "TeleportPerformed",
    "TraceBus",
    "TraceRecord",
    "WarmStartApplied",
    "line_to_record",
    "machine_record",
    "warm_start_record_fields",
    "read_jsonl",
    "record_from_payload",
    "record_to_line",
    "records_to_lines",
    "trace_fingerprint",
    "write_jsonl",
]
