"""The simulation trace bus: zero overhead when off, pluggable when on.

Producers (the engine, the flow transport, the detailed channel components)
hold an ``Optional[TraceBus]`` and guard every emission with a single
``if bus is not None`` test, so an untraced simulation pays one pointer
comparison per potential record — measured well under the 2% budget on the
flow-scaling benchmark.  When a bus is attached, every record is appended to
an in-memory list (optional) and fanned out to subscribed probes.

Probes are plain callables ``probe(record) -> None`` and may subscribe to a
subset of record kinds; a kind filter on the bus itself drops uninteresting
records before they are stored, which is what keeps canonical (golden) traces
compact even on detailed runs that emit per-pair milestones.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .records import CANONICAL_KINDS, RECORD_TYPES, TraceRecord

Probe = Callable[[TraceRecord], None]


def _validated_kinds(kinds: Optional[Iterable[str]]) -> Optional[FrozenSet[str]]:
    if kinds is None:
        return None
    kindset = frozenset(kinds)
    unknown = sorted(kindset - set(RECORD_TYPES))
    if unknown:
        raise ConfigurationError(
            f"unknown trace record kinds {unknown}; known: {sorted(RECORD_TYPES)}"
        )
    return kindset


class TraceBus:
    """Collects and dispatches typed trace records.

    Parameters
    ----------
    kinds:
        Record kinds to keep/dispatch; ``None`` keeps everything.  Filtering
        at the bus keeps high-volume kinds (per-event dispatch, per-pair
        milestones) out of memory when only the canonical stream is wanted.
    keep_records:
        Disable to run probes without accumulating the in-memory list (for
        streaming consumers on very long runs).
    """

    __slots__ = ("_kinds", "_keep", "_records", "_probes")

    def __init__(
        self,
        *,
        kinds: Optional[Iterable[str]] = None,
        keep_records: bool = True,
    ) -> None:
        self._kinds = _validated_kinds(kinds)
        self._keep = keep_records
        self._records: List[TraceRecord] = []
        self._probes: List[Tuple[Optional[FrozenSet[str]], Probe]] = []

    @classmethod
    def canonical(cls) -> "TraceBus":
        """A bus keeping only the golden-fixture (canonical) record kinds."""
        return cls(kinds=CANONICAL_KINDS)

    # -- consumption ----------------------------------------------------------------

    @property
    def records(self) -> List[TraceRecord]:
        """Every record accepted so far, in emission order."""
        return self._records

    def filtered(self, kinds: Iterable[str]) -> List[TraceRecord]:
        """Accepted records restricted to ``kinds`` (validated)."""
        kindset = _validated_kinds(kinds)
        assert kindset is not None  # ``kinds`` is non-optional here
        return [record for record in self._records if record.kind in kindset]

    def subscribe(self, probe: Probe, *, kinds: Optional[Iterable[str]] = None) -> Probe:
        """Attach a probe; returns it so the call can be used as a decorator."""
        if not callable(probe):
            raise ConfigurationError(f"a trace probe must be callable, got {probe!r}")
        self._probes.append((_validated_kinds(kinds), probe))
        return probe

    def clear(self) -> None:
        """Drop accumulated records (probes stay subscribed)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    # -- production -----------------------------------------------------------------

    def emit(self, record: TraceRecord) -> None:
        """Accept one record: store it (if kept) and fan out to probes."""
        if self._kinds is not None and record.kind not in self._kinds:
            return
        if self._keep:
            self._records.append(record)
        for kinds, probe in self._probes:
            if kinds is None or record.kind in kinds:
                probe(record)

    def wants(self, kind: str) -> bool:
        """Whether a record of ``kind`` would be accepted (producer fast path)."""
        return self._kinds is None or kind in self._kinds
