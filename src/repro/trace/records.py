"""Typed trace records emitted on the simulation trace bus.

Every observable milestone of a simulation — an event dispatch, a flow rate
change, a channel opening or closing, an EPR pair leaving a generator, a
purification round producing a good pair, an operation issuing or retiring —
is a frozen dataclass with a stable ``kind`` tag.  Records serialize to flat
JSON-safe payloads (:meth:`TraceRecord.to_payload`) and back
(:func:`record_from_payload`), and the round trip is exact: floats survive
bitwise because JSON's shortest-repr encoding round-trips Python floats.

The ``CANONICAL_KINDS`` subset is the compact, allocator-invariant event
stream the golden fixtures pin: run header/footer, operation issue/retire and
channel open/close.  High-volume kinds (per-event dispatch, per-pair
generation, rate changes) are traceable but excluded from goldens so fixtures
stay small and stable under performance refactors that preserve the physics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from ..errors import ConfigurationError

#: Payload key under which a record's kind tag travels.
KIND_KEY = "kind"


@dataclass(frozen=True)
class TraceRecord:
    """Base class: a timestamped, typed simulation milestone."""

    kind: ClassVar[str] = "record"

    t_us: float

    def to_payload(self) -> Dict[str, Any]:
        """Flat JSON-safe dict, ``kind`` first, fields in declaration order."""
        payload: Dict[str, Any] = {KIND_KEY: self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload


@dataclass(frozen=True)
class RunStarted(TraceRecord):
    """Header: the machine and workload a trace belongs to."""

    kind: ClassVar[str] = "run_start"

    machine: str
    workload: str
    width: int
    height: int
    topology: str
    layout: str
    allocation: str
    num_qubits: int
    operations: int


@dataclass(frozen=True)
class RunEnded(TraceRecord):
    """Footer: the headline result of the run."""

    kind: ClassVar[str] = "run_end"

    makespan_us: float
    operations: int
    channels: int


@dataclass(frozen=True)
class EventDispatched(TraceRecord):
    """One engine event executed (high volume; excluded from goldens)."""

    kind: ClassVar[str] = "event"

    sequence: int
    priority: int


@dataclass(frozen=True)
class OperationIssued(TraceRecord):
    """A two-qubit operation left the scheduler."""

    kind: ClassVar[str] = "op_issue"

    op_index: int
    qubit_a: int
    qubit_b: int


@dataclass(frozen=True)
class OperationRetired(TraceRecord):
    """A two-qubit operation completed (gate done, all channels serviced)."""

    kind: ClassVar[str] = "op_retire"

    op_index: int
    channel_count: int
    total_hops: int


@dataclass(frozen=True)
class ChannelOpened(TraceRecord):
    """A long-distance channel entered service on the transport backend."""

    kind: ClassVar[str] = "channel_open"

    flow_id: int
    source: Tuple[int, int]
    destination: Tuple[int, int]
    hops: int
    purpose: str


@dataclass(frozen=True)
class ChannelClosed(TraceRecord):
    """A channel finished: every pair transited and the data qubit arrived."""

    kind: ClassVar[str] = "channel_close"

    flow_id: int
    source: Tuple[int, int]
    destination: Tuple[int, int]
    hops: int
    pairs_transited: float


@dataclass(frozen=True)
class ChannelFidelity(TraceRecord):
    """Delivered EPR fidelity of one closed channel (noise-tracked runs only).

    Emitted immediately after :class:`ChannelClosed` when the machine carries
    a noise model: the purification level selected at channel-open time
    against the fault-tolerance threshold, the endpoint arrival fidelity and
    the fidelity actually delivered — analytical Werner algebra on the fluid
    backend, per-pair purification outcomes on the detailed backend.
    """

    kind: ClassVar[str] = "fidelity"

    flow_id: int
    hops: int
    purification_level: int
    arrival_fidelity: float
    delivered_fidelity: float
    target_fidelity: float
    meets_target: bool


@dataclass(frozen=True)
class RequestArrived(TraceRecord):
    """An open-loop service request entered the system (service mode only).

    One record per request the traffic generator offers, admitted or not:
    the offered-load side of every steady-state metric.
    """

    kind: ClassVar[str] = "req_arrive"

    request_id: int
    tenant: str
    channels: int
    source: Tuple[int, int]
    destination: Tuple[int, int]


@dataclass(frozen=True)
class RequestAdmitted(TraceRecord):
    """The admission controller accepted a request into the service queue."""

    kind: ClassVar[str] = "req_admit"

    request_id: int
    tenant: str
    queue_depth: int


@dataclass(frozen=True)
class RequestDropped(TraceRecord):
    """The admission controller rejected a request (it is never serviced)."""

    kind: ClassVar[str] = "req_drop"

    request_id: int
    tenant: str
    reason: str


@dataclass(frozen=True)
class RequestDispatched(TraceRecord):
    """A queued request left the scheduler and started on the transport."""

    kind: ClassVar[str] = "req_dispatch"

    request_id: int
    tenant: str
    waited_us: float
    queue_depth: int


@dataclass(frozen=True)
class RequestCompleted(TraceRecord):
    """Every channel of a service request finished transiting."""

    kind: ClassVar[str] = "req_complete"

    request_id: int
    tenant: str
    channels: int
    waited_us: float
    service_us: float


@dataclass(frozen=True)
class RouteChosen(TraceRecord):
    """A load balancer picked a candidate path at channel open.

    Emitted only when a ``network.routing`` policy is configured, immediately
    before :class:`ChannelOpened` — so scenarios without the section keep
    byte-identical goldens, the same presence contract as ``fidelity`` and
    the request lifecycle.  ``path`` is the chosen candidate's
    :attr:`~repro.network.routing.Path.stable_name` (payloads stay flat;
    nested coordinate tuples would not survive the JSONL round trip), and
    ``candidates`` counts the fabric's full enumeration for the pair.
    """

    kind: ClassVar[str] = "route"

    flow_id: int
    policy: str
    path: str
    candidates: int


@dataclass(frozen=True)
class FlowRateChanged(TraceRecord):
    """A max-min reallocation changed one flow's service rate."""

    kind: ClassVar[str] = "flow_rate"

    flow_id: int
    rate: float


@dataclass(frozen=True)
class EprPairGenerated(TraceRecord):
    """A G node finished producing one raw link pair (detailed backend)."""

    kind: ClassVar[str] = "epr_generated"

    link: str
    produced: int


@dataclass(frozen=True)
class PurificationMilestone(TraceRecord):
    """An endpoint queue purifier emitted one above-threshold pair."""

    kind: ClassVar[str] = "purified"

    purifier: str
    good_pairs: int
    rounds_executed: int


@dataclass(frozen=True)
class TeleportPerformed(TraceRecord):
    """A T' node serviced one chained-teleportation swap (detailed backend)."""

    kind: ClassVar[str] = "teleport"

    node: Tuple[int, int]
    dimension: str
    turn: bool


@dataclass(frozen=True)
class WarmStartApplied(TraceRecord):
    """A run adopted a cross-run warm-start entry (repro.scenarios.warmstart).

    Observability only: the adopted caches hold pure functions of the entry's
    structural key, so this record is deliberately *not* canonical — golden
    fixtures and the differential harness ignore it, the same way they ignore
    ``EventDispatched``.
    """

    kind: ClassVar[str] = "warm_start"

    key: str
    hit: bool
    reuses: int
    plans: int
    profiles: int
    demands: int


#: kind tag -> record class, for deserialization.
RECORD_TYPES: Dict[str, Type[TraceRecord]] = {
    cls.kind: cls
    for cls in (
        RunStarted,
        RunEnded,
        EventDispatched,
        OperationIssued,
        OperationRetired,
        ChannelOpened,
        ChannelClosed,
        ChannelFidelity,
        RequestArrived,
        RequestAdmitted,
        RequestDropped,
        RequestDispatched,
        RequestCompleted,
        RouteChosen,
        FlowRateChanged,
        EprPairGenerated,
        PurificationMilestone,
        TeleportPerformed,
        WarmStartApplied,
    )
}

#: Request-lifecycle kinds emitted only by the open-loop service mode.
REQUEST_KINDS = frozenset(
    {
        RequestArrived.kind,
        RequestAdmitted.kind,
        RequestDropped.kind,
        RequestDispatched.kind,
        RequestCompleted.kind,
    }
)

#: The compact allocator-invariant stream pinned by golden fixtures.
#: ``fidelity`` records only exist on noise-tracked runs and the request
#: lifecycle only on service-mode runs, so fixtures of scenarios without a
#: ``noise``/``traffic`` section are byte-identical to before those
#: pipelines existed.
CANONICAL_KINDS = (
    frozenset(
        {
            RunStarted.kind,
            RunEnded.kind,
            OperationIssued.kind,
            OperationRetired.kind,
            ChannelOpened.kind,
            ChannelClosed.kind,
            ChannelFidelity.kind,
            RouteChosen.kind,
        }
    )
    | REQUEST_KINDS
)


def warm_start_record_fields(info: Mapping[str, Any]) -> Dict[str, Any]:
    """Project a warm-start attachment info dict onto the record's fields.

    The info dict (from :func:`repro.scenarios.warmstart.attach`) also
    carries cache-wide counters the record deliberately omits.
    """
    return {
        name: info[name]
        for name in ("key", "hit", "reuses", "plans", "profiles", "demands")
    }


def record_from_payload(payload: Dict[str, Any]) -> TraceRecord:
    """Rebuild a typed record from its :meth:`TraceRecord.to_payload` dict."""
    if not isinstance(payload, dict) or KIND_KEY not in payload:
        raise ConfigurationError(f"trace payload needs a {KIND_KEY!r} tag, got {payload!r}")
    kind = payload[KIND_KEY]
    cls = RECORD_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown trace record kind {kind!r}; known: {sorted(RECORD_TYPES)}"
        )
    kwargs: Dict[str, Any] = {}
    known = {spec.name: spec for spec in fields(cls)}
    for key, value in payload.items():
        if key == KIND_KEY:
            continue
        if key not in known:
            raise ConfigurationError(f"trace record {kind!r} has no field {key!r}")
        annotation = known[key].type
        if isinstance(value, list) and "Tuple" in str(annotation):
            value = tuple(value)
        kwargs[key] = value
    missing = sorted(set(known) - set(kwargs))
    if missing:
        raise ConfigurationError(f"trace record {kind!r} payload is missing fields {missing}")
    return cls(**kwargs)


def machine_record(
    machine: Any,
    *,
    workload: str,
    operations: int,
    t_us: float = 0.0,
    num_qubits: Optional[int] = None,
) -> RunStarted:
    """The :class:`RunStarted` header for a run on ``machine``.

    Lives here (rather than on :class:`~repro.sim.machine.QuantumMachine`) so
    the machine module does not import the trace package; the simulator calls
    through :meth:`QuantumMachine.trace_snapshot`, which delegates to this.
    """
    return RunStarted(
        t_us=t_us,
        machine=machine.describe(),
        workload=workload,
        width=machine.topology.width,
        height=machine.topology.height,
        topology=machine.topology_kind,
        layout=machine.layout_name,
        allocation=machine.allocation.label,
        num_qubits=num_qubits if num_qubits is not None else machine.num_qubits,
        operations=operations,
    )
