"""Canonical JSONL trace serialization.

One record per line, compact separators, keys in payload order (kind first,
then field declaration order), floats in shortest-repr form — the encoding is
deterministic, so two identical traces serialize to byte-identical files and
a golden diff is a line-by-line string comparison.  ``json.loads`` restores
Python floats bitwise from their shortest repr, so
``line_to_record(record_to_line(r)) == r`` exactly (the property tests pin
this round trip).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, List, Sequence

from ..errors import ConfigurationError
from .records import TraceRecord, record_from_payload


def record_to_line(record: TraceRecord) -> str:
    """One compact JSON line for ``record`` (no trailing newline)."""
    return json.dumps(record.to_payload(), separators=(",", ":"))


def line_to_record(line: str) -> TraceRecord:
    """Rebuild a typed record from one JSONL line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed trace line {line!r}: {exc}") from exc
    return record_from_payload(payload)


def records_to_lines(records: Iterable[TraceRecord]) -> List[str]:
    return [record_to_line(record) for record in records]


def write_jsonl(path: str, records: Sequence[TraceRecord]) -> str:
    """Write ``records`` as JSONL; parent directories are created."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        for record in records:
            handle.write(record_to_line(record))
            handle.write("\n")
    return path


def read_jsonl(path: str) -> List[TraceRecord]:
    """Read a JSONL trace file back into typed records."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {path!r}: {exc}") from exc
    return [line_to_record(line) for line in lines if line.strip()]


def trace_fingerprint(records: Sequence[TraceRecord]) -> str:
    """Short SHA-256 over the serialized trace (for quick equality checks)."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(record_to_line(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]
