"""Checker framework: contexts, the checker ABC and the rule registry.

A checker is a class with a tuple of :class:`~repro.lint.findings.Rule`
definitions and a :meth:`Checker.check` method that walks one module's
``ast`` tree and yields findings.  Checkers register through
:func:`register_checker`, which is what makes their rules selectable from the
CLI (``--select``/``--ignore``) and documentable (``--list-rules``).

Checkers are *scoped*: each declares which dotted modules it applies to
(``applies_to``), so e.g. the determinism rules only fire inside the
simulation packages, and the float-discipline rules only inside the physics
and verification layers.  Scope is derived from the file's dotted module
path, which the runner computes from the path's ``repro`` package root — and
which tests override directly to lint fixture snippets as if they lived
anywhere in the tree.
"""

from __future__ import annotations

import ast
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..errors import ConfigurationError
from .findings import Finding, Rule


def module_name_for(path: str) -> Optional[str]:
    """Dotted module for a source path, anchored at its ``repro`` root.

    ``src/repro/sim/flow.py`` -> ``repro.sim.flow``; paths outside a
    ``repro`` package tree resolve to ``None`` (package-scoped checkers then
    skip the file).
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[anchor:]
    leaf = dotted[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    dotted = dotted[:-1] + ([] if leaf == "__init__" else [leaf])
    return ".".join(dotted)


@dataclass
class LintContext:
    """Everything a checker needs to analyse one module."""

    path: str
    source: str
    tree: ast.Module
    #: Dotted module path (``repro.sim.flow``); ``None`` outside the package.
    module: Optional[str]
    #: Cross-module facts shared across one run (see :class:`Project`).
    project: "Project" = field(default_factory=lambda: Project())

    @classmethod
    def for_source(
        cls,
        source: str,
        *,
        path: str = "<string>",
        module: Optional[str] = None,
        project: Optional["Project"] = None,
    ) -> "LintContext":
        """Parse ``source`` into a context (module name taken literally)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=module if module is not None else module_name_for(path),
            project=project if project is not None else Project(),
        )

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives under any of the dotted ``packages``."""
        if self.module is None:
            return False
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )


class Project:
    """Cross-module facts a run computes once and every checker shares.

    Today that is the set of registered trace-record class names, parsed from
    ``repro/trace/records.py`` under the project root (or injected directly
    by fixture tests).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        *,
        record_names: Optional[Sequence[str]] = None,
        factory_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.root = root
        self._parsed = False
        self._record_names: Optional[Tuple[str, ...]] = (
            tuple(record_names) if record_names is not None else None
        )
        self._factory_names: Optional[Tuple[str, ...]] = (
            tuple(factory_names) if factory_names is not None else None
        )

    def _records_tree(self) -> Optional[ast.Module]:
        if self.root is None:
            return None
        path = os.path.join(self.root, "src", "repro", "trace", "records.py")
        if not os.path.isfile(path):
            path = os.path.join(self.root, "repro", "trace", "records.py")
        if not os.path.isfile(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return ast.parse(handle.read(), filename=path)

    def _parse_records(self) -> None:
        if self._parsed:
            return
        self._parsed = True
        tree = self._records_tree()
        if tree is None:
            return
        records = collect_record_class_names(tree)
        if self._record_names is None:
            self._record_names = tuple(records)
        if self._factory_names is None:
            self._factory_names = tuple(collect_record_factory_names(tree, records))

    def trace_record_names(self) -> Optional[Tuple[str, ...]]:
        """Names of the TraceRecord subclasses, or ``None`` when unknowable."""
        if self._record_names is None:
            self._parse_records()
        return self._record_names

    def trace_factory_names(self) -> Optional[Tuple[str, ...]]:
        """Typed record factories exported by the records module, or ``None``.

        A factory is a top-level function in ``repro.trace.records`` whose
        return annotation names a record class — the blessed construction
        path when a record needs assembly logic (e.g. ``machine_record``).
        """
        if self._factory_names is None:
            self._parse_records()
        return self._factory_names


def collect_record_class_names(tree: ast.Module) -> List[str]:
    """Class names (transitively) subclassing ``TraceRecord`` in a module."""
    names: List[str] = ["TraceRecord"]
    # Single fixpoint pass is enough in declaration order (Python requires a
    # base class to be defined before its subclass anyway).
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name in names:
                names.append(node.name)
                break
    return [name for name in names if name != "TraceRecord"]


def collect_record_factory_names(
    tree: ast.Module, record_names: Sequence[str]
) -> List[str]:
    """Top-level functions whose return annotation names a record class."""
    factories: List[str] = []
    known = set(record_names)
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef) or node.returns is None:
            continue
        returns = node.returns
        if isinstance(returns, ast.Name) and returns.id in known:
            factories.append(node.name)
        elif isinstance(returns, ast.Constant) and returns.value in known:
            factories.append(node.name)
    return factories


class Checker(ABC):
    """One named group of rules over one module's AST."""

    #: Short name shared by the checker's rule IDs (``DET``, ``TRC``, ...).
    name: str = "abstract"
    #: The rules this checker can raise; IDs must start with :attr:`name`.
    rules: Tuple[Rule, ...] = ()

    def applies_to(self, context: LintContext) -> bool:
        """Whether this checker runs on ``context`` (default: everywhere)."""
        return True

    @abstractmethod
    def check(self, context: LintContext) -> Iterator[Finding]:
        """Yield every violation this checker finds in the module."""

    def finding(
        self, context: LintContext, node: ast.AST, rule: str, message: str
    ) -> Finding:
        """A finding anchored at ``node``, validated against this checker's rules."""
        if rule not in {r.id for r in self.rules}:
            raise ConfigurationError(f"checker {self.name} has no rule {rule!r}")
        return Finding(
            rule=rule,
            message=message,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: Registered checker classes, in registration order.
_CHECKERS: List[Type[Checker]] = []


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: make ``cls`` part of every lint run."""
    if not cls.rules:
        raise ConfigurationError(f"checker {cls.__name__} declares no rules")
    for rule in cls.rules:
        if not rule.id.startswith(cls.name):
            raise ConfigurationError(
                f"rule {rule.id} does not match checker name {cls.name!r}"
            )
    existing = {rule.id for checker in _CHECKERS for rule in checker.rules}
    clash = sorted(existing & {rule.id for rule in cls.rules})
    if clash:
        raise ConfigurationError(f"rule ids {clash} are already registered")
    _CHECKERS.append(cls)
    return cls


def all_checkers() -> Tuple[Type[Checker], ...]:
    """Every registered checker class (imports the built-in set on demand)."""
    from . import checkers  # noqa: F401  (registration side effect)

    return tuple(_CHECKERS)


def all_rules() -> Dict[str, Rule]:
    """``{rule_id: Rule}`` over every registered checker plus the framework."""
    from .suppress import LNT_RULES

    table: Dict[str, Rule] = {rule.id: rule for rule in LNT_RULES}
    for checker in all_checkers():
        for rule in checker.rules:
            table[rule.id] = rule
    return dict(sorted(table.items()))
