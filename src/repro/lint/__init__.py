"""repro.lint — determinism- and contract-checking static analysis.

A stdlib-``ast`` lint pass encoding the repository's cross-cutting contracts
as named, selectable rules:

=====  ==============================================================
DET    no ambient nondeterminism / set-ordered loops in the sim layers
TRC    trace records frozen, JSONL-safe, registered; typed emit sites
SPEC   every scenario-spec field validated and spec-hash covered
FLT    toleranced float comparisons and non-finite rejection
API    the sim core never imports the layers that host it
LNT    the suppression syntax polices itself
=====  ==============================================================

Run it with ``python -m repro lint`` (see :mod:`repro.lint.cli`); suppress a
deliberate exception inline with ``# lint-ok: RULE -- justification``.
"""

from .base import (
    Checker,
    LintContext,
    Project,
    all_checkers,
    all_rules,
    module_name_for,
    register_checker,
)
from .findings import (
    LINT_SCHEMA_VERSION,
    Finding,
    Rule,
    findings_from_payload,
    findings_payload,
)
from .runner import LintReport, collect_files, lint_file, run_lint
from .suppress import Suppression, apply_suppressions, parse_suppressions

__all__ = [
    "LINT_SCHEMA_VERSION",
    "Checker",
    "Finding",
    "LintContext",
    "LintReport",
    "Project",
    "Rule",
    "Suppression",
    "all_checkers",
    "all_rules",
    "apply_suppressions",
    "collect_files",
    "findings_from_payload",
    "findings_payload",
    "lint_file",
    "module_name_for",
    "parse_suppressions",
    "register_checker",
    "run_lint",
]
