"""``repro lint`` — the determinism- and contract-checking pass.

Examples::

    python -m repro lint                      # lint src/ (text output)
    python -m repro lint src tests --format json
    python -m repro lint --select DET,TRC     # only those checkers
    python -m repro lint --ignore FLT001      # drop one rule
    python -m repro lint --list-rules         # rule catalogue with rationale

Exit status: 0 when clean, 1 when any error-severity finding remains after
suppressions, 2 on usage errors (unknown rule patterns, missing paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ConfigurationError
from .base import all_rules
from .findings import findings_payload
from .runner import run_lint


def add_lint_parser(subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    parser = subparsers.add_parser(
        "lint",
        help="run the determinism/contract static-analysis pass",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs or prefixes to run (e.g. DET,TRC001)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs or prefixes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.set_defaults(func=cmd_lint)


def _split_patterns(values: List[str]) -> List[str]:
    patterns: List[str] = []
    for value in values:
        patterns.extend(p.strip() for p in value.split(",") if p.strip())
    return patterns


def _print_rules() -> None:
    for rule_id, rule in all_rules().items():
        print(f"{rule_id}  {rule.summary}")
        if rule.rationale:
            print(f"        {rule.rationale}")


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rules()
        return 0
    try:
        report = run_lint(
            args.paths,
            select=_split_patterns(args.select),
            ignore=_split_patterns(args.ignore),
        )
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        payload = findings_payload(
            report.findings,
            files_scanned=report.files_scanned,
            suppressed=report.suppressed,
        )
        print(json.dumps(payload, indent=2, sort_keys=False))
    else:
        for finding in report.findings:
            print(str(finding))
        noun = "file" if report.files_scanned == 1 else "files"
        tail = f", {report.suppressed} suppressed" if report.suppressed else ""
        if report.findings:
            print(
                f"repro lint: {len(report.findings)} finding(s) in "
                f"{report.files_scanned} {noun}{tail}"
            )
        else:
            print(f"repro lint: clean ({report.files_scanned} {noun} scanned{tail})")
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-lint", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(subparsers)
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
