"""Inline suppressions: ``# lint-ok: RULE[,RULE...] -- justification``.

A finding is suppressed when the offending line — or a comment-only line
immediately above it — carries a ``lint-ok`` marker naming the finding's rule
and a non-empty justification after ``--``.  The justification is mandatory:
the whole point of the contract pass is that every deliberate exception is
*explained* at the site, so a marker without one is itself a finding
(``LNT001``), and a marker that suppresses nothing is stale (``LNT002``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .findings import Finding, Rule

#: Framework rules: the suppression syntax polices itself.
LNT_RULES = (
    Rule(
        "LNT001",
        "a `lint-ok` suppression needs a justification after `--`",
        "Suppressions document *why* a contract does not apply at a site; "
        "a bare marker hides a violation without explaining it.",
    ),
    Rule(
        "LNT002",
        "a `lint-ok` suppression matched no finding (stale)",
        "Stale suppressions outlive the code they excused and mask future "
        "regressions of the same rule on the same line.",
    ),
    Rule(
        "LNT003",
        "file does not parse",
        "A file the checkers cannot parse is a file whose contracts cannot "
        "be verified at all.",
    ),
)

#: ``lint-ok: DET001,FLT001 -- reason`` after a hash (rules comma-separated).
_MARKER = re.compile(
    r"#\s*lint-ok\s*:\s*(?P<rules>[A-Z]{2,5}\d{3}(?:\s*,\s*[A-Z]{2,5}\d{3})*)"
    r"(?:\s*--\s*(?P<why>.*))?"
)


@dataclass
class Suppression:
    """One parsed ``lint-ok`` marker."""

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: str
    #: Lines this marker covers: its own line, and — when the marker stands on
    #: a comment-only line — the next non-comment line below it, so a
    #: justification may wrap over several comment lines.
    covers: Tuple[int, ...] = ()
    used: bool = field(default=False, compare=False)


def parse_suppressions(path: str, source_lines: Sequence[str]) -> List[Suppression]:
    """Every ``lint-ok`` marker in a file, with the lines it covers."""
    suppressions: List[Suppression] = []
    for index, text in enumerate(source_lines):
        match = _MARKER.search(text)
        if match is None:
            continue
        line = index + 1
        comment_only = text.lstrip().startswith("#")
        covers = (line,)
        if comment_only:
            # Cover the next non-comment line, letting the justification wrap
            # over several comment lines between the marker and the code.
            below = index + 1
            while below < len(source_lines) and source_lines[below].lstrip().startswith("#"):
                below += 1
            covers = (line, below + 1)
        suppressions.append(
            Suppression(
                path=path,
                line=line,
                rules=tuple(r.strip() for r in match.group("rules").split(",")),
                justification=(match.group("why") or "").strip(),
                covers=covers,
            )
        )
    return suppressions


def apply_suppressions(
    findings: Sequence[Finding],
    suppressions: Sequence[Suppression],
) -> Tuple[List[Finding], int]:
    """Drop suppressed findings; append LNT001/LNT002 findings for bad markers.

    Returns ``(active_findings, suppressed_count)``.
    """
    by_key: Dict[Tuple[str, int, str], List[Suppression]] = {}
    for suppression in suppressions:
        for covered in suppression.covers:
            for rule in suppression.rules:
                by_key.setdefault((suppression.path, covered, rule), []).append(suppression)

    active: List[Finding] = []
    suppressed = 0
    for finding in findings:
        matches = by_key.get((finding.path, finding.line, finding.rule), [])
        justified = [s for s in matches if s.justification]
        if justified:
            for suppression in justified:
                suppression.used = True
            suppressed += 1
            continue
        # An unjustified marker still *claims* the finding (so LNT002 does not
        # also fire) but does not silence it.
        for suppression in matches:
            suppression.used = True
        active.append(finding)

    seen: Set[Tuple[str, int]] = set()
    for suppression in suppressions:
        key = (suppression.path, suppression.line)
        if key in seen:
            continue
        seen.add(key)
        if not suppression.justification:
            active.append(
                Finding(
                    rule="LNT001",
                    message=(
                        "suppression has no justification; write "
                        "`# lint-ok: RULE -- why the contract does not apply here`"
                    ),
                    path=suppression.path,
                    line=suppression.line,
                )
            )
        elif not suppression.used:
            active.append(
                Finding(
                    rule="LNT002",
                    message=(
                        f"suppression for {', '.join(suppression.rules)} matched no "
                        "finding; delete the stale `lint-ok` marker"
                    ),
                    path=suppression.path,
                    line=suppression.line,
                )
            )
    return active, suppressed
