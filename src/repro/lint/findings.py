"""Lint findings: the typed result every checker produces.

A :class:`Finding` pins one contract violation to a rule ID, a file, a line
and a column, with a human-readable message.  Findings serialize to flat
JSON-safe dicts (``--format json``) and back, and the round trip is exact so
downstream tooling (CI annotations, editors) can consume the output without
re-parsing text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Sequence

from ..errors import ConfigurationError

#: Rule IDs are a short uppercase checker prefix plus a 3-digit number.
_RULE_ID = re.compile(r"^[A-Z]{2,5}\d{3}$")

#: Bump when the JSON output layout changes incompatibly.
LINT_SCHEMA_VERSION = 1

#: Severities, in increasing order of weight.  Only ``error`` findings fail
#: the pass (non-zero exit); ``warning`` is reserved for advisory rules.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Rule:
    """One checkable contract: a stable ID plus its documentation."""

    id: str
    summary: str
    rationale: str = ""

    def __post_init__(self) -> None:
        if not _RULE_ID.match(self.id):
            raise ConfigurationError(
                f"rule ids are 2-5 uppercase letters + 3 digits (e.g. DET001), "
                f"got {self.id!r}"
            )


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"finding severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_payload(self) -> Dict[str, Any]:
        """Flat JSON-safe dict, field declaration order."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from its :meth:`to_payload` dict (exact)."""
        if not isinstance(payload, dict):
            raise ConfigurationError(f"a finding payload must be a dict, got {payload!r}")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"finding payload has unknown keys {unknown}")
        missing = sorted(known - set(payload))
        if missing:
            raise ConfigurationError(f"finding payload is missing keys {missing}")
        return cls(**payload)

    def __str__(self) -> str:
        return f"{self.location}: {self.rule} {self.message}"


def findings_payload(
    findings: Sequence[Finding],
    *,
    files_scanned: int,
    suppressed: int = 0,
) -> Dict[str, Any]:
    """The ``--format json`` document: schema, findings, per-rule summary."""
    summary: Dict[str, int] = {}
    for finding in findings:
        summary[finding.rule] = summary.get(finding.rule, 0) + 1
    return {
        "schema": LINT_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "suppressed": suppressed,
        "findings": [finding.to_payload() for finding in findings],
        "summary": {rule: summary[rule] for rule in sorted(summary)},
    }


def findings_from_payload(payload: Dict[str, Any]) -> List[Finding]:
    """Rebuild the findings list from a :func:`findings_payload` document."""
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ConfigurationError("a lint payload needs a 'findings' list")
    raw = payload["findings"]
    if not isinstance(raw, list):
        raise ConfigurationError(f"'findings' must be a list, got {type(raw).__name__}")
    return [Finding.from_payload(entry) for entry in raw]
