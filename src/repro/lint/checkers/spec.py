"""SPEC — every scenario-spec field is validated and hash-covered.

Scenario specs are the cache keys of the whole experiment pipeline: a field
that exists on a ``*Spec`` dataclass but is not validated in ``from_dict`` is
a silently-accepted knob, and a field dropped from the canonical payload is a
knob that changes results *without* changing the spec hash — two runs with
different physics would share a cache slot and a golden fixture.

* **SPEC001** — every dataclass field on a ``*Spec`` class must appear as a
  validated key inside that class's ``from_dict`` (string-literal coverage,
  with module-level tuple constants resolved);
* **SPEC002** — ``to_dict``/``canonical_dict`` may drop only the documented
  cosmetic fields (``name``, ``description``) unconditionally; anything else
  must be behind an explicit guard (e.g. omitting an unset optional section).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..base import Checker, LintContext, register_checker
from ..findings import Finding, Rule

#: Fields excluded from the spec hash on purpose: renaming or re-describing
#: a scenario must not invalidate its cache slot.
COSMETIC_FIELDS = ("name", "description")


def _module_string_constants(tree: ast.Module) -> Dict[str, Set[str]]:
    """Module-level ``NAME = ("a", "b", ...)`` constants (BinOp-concat aware)."""
    table: Dict[str, Set[str]] = {}

    def resolve(node: ast.expr) -> Optional[Set[str]]:
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            values: Set[str] = set()
            for element in node.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    values.add(element.value)
                elif isinstance(element, ast.Starred):
                    inner = resolve(element.value)
                    if inner is None:
                        return None
                    values.update(inner)
                else:
                    return None
            return values
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, right = resolve(node.left), resolve(node.right)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(node, ast.Name):
            return table.get(node.id)
        return None

    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                resolved = resolve(node.value)
                if resolved is not None:
                    table[target.id] = resolved
    return table


def _dataclass_fields(node: ast.ClassDef) -> List[ast.AnnAssign]:
    fields: List[ast.AnnAssign] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            annotation = ast.unparse(statement.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(statement)
    return fields


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", None)
        if name == "dataclass":
            return True
    return False


def _strings_in(node: ast.AST, constants: Dict[str, Set[str]]) -> Set[str]:
    """Every string literal under ``node``, plus resolved constant references."""
    found: Set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            found.add(inner.value)
        elif isinstance(inner, ast.Name) and inner.id in constants:
            found.update(constants[inner.id])
    return found


def _unconditional_pops(function: ast.FunctionDef) -> Iterator[ast.Call]:
    """``payload.pop("field")`` calls not nested under any If/Try/loop.

    A pop behind a guard (``if self.noise is None: payload.pop("noise")``) is
    the documented pattern for omitting an *unset* optional section — the
    field still participates in the hash whenever it is set — so only
    top-level, always-executed pops are reported.
    """
    for statement in function.body:
        if isinstance(statement, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
            continue
        for child in ast.walk(statement):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "pop"
            ):
                yield child


@register_checker
class SpecCoverageChecker(Checker):
    """No silently-unvalidated or hash-invisible spec fields."""

    name = "SPEC"
    rules = (
        Rule(
            "SPEC001",
            "every *Spec dataclass field must be a validated key in from_dict",
            "An unvalidated field is a knob that accepts garbage silently; "
            "every accepted key must flow through the strict dict codec.",
        ),
        Rule(
            "SPEC002",
            "only cosmetic fields (name, description) may be dropped from the "
            "canonical/hash payload unconditionally",
            "A field removed from canonical_dict changes results without "
            "changing the spec hash — two different experiments would share "
            "a cache slot and a golden fixture.",
        ),
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_package("repro.scenarios")

    def check(self, context: LintContext) -> Iterator[Finding]:
        constants = _module_string_constants(context.tree)
        for node in context.tree.body:
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Spec"):
                continue
            if not _is_dataclass(node):
                continue
            yield from self._check_class(context, node, constants)

    def _check_class(
        self,
        context: LintContext,
        node: ast.ClassDef,
        constants: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        fields = _dataclass_fields(node)
        from_dict: Optional[ast.FunctionDef] = None
        payload_methods: List[ast.FunctionDef] = []
        for statement in node.body:
            if isinstance(statement, ast.FunctionDef):
                if statement.name == "from_dict":
                    from_dict = statement
                elif statement.name in ("to_dict", "canonical_dict"):
                    payload_methods.append(statement)

        if from_dict is None:
            if fields:
                yield self.finding(
                    context,
                    node,
                    "SPEC001",
                    f"{node.name} has no from_dict classmethod; spec sections "
                    "must validate through the strict dict codec",
                )
        else:
            validated = _strings_in(from_dict, constants)
            for field_node in fields:
                assert isinstance(field_node.target, ast.Name)
                field_name = field_node.target.id
                if field_name not in validated:
                    yield self.finding(
                        context,
                        field_node,
                        "SPEC001",
                        f"field {node.name}.{field_name} is never validated in "
                        "from_dict; every accepted key must be covered by the "
                        "strict codec (and rejected when malformed)",
                    )

        for method in payload_methods:
            for pop in _unconditional_pops(method):
                key = pop.args[0] if pop.args else None
                popped = (
                    key.value
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    else None
                )
                if popped is None or popped not in COSMETIC_FIELDS:
                    label = popped if popped is not None else "<dynamic>"
                    yield self.finding(
                        context,
                        pop,
                        "SPEC002",
                        f"{node.name}.{method.name} unconditionally drops "
                        f"{label!r} from the payload; only cosmetic fields "
                        f"{COSMETIC_FIELDS} may be hash-invisible",
                    )
