"""FLT — float discipline in the physics and verification layers.

The verify harness documents exactly which comparisons are bitwise (allocator
parity) and which are toleranced (backend parity at 1e-6, utilisation at
1e-9).  Bare ``==``/``!=`` on float quantities outside those documented
constants is how tolerance bugs creep in:

* **FLT001** — equality comparison where a side is a float literal or a
  float-named quantity (``*_us``, ``*fidelity``, ``*rate``, ``makespan*``,
  ``ratio``, ``*_tol*``).  Either route it through the documented tolerance
  constants (``FIDELITY_ABS_TOL``, ``UTILISATION_REL_TOL``) / ``math.isclose``,
  or suppress with a justification naming the bitwise contract relied on;
* **FLT002** — ``validate_*``/``clamp_*`` entry points in the physics layer
  must reject non-finite values (``math.isfinite``/``math.isnan``): NaN
  compares false against every bound, so range checks alone wave it straight
  into cache keys and Bell-diagonal algebra.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..base import Checker, LintContext, register_checker
from ..findings import Finding, Rule

#: Packages where float comparisons are contract-sensitive.
FLOAT_PACKAGES = ("repro.verify", "repro.physics")

#: Terminal names that denote float-valued quantities in this codebase.
_FLOAT_NAME = re.compile(
    r"(^|_)(us|fidelity|rate|ratio|makespan|tol|tolerance)$|^makespan|fidelity$"
)


def _float_named(node: ast.expr) -> Optional[str]:
    """The dotted name of a float-suggesting operand, or ``None``."""
    terminal: Optional[str] = None
    if isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Name):
        terminal = node.id
    if terminal is not None and _FLOAT_NAME.search(terminal):
        return terminal
    return None


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _mentions_finiteness(function: ast.FunctionDef) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Attribute) and node.attr in ("isfinite", "isnan", "isinf"):
            return True
        if isinstance(node, ast.Name) and node.id in ("isfinite", "isnan", "isinf"):
            return True
    return False


def _takes_float(function: ast.FunctionDef) -> bool:
    arguments = function.args
    return any(
        arg.annotation is not None and "float" in ast.unparse(arg.annotation)
        for arg in arguments.args + arguments.kwonlyargs + arguments.posonlyargs
    )


@register_checker
class FloatDisciplineChecker(Checker):
    """Toleranced comparisons and non-finite rejection in physics/verify."""

    name = "FLT"
    rules = (
        Rule(
            "FLT001",
            "no bare ==/!= on float quantities in repro.verify/repro.physics",
            "Float agreement goes through the documented tolerance constants "
            "(FIDELITY_ABS_TOL, UTILISATION_REL_TOL) or math.isclose; sites "
            "that *rely* on bitwise equality suppress with the contract named.",
        ),
        Rule(
            "FLT002",
            "validate_*/clamp_* physics entry points must reject non-finite "
            "values (math.isfinite/isnan)",
            "NaN compares false against every bound, so a range check alone "
            "admits it into spec hashes and Bell-diagonal algebra.",
        ),
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_package(*FLOAT_PACKAGES)

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(context, node)
            elif isinstance(node, ast.FunctionDef):
                yield from self._check_validator(context, node)

    def _check_compare(self, context: LintContext, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                reason: Optional[str] = None
                if _is_float_literal(side):
                    reason = f"float literal {ast.unparse(side)}"
                else:
                    name = _float_named(side)
                    if name is not None:
                        reason = f"float quantity {name!r}"
                if reason is not None:
                    yield self.finding(
                        context,
                        node,
                        "FLT001",
                        f"bare {'==' if isinstance(op, ast.Eq) else '!='} against "
                        f"{reason}; compare through the documented tolerance "
                        "constants, or suppress naming the bitwise contract",
                    )
                    break

    def _check_validator(
        self, context: LintContext, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        if not (node.name.startswith("validate_") or node.name.startswith("clamp_")):
            return
        if not _takes_float(node):
            return
        if not _mentions_finiteness(node):
            yield self.finding(
                context,
                node,
                "FLT002",
                f"{node.name}() validates a float but never checks finiteness; "
                "NaN passes every range check — add a math.isfinite gate",
            )
