"""API — cross-layer import hygiene.

The transport backends and the event engine (:mod:`repro.sim`) are the
embeddable core: the streaming-service and sharded-sweep work on the roadmap
will host them inside new runtimes.  That only stays possible while the sim
layer never reaches *up* into the layers that host it:

* **API001** — no module under ``repro.sim`` may import ``repro.runtime``,
  ``repro.scenarios``, ``repro.analysis`` or ``repro.verify``.  Data the sim
  needs from above arrives as constructor arguments (machine, parameters,
  trace bus), never as an import.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..base import Checker, LintContext, register_checker
from ..findings import Finding, Rule

#: Layers the sim core must never import (they import *it*).
FORBIDDEN_FOR_SIM = ("repro.runtime", "repro.scenarios", "repro.analysis", "repro.verify")


def _absolute_target(
    module: Optional[str],
    node: ast.ImportFrom,
    current_module: str,
    *,
    is_package: bool,
) -> Optional[str]:
    """Resolve a (possibly relative) import to its absolute dotted module."""
    if node.level == 0:
        return module
    parts = current_module.split(".")
    # Relative imports resolve against the containing package: the module
    # itself when this is a package __init__, its parent otherwise; each
    # level beyond the first strips one more component.
    package = parts if is_package else parts[:-1]
    base = package[: len(package) - (node.level - 1)]
    if not base:
        return module
    if module:
        return ".".join([*base, module])
    return ".".join(base)


@register_checker
class LayeringChecker(Checker):
    """The sim core never imports the layers that host it."""

    name = "API"
    rules = (
        Rule(
            "API001",
            "repro.sim must not import repro.runtime/scenarios/analysis/verify",
            "The backend layer stays embeddable in new runtimes only while "
            "everything it needs arrives as constructor arguments; an upward "
            "import couples the core to one host.",
        ),
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_package("repro.sim")

    def check(self, context: LintContext) -> Iterator[Finding]:
        assert context.module is not None  # applies_to guarantees the package
        is_package = context.path.endswith("__init__.py")
        for node in ast.walk(context.tree):
            targets: Tuple[Tuple[Optional[str], ast.stmt], ...] = ()
            if isinstance(node, ast.Import):
                targets = tuple((alias.name, node) for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                targets = (
                    (
                        _absolute_target(
                            node.module, node, context.module, is_package=is_package
                        ),
                        node,
                    ),
                )
            for target, statement in targets:
                if target is None:
                    continue
                if any(
                    target == forbidden or target.startswith(forbidden + ".")
                    for forbidden in FORBIDDEN_FOR_SIM
                ):
                    yield self.finding(
                        context,
                        statement,
                        "API001",
                        f"repro.sim module imports {target}; the sim core must "
                        "stay embeddable — pass data in through constructors "
                        "instead of importing the host layer",
                    )
