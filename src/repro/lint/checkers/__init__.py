"""Built-in checkers.

Importing this package registers every built-in checker through the
:func:`repro.lint.base.register_checker` side effect; the framework imports
it lazily from :func:`repro.lint.base.all_checkers`.
"""

from . import api, det, flt, spec, trc

__all__ = ["api", "det", "flt", "spec", "trc"]
