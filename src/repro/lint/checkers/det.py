"""DET — determinism contracts for the simulation packages.

Everything downstream of the simulator assumes a run is a pure function of
its spec: golden traces diff bitwise, the verify harness replays scenarios
expecting identical dynamics, and the result cache keys on the spec hash
alone.  Two things silently break that purity:

* **DET001** — ambient nondeterminism: wall clocks, process-seeded RNGs,
  OS entropy.  Stochastic workloads must draw from the SHA-256 named-substream
  service in :mod:`repro.workloads.rng`, which is process- and
  hash-seed-independent by construction.
* **DET002** — iterating a ``set``/``frozenset``: element order follows the
  hash layout, which ``PYTHONHASHSEED`` perturbs for strings (and any tuple
  containing one), so a set-ordered loop that feeds scheduling, emission or
  accumulation order can differ between processes.  Iterate ``sorted(...)``
  or keep an insertion-ordered ``dict`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..base import Checker, LintContext, register_checker
from ..findings import Finding, Rule

#: Packages whose execution order reaches traces, goldens and cache keys.
DETERMINISTIC_PACKAGES = ("repro.sim", "repro.network", "repro.workloads", "repro.service")

#: Call chains that read ambient state.  A ``None`` attribute matches any
#: attribute of the module (``random.*``), otherwise the chain must end with
#: the named attribute.
_FORBIDDEN_CALLS: Tuple[Tuple[str, Optional[str]], ...] = (
    ("random", None),
    ("secrets", None),
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
)

#: Modules whose ``from X import ...`` forms are flagged outright (an aliased
#: ``from random import randint`` would dodge the attribute-chain check).
_FORBIDDEN_FROM_IMPORTS = ("random", "secrets")


def _attribute_chain(node: ast.expr) -> List[str]:
    """``datetime.datetime.now`` -> ["datetime", "datetime", "now"]."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
    else:
        return []
    chain.reverse()
    return chain


def _is_set_expr(node: ast.expr, known_sets: Dict[str, bool]) -> bool:
    """Whether ``node`` syntactically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, known_sets) or _is_set_expr(node.right, known_sets)
    name = _bound_name(node)
    if name is not None:
        return known_sets.get(name, False)
    return False


def _bound_name(node: ast.expr) -> Optional[str]:
    """A trackable binding: a bare name or a ``self.attr`` attribute."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _is_set_annotation(annotation: ast.expr) -> bool:
    """``Set[int]`` / ``FrozenSet[str]`` / ``set[...]`` / bare ``set``."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in ("Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet")
    if isinstance(target, ast.Attribute):  # typing.Set[...]
        return target.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    return False


class _ScopeVisitor(ast.NodeVisitor):
    """Tracks set-typed bindings per lexical scope and flags set iteration."""

    def __init__(self, checker: "DeterminismChecker", context: LintContext) -> None:
        self.checker = checker
        self.context = context
        self.findings: List[Finding] = []
        #: Stack of {binding-name: is-set} scopes; ``self.attr`` annotations
        #: land in the enclosing class scope so every method sees them.
        self.scopes: List[Dict[str, bool]] = [{}]

    # -- scope management -------------------------------------------------------------

    def _known(self) -> Dict[str, bool]:
        merged: Dict[str, bool] = {}
        for scope in self.scopes:
            merged.update(scope)
        return merged

    def _with_new_scope(self, node: ast.AST) -> None:
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._with_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._with_new_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._with_new_scope(node)

    # -- binding tracking -------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self._known())
        for target in node.targets:
            name = _bound_name(target)
            if name is not None:
                self.scopes[-1][name] = is_set
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = _bound_name(node.target)
        if name is not None:
            is_set = _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value, self._known())
            )
            scope = self.scopes[-1]
            if name.startswith("self.") and len(self.scopes) >= 2:
                # Attribute annotations are visible class-wide.
                scope = self.scopes[-2]
            scope[name] = is_set
        self.generic_visit(node)

    # -- iteration sites --------------------------------------------------------------

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node, self._known()):
            self.findings.append(
                self.checker.finding(
                    self.context,
                    iter_node,
                    "DET002",
                    "iteration over a set: element order follows the hash seed; "
                    "iterate sorted(...) or an insertion-ordered dict so "
                    "scheduling/emission order stays deterministic",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- forbidden calls / imports ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if chain:
            for module, attribute in _FORBIDDEN_CALLS:
                if module not in chain[:-1]:
                    continue
                if attribute is None or chain[-1] == attribute:
                    self.findings.append(
                        self.checker.finding(
                            self.context,
                            node,
                            "DET001",
                            f"nondeterministic call {'.'.join(chain)}(): simulation "
                            "state must be a pure function of the spec; draw from "
                            "repro.workloads.rng (SHA-256 named substreams) instead",
                        )
                    )
                    break
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module in _FORBIDDEN_FROM_IMPORTS:
            self.findings.append(
                self.checker.finding(
                    self.context,
                    node,
                    "DET001",
                    f"importing names from {node.module!r}: use the deterministic "
                    "substream service in repro.workloads.rng instead",
                )
            )
        self.generic_visit(node)


@register_checker
class DeterminismChecker(Checker):
    """No ambient randomness or hash-ordered iteration in the sim packages."""

    name = "DET"
    rules = (
        Rule(
            "DET001",
            "no ambient nondeterminism (random.*, time.time, os.urandom, "
            "datetime.now, uuid, secrets) inside repro.sim/network/workloads/service",
            "Runs must replay bit-for-bit from the spec alone; stochastic "
            "workloads go through repro.workloads.rng's SHA-256 substreams.",
        ),
        Rule(
            "DET002",
            "no iteration over set/frozenset inside repro.sim/network/workloads/service",
            "Set order follows PYTHONHASHSEED for str-bearing elements; loops "
            "that feed scheduling or emission order must iterate sorted(...) "
            "or an insertion-ordered dict.",
        ),
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_package(*DETERMINISTIC_PACKAGES)

    def check(self, context: LintContext) -> Iterator[Finding]:
        visitor = _ScopeVisitor(self, context)
        visitor.visit(context.tree)
        yield from visitor.findings
