"""TRC — the trace-record contract.

The golden-trace regression suite and the JSONL round-trip guarantee rest on
three structural properties of :mod:`repro.trace.records`:

* **TRC001** — every record class is a *frozen* dataclass (records in flight
  must be immutable: probes and the in-memory bus share them);
* **TRC002** — every record field has a JSONL-serializable annotation
  (int/float/str/bool, tuples and optionals thereof), so
  ``record -> payload -> line -> record`` is exact;
* **TRC003** — every record class is registered in ``RECORD_TYPES`` (an
  unregistered kind serializes but can never be deserialized, which a golden
  ``record`` run would only discover after writing a broken fixture);
* **TRC004** — every ``.emit(...)`` site constructs a registered record class
  directly, so the set of emittable kinds is statically known and the bus
  never sees an untyped payload.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from ..base import Checker, LintContext, collect_record_class_names, register_checker
from ..findings import Finding, Rule

#: Annotation atoms that survive the JSONL round trip bitwise.
_SAFE_ATOMS = ("int", "float", "str", "bool")
#: Wrappers allowed around the atoms.
_SAFE_WRAPPERS = ("Tuple", "tuple", "Optional", "ClassVar")

_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _annotation_is_safe(annotation: str) -> bool:
    """Every type token in ``annotation`` is a safe atom or wrapper."""
    for token in _TOKEN.findall(annotation):
        leaf = token.split(".")[-1]
        if leaf in _SAFE_ATOMS or leaf in _SAFE_WRAPPERS:
            continue
        if leaf in ("None",):
            continue
        return False
    return True


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if name == "dataclass":
                for keyword in decorator.keywords:
                    if keyword.arg == "frozen":
                        value = keyword.value
                        return isinstance(value, ast.Constant) and value.value is True
    return False


def _registered_names(tree: ast.Module) -> Optional[Set[str]]:
    """Class names listed in the ``RECORD_TYPES`` registry literal, if found."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "RECORD_TYPES":
                names: Set[str] = set()
                for inner in ast.walk(value):
                    if isinstance(inner, ast.Name) and inner.id[:1].isupper():
                        names.add(inner.id)
                return names
    return None


@register_checker
class TraceContractChecker(Checker):
    """Frozen, serializable, registered trace records; typed emission sites."""

    name = "TRC"
    rules = (
        Rule(
            "TRC001",
            "trace record classes must be @dataclass(frozen=True)",
            "Records are shared between the bus's in-memory list and every "
            "probe; mutation after emission would corrupt golden traces.",
        ),
        Rule(
            "TRC002",
            "trace record fields must have JSONL-safe annotations "
            "(int/float/str/bool, Tuple/Optional thereof)",
            "The golden suite depends on an exact record -> JSONL -> record "
            "round trip; unserializable field types break it at runtime.",
        ),
        Rule(
            "TRC003",
            "every trace record class must be registered in RECORD_TYPES",
            "An unregistered kind serializes but never deserializes — the "
            "broken fixture is only discovered on the next golden diff.",
        ),
        Rule(
            "TRC004",
            ".emit(...) must construct a registered trace record directly",
            "Keeping emission sites statically typed is what lets the golden "
            "fixtures enumerate every kind a simulation can produce.",
        ),
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_package("repro")

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.module is not None and context.module.endswith("trace.records"):
            yield from self._check_record_module(context)
        if context.module == "repro.trace.bus":
            return  # The bus *defines* emit; its body is not an emission site.
        yield from self._check_emission_sites(context)

    # -- record definitions -----------------------------------------------------------

    def _check_record_module(self, context: LintContext) -> Iterator[Finding]:
        record_names = set(collect_record_class_names(context.tree)) | {"TraceRecord"}
        registered = _registered_names(context.tree)
        for node in context.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name not in record_names:
                continue
            if not _is_frozen_dataclass(node):
                yield self.finding(
                    context,
                    node,
                    "TRC001",
                    f"trace record {node.name} is not @dataclass(frozen=True)",
                )
            if (
                registered is not None
                and node.name != "TraceRecord"
                and node.name not in registered
            ):
                yield self.finding(
                    context,
                    node,
                    "TRC003",
                    f"trace record {node.name} is missing from RECORD_TYPES; "
                    "its payloads can never be deserialized",
                )
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                annotation = ast.unparse(statement.annotation)
                if not _annotation_is_safe(annotation):
                    yield self.finding(
                        context,
                        statement,
                        "TRC002",
                        f"field annotation {annotation!r} on {node.name} is not "
                        "JSONL-safe (allowed: int/float/str/bool and "
                        "Tuple/Optional of those)",
                    )

    # -- emission sites ---------------------------------------------------------------

    def _check_emission_sites(self, context: LintContext) -> Iterator[Finding]:
        known = context.project.trace_record_names()
        factories = context.project.trace_factory_names() or ()
        if known is None and context.module is not None and context.module.endswith(
            "trace.records"
        ):
            known = tuple(collect_record_class_names(context.tree))
        if known is not None:
            known = tuple(known) + tuple(factories)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            argument = node.args[0] if node.args else None
            constructor = None
            if isinstance(argument, ast.Call):
                callee = argument.func
                constructor = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else getattr(callee, "attr", None)
                )
            if constructor is None:
                yield self.finding(
                    context,
                    node,
                    "TRC004",
                    ".emit() argument is not a direct record construction; "
                    "emission sites must name a registered TraceRecord class",
                )
            elif known is not None and constructor not in known:
                yield self.finding(
                    context,
                    node,
                    "TRC004",
                    f".emit({constructor}(...)) does not construct a registered "
                    "trace record kind (see repro.trace.records.RECORD_TYPES)",
                )
