"""The lint runner: collect files, run applicable checkers, apply suppressions.

One :func:`run_lint` call is one pass over a set of paths.  Files are linted
independently (each gets a fresh :class:`~repro.lint.base.LintContext`), but
share a single :class:`~repro.lint.base.Project` so cross-module facts — the
registered trace-record names — are computed once.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .base import LintContext, Project, all_checkers, all_rules, module_name_for
from .findings import Finding
from .suppress import apply_suppressions, parse_suppressions

#: Directory names never descended into while collecting sources.
_SKIPPED_DIRS = ("__pycache__", ".git", ".ruff_cache", ".pytest_cache")


@dataclass
class LintReport:
    """The outcome of one lint pass."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Every ``*.py`` file under ``paths`` (files kept as-is), sorted."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
            continue
        if not os.path.isdir(path):
            raise ConfigurationError(f"lint path does not exist: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIPPED_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    collected.append(os.path.join(dirpath, filename))
    return sorted(dict.fromkeys(collected))


def _selected(rule: str, select: Sequence[str], ignore: Sequence[str]) -> bool:
    """Whether ``rule`` survives the ``--select``/``--ignore`` filters.

    Entries match a full rule ID (``DET001``) or a prefix (``DET``).  The
    framework's own LNT findings always pass ``--select`` (they police the
    suppressions of whatever was selected) but can be ignored explicitly.
    """

    def matches(patterns: Sequence[str]) -> bool:
        return any(rule == p or rule.startswith(p) for p in patterns)

    if matches(ignore):
        return False
    if select and not rule.startswith("LNT") and not matches(select):
        return False
    return True


def lint_file(
    path: str,
    project: Project,
    *,
    module: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one file: raw checker findings filtered through its suppressions."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule="LNT003",
                    message=f"file does not parse: {exc.msg}",
                    path=path,
                    line=exc.lineno or 1,
                )
            ],
            0,
        )
    context = LintContext(
        path=path,
        source=source,
        tree=tree,
        module=module if module is not None else module_name_for(path),
        project=project,
    )
    findings: List[Finding] = []
    for checker_cls in all_checkers():
        checker = checker_cls()
        if checker.applies_to(context):
            findings.extend(checker.check(context))
    suppressions = parse_suppressions(path, source.splitlines())
    return apply_suppressions(findings, suppressions)


def run_lint(
    paths: Sequence[str],
    *,
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    root: Optional[str] = None,
) -> LintReport:
    """Run every applicable checker over ``paths`` and return the report."""
    select_list = [p.strip() for p in select if p.strip()]
    ignore_list = [p.strip() for p in ignore if p.strip()]
    known = set(all_rules())
    for pattern in select_list + ignore_list:
        if not any(rule == pattern or rule.startswith(pattern) for rule in known):
            raise ConfigurationError(
                f"--select/--ignore pattern {pattern!r} matches no known rule "
                f"(see `repro lint --list-rules`)"
            )

    files = collect_files(paths)
    project = Project(root if root is not None else os.getcwd())
    report = LintReport(files_scanned=len(files))
    for path in files:
        findings, suppressed = lint_file(path, project)
        report.suppressed += suppressed
        report.findings.extend(
            f for f in findings if _selected(f.rule, select_list, ignore_list)
        )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
