"""Entry point for ``python -m repro``."""

import os
import sys

from .runtime.cli import main

if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe mid-output;
        # redirect stdout to devnull so the interpreter's shutdown flush does
        # not traceback, and report the truncated write in the exit status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 1
    raise SystemExit(status)
