"""One-shot reproduction report.

Runs every (light) experiment in the registry and renders a single text
report: the regenerated tables, each figure's series, and the expectation the
paper states for it.  ``examples/reproduce_all.py`` is a thin wrapper around
:func:`reproduction_report`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .experiments import EXPERIMENTS, Experiment
from .series import FigureData, TableData


def render_artifact(artifact: object, *, max_points: int = 8) -> str:
    """Render one experiment artefact (table, figure or raw object) as text."""
    if isinstance(artifact, TableData):
        return artifact.render()
    if isinstance(artifact, FigureData):
        return artifact.render(max_points=max_points)
    return repr(artifact)


def run_experiments(
    identifiers: Optional[Sequence[str]] = None,
    *,
    include_heavy: bool = False,
) -> List[tuple]:
    """Run experiments and return (experiment, artifact) pairs."""
    if identifiers is None:
        identifiers = [
            name
            for name, experiment in EXPERIMENTS.items()
            if include_heavy or not experiment.heavy
        ]
    results = []
    for name in identifiers:
        experiment: Experiment = EXPERIMENTS[name]
        results.append((experiment, experiment.run()))
    return results


def render_report(pairs: Sequence[tuple], *, max_points: int = 8) -> str:
    """Render (experiment, artifact) pairs as the full text report."""
    lines = [
        "Reproduction report: Interconnection Networks for Scalable Quantum Computers",
        "=" * 78,
    ]
    for experiment, artifact in pairs:
        lines.append("")
        lines.append(f"[{experiment.identifier}] {experiment.description}")
        lines.append(f"paper expectation: {experiment.expectation}")
        lines.append("-" * 78)
        lines.append(render_artifact(artifact, max_points=max_points))
    lines.append("")
    lines.append(
        "See EXPERIMENTS.md for the paper-vs-measured comparison of every artefact."
    )
    return "\n".join(lines)


def reproduction_report(
    identifiers: Optional[Sequence[str]] = None,
    *,
    include_heavy: bool = False,
    max_points: int = 8,
) -> str:
    """Render the full reproduction report as text (serial, uncached).

    ``python -m repro report`` produces the same report through the parallel,
    cached :class:`repro.runtime.ExperimentRunner`.
    """
    pairs = run_experiments(identifiers, include_heavy=include_heavy)
    return render_report(pairs, max_points=max_points)
