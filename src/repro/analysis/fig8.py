"""Figure 8: EPR error after purification vs. number of rounds.

The paper plots the error (1 - fidelity) of surviving EPR pairs as a function
of the number of tree-purification rounds, for the DEJMPS and BBPSSW protocols
and initial fidelities 0.99, 0.999 and 0.9999.  Expected shape: DEJMPS
converges in a handful of rounds to a noise floor set by the local operation
errors; BBPSSW needs 5-10x more rounds and plateaus at a higher error.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..physics.parameters import IonTrapParameters
from ..physics.purification import get_protocol
from ..physics.states import BellDiagonalState
from .series import FigureData, Series

#: Initial fidelities plotted in the paper.
DEFAULT_INITIAL_FIDELITIES = (0.99, 0.999, 0.9999)
#: Protocols compared in the paper.
DEFAULT_PROTOCOLS = ("bbpssw", "dejmps")


def figure8(
    params: Optional[IonTrapParameters] = None,
    *,
    initial_fidelities: Sequence[float] = DEFAULT_INITIAL_FIDELITIES,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    max_rounds: int = 25,
) -> FigureData:
    """Regenerate Figure 8's series."""
    params = params or IonTrapParameters.default()
    rounds = list(range(max_rounds + 1))
    series = []
    for protocol_name in protocols:
        protocol = get_protocol(protocol_name, params)
        for fidelity in initial_fidelities:
            state = BellDiagonalState.werner(fidelity)
            errors = protocol.error_series(state, max_rounds)
            series.append(
                Series.from_points(
                    f"{protocol.name} protocol, initial fidelity={fidelity}",
                    rounds,
                    errors,
                )
            )
    return FigureData(
        name="figure8",
        title="EPR qubit error after purification vs purification rounds",
        x_label="purification rounds",
        y_label="EPR error (1 - fidelity)",
        series=tuple(series),
        notes=(
            "DEJMPS converges in a few rounds to the operation-error floor; "
            "BBPSSW converges ~5-10x slower and to a higher floor."
        ),
    )


def rounds_to_converge(
    protocol_name: str,
    initial_fidelity: float,
    params: Optional[IonTrapParameters] = None,
    *,
    tolerance: float = 1.05,
    max_rounds: int = 60,
) -> int:
    """Rounds needed to get within ``tolerance`` of the protocol's best error."""
    params = params or IonTrapParameters.default()
    protocol = get_protocol(protocol_name, params)
    state = BellDiagonalState.werner(initial_fidelity)
    best_fidelity = protocol.max_achievable_fidelity(state)
    best_error = 1.0 - best_fidelity
    errors = protocol.error_series(state, max_rounds)
    for rounds, error in enumerate(errors):
        if error <= best_error * tolerance:
            return rounds
    return max_rounds
