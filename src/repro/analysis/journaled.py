"""Consume journaled sweep results in the analysis layer.

A resumable sweep leaves one JSONL journal behind (see
:mod:`repro.runtime.journal`); these helpers turn that store back into the
analysis layer's own shapes, so a figure can be rebuilt from a finished —
or even a partially finished — sweep without recomputing a single point:

* :func:`journal_records` — the successfully completed points' results
  (for scenario sweeps these are the flat benchmark records);
* :func:`journal_series` — one :class:`~repro.analysis.series.Series`
  extracted by dotted record paths, e.g. ``x="spec.topology.width"``
  against ``y="makespan_us"``.

Failed points are excluded (they carry no result columns); callers that
need the failure records should read the journal's status via
:func:`repro.runtime.journal.journal_status`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..errors import ConfigurationError
from ..runtime.journal import read_journal
from .series import Series


def journal_records(path: str) -> List[Dict[str, Any]]:
    """The results of every successfully completed point, in key order.

    Key order is deterministic (keys are parameter hashes), so two loads of
    the same journal — or of journals from a clean run and a crash-resumed
    run of the same sweep — produce identically ordered records.
    """
    state = read_journal(path)
    records = []
    for key in sorted(state.ok_points):
        result = state.ok_points[key].result
        if isinstance(result, Mapping):
            records.append(dict(result))
        else:
            records.append({"key": key, "result": result})
    return records


def _dig(record: Mapping[str, Any], dotted: str) -> Any:
    value: Any = record
    for part in dotted.split("."):
        if not isinstance(value, Mapping) or part not in value:
            raise ConfigurationError(
                f"record has no field {dotted!r} (missing {part!r}); "
                f"top-level keys: {sorted(record)[:12]}"
            )
        value = value[part]
    return value


def journal_series(
    path: str,
    *,
    x: str,
    y: str,
    label: Optional[str] = None,
) -> Series:
    """Build one curve from a sweep journal by dotted record paths.

    Points are sorted by x value, which is what the figure containers
    expect; both fields must resolve to numbers in every completed record.
    """
    records = journal_records(path)
    if not records:
        raise ConfigurationError(f"{path} holds no completed points to plot")
    pairs = sorted(
        (float(_dig(record, x)), float(_dig(record, y))) for record in records
    )
    return Series.from_points(
        label or f"{y} vs {x}",
        [pair[0] for pair in pairs],
        [pair[1] for pair in pairs],
    )
