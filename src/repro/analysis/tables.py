"""Tables 1 and 2 plus derived channel quantities.

Table 1 lists the ion-trap operation times, Table 2 the error probabilities;
the derived table collects the headline numbers quoted in the text: the
ballistic/teleportation latency crossover (~600 cells), the corner-to-corner
ballistic error on a 1000x1000 grid (>1e-3, the motivation for teleportation),
and the 392 = 2**3 x 49 EPR pairs per logical communication.
"""

from __future__ import annotations

from typing import Optional

from ..core.budget import EPRBudgetModel
from ..core.crossover import crossover_distance_cells
from ..core.logical import STEANE_LEVEL_2, pairs_per_logical_communication
from ..physics.ballistic import ballistic_error
from ..physics.parameters import IonTrapParameters
from .series import TableData


def table1(params: Optional[IonTrapParameters] = None) -> TableData:
    """Table 1: time constants for ion-trap operations (microseconds)."""
    params = params or IonTrapParameters.default()
    times = params.times
    rows = (
        ("One-Qubit Gate", "t_1q", times.one_qubit_gate),
        ("Two-Qubit Gate", "t_2q", times.two_qubit_gate),
        ("Move One Cell", "t_mv", times.move_cell),
        ("Measure", "t_ms", times.measure),
        ("Generate", "t_gen", times.generate),
        ("Teleport", "t_tprt", times.teleport(0.0)),
        ("Purify", "t_prfy", times.purify_round(0.0)),
    )
    return TableData(
        name="table1",
        title="Time constants for operations in ion trap technology (us)",
        columns=("Operation", "Variable", "Time (us)"),
        rows=rows,
        notes="Teleport/purify exclude the distance-dependent classical bit transport.",
    )


def table2(params: Optional[IonTrapParameters] = None) -> TableData:
    """Table 2: error probability constants for ion-trap operations."""
    params = params or IonTrapParameters.default()
    errors = params.errors
    rows = (
        ("One-Qubit Gate", "p_1q", errors.one_qubit_gate),
        ("Two-Qubit Gate", "p_2q", errors.two_qubit_gate),
        ("Move One Cell", "p_mv", errors.move_cell),
        ("Measure", "p_ms", errors.measure),
    )
    return TableData(
        name="table2",
        title="Error probability constants for ion trap operations",
        columns=("Operation", "Variable", "Error probability"),
        rows=rows,
    )


def derived_channel_table(
    params: Optional[IonTrapParameters] = None,
    *,
    simulated_distance_hops: int = 30,
) -> TableData:
    """Headline derived quantities quoted in the paper's text."""
    params = params or IonTrapParameters.default()
    crossover = crossover_distance_cells(params)
    corner_to_corner_cells = 2 * 999  # 1000x1000 dense grid, corner to corner.
    corner_error = ballistic_error(0.0, corner_to_corner_cells, params)
    budget = EPRBudgetModel(params).budget(simulated_distance_hops)
    pairs_ideal = pairs_per_logical_communication(budget.endpoint_rounds, STEANE_LEVEL_2)
    rows = (
        ("Ballistic/teleport latency crossover", "cells", float(crossover)),
        ("Corner-to-corner ballistic error (1000x1000 grid)", "error", corner_error),
        ("Fault-tolerance threshold", "error", params.threshold_error),
        (
            f"Endpoint purification depth at {simulated_distance_hops} hops",
            "rounds",
            float(budget.endpoint_rounds),
        ),
        (
            "EPR pairs per logical communication (2^rounds x 49)",
            "pairs",
            float(pairs_ideal),
        ),
        (
            "Expected pairs per logical communication (with yield)",
            "pairs",
            budget.pairs_teleported * STEANE_LEVEL_2.physical_qubits,
        ),
    )
    return TableData(
        name="derived",
        title="Derived channel quantities quoted in the paper's text",
        columns=("Quantity", "Unit", "Value"),
        rows=rows,
        notes="The paper quotes ~600 cells, >1e-3 corner error and 392 pairs.",
    )
