"""Figure 9: EPR error at the logical qubit vs. teleportation hop count.

The paper chains an EPR pair through up to ~70 teleportations whose link pairs
have a fixed initial fidelity, for initial errors 1e-4 down to 1e-8, and marks
the fault-tolerance threshold (7.5e-5) as a horizontal line.  Expected shape:
error grows roughly linearly with hop count (so 64 hops at 1e-4 initial error
lands near 1e-2 — the paper's "factor of 100"), and the low-initial-error
curves flatten onto the per-hop gate/measurement error floor.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..physics.parameters import IonTrapParameters
from ..physics.teleportation import chained_teleportation_series
from .series import FigureData, Series

#: Initial EPR errors plotted in the paper.
DEFAULT_INITIAL_ERRORS = (1e-4, 1e-5, 1e-6, 1e-7, 1e-8)


def figure9(
    params: Optional[IonTrapParameters] = None,
    *,
    initial_errors: Sequence[float] = DEFAULT_INITIAL_ERRORS,
    max_hops: int = 70,
) -> FigureData:
    """Regenerate Figure 9's series (plus the threshold line)."""
    params = params or IonTrapParameters.default()
    hops = list(range(max_hops + 1))
    series = []
    for error in initial_errors:
        fidelity = 1.0 - error
        fidelities = chained_teleportation_series(fidelity, max_hops, fidelity, params)
        series.append(
            Series.from_points(
                f"{error:.0e} initial error",
                hops,
                [1.0 - f for f in fidelities],
            )
        )
    series.append(
        Series.from_points(
            "threshold error",
            hops,
            [params.threshold_error] * len(hops),
        )
    )
    return FigureData(
        name="figure9",
        title="EPR error at the logical qubit vs number of teleportations",
        x_label="distance (teleportation hops)",
        y_label="EPR error (1 - fidelity)",
        series=tuple(series),
        notes=(
            "Error grows ~linearly with hops; 64 hops at 1e-4 initial error is "
            "~100x worse, and low-error curves floor at the per-hop gate error."
        ),
    )


def error_amplification(
    initial_error: float,
    hops: int,
    params: Optional[IonTrapParameters] = None,
) -> float:
    """Factor by which the EPR error grows after ``hops`` teleportations."""
    params = params or IonTrapParameters.default()
    fidelity = 1.0 - initial_error
    final = chained_teleportation_series(fidelity, hops, fidelity, params)[-1]
    return (1.0 - final) / initial_error
