"""Regeneration of every table and figure in the paper's evaluation.

Each ``figN.py`` module exposes a ``figureN()`` function that returns a
:class:`~repro.analysis.series.FigureData` (a set of named series plus axis
metadata) and the per-figure parameters match the paper's.  ``tables.py``
renders Tables 1 and 2 plus the derived quantities, and ``experiments.py``
keeps the registry used by the benchmark harness and EXPERIMENTS.md.
"""

from .series import FigureData, Series, TableData
from .sweeps import geometric_space, linear_space
from .fig8 import figure8
from .fig9 import figure9
from .fig10 import figure10
from .fig11 import figure11
from .fig12 import figure12
from .fig16 import figure16
from .fidelity_bandwidth import fidelity_bandwidth_tradeoff, scenario_fidelity_table
from .service_metrics import service_load_sweep, service_metrics_table
from .tables import table1, table2, derived_channel_table
from .experiments import EXPERIMENTS, Experiment, get_experiment, list_experiments
from .journaled import journal_records, journal_series
from .report import reproduction_report, run_experiments

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "FigureData",
    "Series",
    "TableData",
    "derived_channel_table",
    "fidelity_bandwidth_tradeoff",
    "figure10",
    "figure11",
    "figure12",
    "figure16",
    "figure8",
    "figure9",
    "geometric_space",
    "get_experiment",
    "journal_records",
    "journal_series",
    "linear_space",
    "list_experiments",
    "reproduction_report",
    "run_experiments",
    "scenario_fidelity_table",
    "service_load_sweep",
    "service_metrics_table",
    "table1",
    "table2",
]
