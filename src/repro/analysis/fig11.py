"""Figure 11: EPR pairs *teleported* vs. distance, per purification placement.

Same sweep as Figure 10 but counting only the pairs that transit the
teleportation channel (the scarce, contended resource).  Expected shape and
ordering, as in the paper: the between-teleport policies transmit by far the
most pairs, endpoint-only sits in the middle, and purifying the virtual wires
before use transmits the fewest — which is why the paper's final design purifies
both on the virtual wires and at the endpoints.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.budget import EPRBudgetModel
from ..core.placement import PurificationPlacement, standard_schemes
from ..physics.parameters import IonTrapParameters
from .fig10 import DEFAULT_DISTANCES
from .series import FigureData, Series


def figure11(
    params: Optional[IonTrapParameters] = None,
    *,
    distances: Sequence[int] = DEFAULT_DISTANCES,
    placements: Optional[Sequence[PurificationPlacement]] = None,
    protocol: str = "dejmps",
) -> FigureData:
    """Regenerate Figure 11's series."""
    params = params or IonTrapParameters.default()
    placements = list(placements) if placements is not None else standard_schemes()
    series = []
    for placement in placements:
        model = EPRBudgetModel(params, protocol=protocol, placement=placement)
        teleported = [model.budget(hops).pairs_teleported for hops in distances]
        label = f"{protocol.upper()} protocol {placement.label}"
        series.append(Series.from_points(label, list(distances), teleported))
    return FigureData(
        name="figure11",
        title="EPR pairs teleported through the channel vs distance and placement",
        x_label="distance (teleportation hops)",
        y_label="EPR pairs teleported",
        series=tuple(series),
        notes=(
            "Virtual-wire (before-teleport) purification minimises traffic through the "
            "teleporters; after-teleport purification maximises it."
        ),
    )
