"""Figure 10: total EPR pairs consumed vs. distance, per purification placement.

For each of the five placement policies (purify twice/once after each
teleport, twice/once before teleport, only at the end) the paper plots the
total number of EPR pairs consumed — link pairs included — to deliver one
above-threshold pair over 5..60 teleportation hops with the DEJMPS protocol.

Expected shape: the between-teleport ("after each teleport") policies grow
exponentially with distance and dominate everything else; the endpoint-only
and virtual-wire policies stay within a small factor of each other and grow
roughly linearly with distance.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.budget import EPRBudgetModel
from ..core.placement import PurificationPlacement, standard_schemes
from ..physics.parameters import IonTrapParameters
from .series import FigureData, Series

#: Distances (hops) sampled, matching the paper's 5..60 axis.
DEFAULT_DISTANCES = tuple(range(5, 61, 5))


def figure10(
    params: Optional[IonTrapParameters] = None,
    *,
    distances: Sequence[int] = DEFAULT_DISTANCES,
    placements: Optional[Sequence[PurificationPlacement]] = None,
    protocol: str = "dejmps",
) -> FigureData:
    """Regenerate Figure 10's series."""
    params = params or IonTrapParameters.default()
    placements = list(placements) if placements is not None else standard_schemes()
    series = []
    for placement in placements:
        model = EPRBudgetModel(params, protocol=protocol, placement=placement)
        totals = [model.budget(hops).total_pairs for hops in distances]
        label = f"{protocol.upper()} protocol {placement.label}"
        series.append(Series.from_points(label, list(distances), totals))
    return FigureData(
        name="figure10",
        title="Total EPR pairs consumed vs distance and purification placement",
        x_label="distance (teleportation hops)",
        y_label="total EPR pairs used",
        series=tuple(series),
        notes=(
            "Purifying after every teleport is exponentially expensive; endpoint-only "
            "and virtual-wire placements stay within a small factor of each other."
        ),
    )
