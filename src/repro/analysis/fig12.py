"""Figure 12: EPR pairs teleported vs. a uniform operation error rate.

Every operation error (one-/two-qubit gates, movement per cell, measurement,
and state preparation) is set to the same value, swept from 1e-9 to 1e-4, and
the number of pairs that must be teleported to sustain one above-threshold
delivered pair at a fixed distance is computed for each placement policy.

Expected shape: all curves end abruptly near 1e-5 — the point where the
purification protocols' maximum achievable fidelity falls below the
fault-tolerance threshold and the whole distribution network breaks down —
and within the working regime the resource counts vary by roughly two orders
of magnitude across the four-decade error sweep.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core.budget import EPRBudgetModel
from ..core.placement import PurificationPlacement, standard_schemes
from ..physics.parameters import IonTrapParameters
from .series import FigureData, Series
from .sweeps import decades

#: Error rates swept (1e-9 .. 1e-4, three samples per decade).
DEFAULT_ERROR_RATES = tuple(decades(-9, -4, per_decade=3))
#: Channel length used for the sweep (the paper does not state it; we use the
#: 16x16 machine's worst-case Manhattan distance, 32 hops, and document it).
DEFAULT_DISTANCE_HOPS = 32


def figure12(
    *,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
    distance_hops: int = DEFAULT_DISTANCE_HOPS,
    placements: Optional[Sequence[PurificationPlacement]] = None,
    protocol: str = "dejmps",
    base_params: Optional[IonTrapParameters] = None,
) -> FigureData:
    """Regenerate Figure 12's series.

    Infeasible points (where purification can no longer reach the threshold)
    are reported as ``inf`` so the "curves end abruptly" behaviour is visible
    and testable.
    """
    placements = list(placements) if placements is not None else standard_schemes()
    series = []
    overrides = {}
    if base_params is not None:
        overrides = {
            "cells_per_hop": base_params.cells_per_hop,
            "router_overhead_cells": base_params.router_overhead_cells,
            "purify_move_cells": base_params.purify_move_cells,
            "endpoint_local_cells": base_params.endpoint_local_cells,
            "threshold_error": base_params.threshold_error,
        }
    for placement in placements:
        values = []
        for error in error_rates:
            params = IonTrapParameters.uniform_error(error, **overrides)
            model = EPRBudgetModel(params, protocol=protocol, placement=placement)
            budget = model.budget(distance_hops)
            values.append(budget.pairs_teleported if budget.feasible else math.inf)
        label = f"{protocol.upper()} protocol {placement.label}"
        series.append(Series.from_points(label, list(error_rates), values))
    return FigureData(
        name="figure12",
        title="EPR pairs teleported vs uniform operation error rate",
        x_label="error rate of all operations",
        y_label="EPR pairs teleported",
        series=tuple(series),
        notes=(
            f"Distance fixed at {distance_hops} hops; curves become infeasible (inf) "
            "near 1e-5 where purification can no longer reach the threshold."
        ),
    )


def breakdown_error_rate(
    *,
    distance_hops: int = DEFAULT_DISTANCE_HOPS,
    protocol: str = "dejmps",
    placement: Optional[PurificationPlacement] = None,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
) -> float:
    """Smallest swept error rate at which the network becomes infeasible."""
    placement = placement or standard_schemes()[-1]
    for error in sorted(error_rates):
        params = IonTrapParameters.uniform_error(error)
        model = EPRBudgetModel(params, protocol=protocol, placement=placement)
        if not model.budget(distance_hops).feasible:
            return error
    return math.inf
