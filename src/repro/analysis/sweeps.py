"""Small sweep helpers shared by the figure generators."""

from __future__ import annotations

import math
from typing import List

from ..errors import ConfigurationError


def linear_space(start: float, stop: float, count: int) -> List[float]:
    """``count`` evenly spaced values from ``start`` to ``stop`` inclusive."""
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if count == 1:
        return [float(start)]
    step = (stop - start) / (count - 1)
    return [start + step * i for i in range(count)]


def geometric_space(start: float, stop: float, count: int) -> List[float]:
    """``count`` logarithmically spaced values from ``start`` to ``stop``."""
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if start <= 0 or stop <= 0:
        raise ConfigurationError("geometric_space needs positive endpoints")
    if count == 1:
        return [float(start)]
    ratio = (stop / start) ** (1.0 / (count - 1))
    return [start * ratio ** i for i in range(count)]


def integer_range(start: int, stop: int, step: int = 1) -> List[int]:
    """Inclusive integer range, validating the step direction."""
    if step == 0:
        raise ConfigurationError("step must be non-zero")
    values = list(range(start, stop + (1 if step > 0 else -1), step))
    if not values:
        raise ConfigurationError(f"empty range {start}..{stop} step {step}")
    return values


def decades(start_exponent: int, stop_exponent: int, per_decade: int = 1) -> List[float]:
    """Values spanning powers of ten, ``per_decade`` samples per decade."""
    if per_decade < 1:
        raise ConfigurationError(f"per_decade must be >= 1, got {per_decade}")
    lo, hi = sorted((start_exponent, stop_exponent))
    count = (hi - lo) * per_decade + 1
    return [10.0 ** (lo + i / per_decade) for i in range(count)]


def nearest_index(values: List[float], target: float) -> int:
    """Index of the value closest to ``target``."""
    if not values:
        raise ConfigurationError("values must be non-empty")
    return min(range(len(values)), key=lambda i: abs(values[i] - target))


def crossover_index(values: List[float], threshold: float) -> int:
    """First index at which ``values`` crosses above ``threshold`` (-1 if never)."""
    for i, value in enumerate(values):
        if value is not None and not math.isnan(value) and value > threshold:
            return i
    return -1
