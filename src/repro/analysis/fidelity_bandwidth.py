"""Fidelity-vs-bandwidth trade-off analysis.

The paper's central quality metric is the fidelity of delivered EPR pairs;
its central cost metric is bandwidth (raw pairs consumed).  Purification
converts one into the other: every extra endpoint tree level multiplies the
raw-pair cost by slightly more than 2 and drives the delivered error down by
the protocol's convergence rate — until the local-operation noise floor, past
which bandwidth buys nothing.  This module quantifies that trade-off:

* :func:`fidelity_bandwidth_tradeoff` — the analytical curve: delivered error
  against expected raw-pair cost, one series per channel distance, for
  purification levels 0..N (the curve a scenario's ``noise.target_fidelity``
  implicitly walks when it selects a level).
* :func:`scenario_fidelity_table` — reduces ``run_record`` result records
  (both backends) to a per-scenario fidelity/bandwidth table, the shape the
  benchmark trajectory and reports consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..core.budget import EPRBudgetModel
from ..errors import ConfigurationError
from ..physics.parameters import IonTrapParameters
from ..physics.purification_tree import expected_pairs_for_rounds
from .series import FigureData, Series, TableData

#: Channel distances sampled by default (hops): neighbours to cross-machine.
DEFAULT_HOPS = (1, 4, 8, 16)
#: Endpoint purification levels swept by default.
DEFAULT_MAX_LEVEL = 6


def fidelity_bandwidth_tradeoff(
    params: Optional[IonTrapParameters] = None,
    *,
    hops: Sequence[int] = DEFAULT_HOPS,
    max_level: int = DEFAULT_MAX_LEVEL,
    protocol: str = "dejmps",
) -> FigureData:
    """Delivered error vs expected raw-pair cost per purification level.

    One series per channel distance; point ``k`` of a series is the endpoint
    state after ``k`` tree levels: x is the expected raw input pairs consumed
    per delivered pair (>= 1, ~``2**k``), y the delivered error.  The curve
    flattens at the protocol's noise floor — the bandwidth beyond which more
    purification no longer buys fidelity.
    """
    if max_level < 0:
        raise ConfigurationError(f"max_level must be non-negative, got {max_level}")
    if not hops:
        raise ConfigurationError("fidelity_bandwidth_tradeoff needs at least one distance")
    params = params or IonTrapParameters.default()
    model = EPRBudgetModel(params, protocol=protocol)
    series = []
    for distance in hops:
        arrival, _ = model.arrival_trajectory(distance)
        outcomes = model.protocol.iterate(arrival, max_level)
        costs = [1.0]
        errors = [arrival.error]
        for level in range(1, max_level + 1):
            costs.append(expected_pairs_for_rounds(outcomes[:level]))
            errors.append(outcomes[level - 1].error)
        series.append(
            Series.from_points(f"{distance} hops (arrival error {arrival.error:.2e})", costs, errors)
        )
    return FigureData(
        name="fidelity_bandwidth",
        title="Delivered EPR error vs raw-pair bandwidth cost per purification level",
        x_label="expected raw pairs per delivered pair",
        y_label="delivered error (1 - fidelity)",
        series=tuple(series),
        notes=(
            f"{protocol.upper()} endpoint purification; each point is one more tree "
            "level (~2x bandwidth). The flat tail is the local-operation noise floor."
        ),
    )


def scenario_fidelity_table(records: Iterable[Dict[str, object]]) -> TableData:
    """Per-scenario fidelity/bandwidth summary from ``run_record`` records.

    Records without fidelity accounting (no ``noise`` section) are skipped;
    the remaining rows carry the delivered-fidelity envelope next to the
    bandwidth actually spent (pairs transited per channel), which is the
    scenario-level view of :func:`fidelity_bandwidth_tradeoff`.
    """
    rows = []
    for record in records:
        fidelity = record.get("fidelity")
        if not isinstance(fidelity, dict):
            continue
        channels = int(record.get("channel_count", 0) or 0)
        rows.append(
            (
                record.get("name", "?"),
                record.get("backend", "?"),
                channels,
                fidelity.get("mean"),
                fidelity.get("min"),
                fidelity.get("target"),
                fidelity.get("below_target"),
            )
        )
    return TableData(
        name="scenario_fidelity",
        title="Delivered channel fidelity per scenario",
        columns=(
            "scenario",
            "backend",
            "channels",
            "mean fidelity",
            "min fidelity",
            "target",
            "below target",
        ),
        rows=tuple(rows),
        notes="Rows exist only for noise-tracked runs (scenarios with a noise section).",
    )


__all__ = [
    "DEFAULT_HOPS",
    "DEFAULT_MAX_LEVEL",
    "fidelity_bandwidth_tradeoff",
    "scenario_fidelity_table",
]
