"""Containers for regenerated figures and tables, with text rendering.

The benchmark harness prints the same rows/series the paper reports; these
containers keep the data structured (so tests can assert on shapes and
orderings) and render compact ASCII views for humans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Series:
    """One named curve: parallel x and y value lists."""

    label: str
    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: x and y lengths differ ({len(self.x)} vs {len(self.y)})"
            )

    @classmethod
    def from_points(cls, label: str, x: Sequence[float], y: Sequence[float]) -> "Series":
        return cls(label=label, x=tuple(x), y=tuple(y))

    def __len__(self) -> int:
        return len(self.x)

    @property
    def finite_y(self) -> List[float]:
        """Y values that are finite (infeasible points are inf/nan)."""
        return [v for v in self.y if v is not None and math.isfinite(v)]

    def y_at(self, x_value: float) -> Optional[float]:
        """Y value at the given x, or None if that x was not sampled."""
        for xv, yv in zip(self.x, self.y):
            if xv == x_value:
                return yv
        return None

    def is_monotonic_increasing(self, *, strict: bool = False) -> bool:
        values = self.finite_y
        pairs = zip(values, values[1:])
        if strict:
            return all(b > a for a, b in pairs)
        return all(b >= a - 1e-15 for a, b in pairs)

    def is_monotonic_decreasing(self, *, strict: bool = False) -> bool:
        values = self.finite_y
        pairs = zip(values, values[1:])
        if strict:
            return all(b < a for a, b in pairs)
        return all(b <= a + 1e-15 for a, b in pairs)


@dataclass(frozen=True)
class FigureData:
    """A regenerated figure: named series plus axis metadata."""

    name: str
    title: str
    x_label: str
    y_label: str
    series: tuple
    log_y: bool = True
    notes: str = ""

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.name}")

    @property
    def labels(self) -> List[str]:
        return [series.label for series in self.series]

    def render(self, *, max_points: int = 12) -> str:
        """Compact text rendering: one row per x sample, one column per series."""
        lines = [f"{self.name}: {self.title}", f"  x = {self.x_label}; y = {self.y_label}"]
        if not self.series:
            return "\n".join([*lines, "  (no series)"])
        xs = list(self.series[0].x)
        stride = max(len(xs) // max_points, 1)
        header = "  " + f"{self.x_label[:14]:>14s} | " + " | ".join(
            f"{s.label[:24]:>24s}" for s in self.series
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for i in range(0, len(xs), stride):
            row = [f"{_fmt(xs[i]):>14s}"]
            for series in self.series:
                value = series.y[i] if i < len(series.y) else float("nan")
                row.append(f"{_fmt(value):>24s}")
            lines.append("  " + " | ".join(row))
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TableData:
    """A regenerated table: column names and rows of values."""

    name: str
    title: str
    columns: tuple
    rows: tuple
    notes: str = ""

    def column(self, name: str) -> List[object]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.name}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows)) if self.rows else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"{self.name}: {self.title}"]
        header = "  " + " | ".join(f"{col:>{w}s}" for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in self.rows:
            lines.append(
                "  " + " | ".join(f"{_fmt(value):>{w}s}" for value, w in zip(row, widths))
            )
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
