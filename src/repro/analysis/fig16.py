"""Figure 16: benchmark runtime vs. interconnect resource allocation.

The paper runs the QFT communication pattern on a 16x16 grid of logical
qubits under the Home Base and Mobile Qubit layouts, fixes the area dedicated
to the interconnect (T', G and P nodes) and varies how that area is split
between teleporters/generators and queue purifiers (t = g = {1, 2, 4, 8} x p).
Runtimes are normalised to a machine with effectively unlimited resources
(t = g = p = 1024 in the paper).

Expected shape: the Home Base workload keeps many channels sharing each T'
node, so it is teleporter-bandwidth bound and tolerates (or benefits from)
taking area away from purifiers, while the Mobile Qubit workload is mostly
nearest-neighbour, leaves the teleporters idle and suffers when the purifiers
shrink (t = g = 8p worse than t = g = 4p).

Grid size defaults to 8x8 so the sweep is fast enough for a benchmark run;
pass ``grid_side=16`` and ``num_qubits=256`` for the paper-scale machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..network.nodes import ResourceAllocation
from ..physics.parameters import IonTrapParameters
from ..sim.machine import QuantumMachine
from ..sim.results import SimulationResult
from ..sim.simulator import CommunicationSimulator
from ..workloads.qft import qft_stream
from .series import FigureData, Series

#: t = g = ratio x p configurations swept (the paper highlights 1, 2, 4, 8).
DEFAULT_RATIOS = (1, 2, 4, 8)
#: Interconnect area units per tile split between t, g and p in the sweep.
DEFAULT_AREA_UNITS = 18
#: Layouts compared.
DEFAULT_LAYOUTS = ("home_base", "mobile_qubit")


@dataclass(frozen=True)
class Fig16Point:
    """One simulated configuration of the Figure 16 sweep."""

    layout: str
    ratio: int
    allocation: ResourceAllocation
    result: SimulationResult
    normalised_runtime: float


def allocation_for_ratio(ratio: int, area_units: int = DEFAULT_AREA_UNITS) -> ResourceAllocation:
    """Split a fixed per-tile area between t = g = ratio x p and p.

    Solving ``2 * (ratio * p) + p = area`` for integer p >= 1.
    """
    if ratio < 1:
        raise ConfigurationError(f"ratio must be >= 1, got {ratio}")
    if area_units < 3:
        raise ConfigurationError(f"area_units must be >= 3, got {area_units}")
    purifiers = max(area_units // (2 * ratio + 1), 1)
    teleporters = max(ratio * purifiers, 1)
    return ResourceAllocation(
        teleporters_per_node=teleporters,
        generators_per_node=teleporters,
        purifiers_per_node=purifiers,
    )


def baseline_allocation(count: int = 1024) -> ResourceAllocation:
    """The effectively unlimited allocation used for normalisation."""
    return ResourceAllocation.uniform(count)


def run_configuration(
    layout: str,
    allocation: ResourceAllocation,
    *,
    grid_side: int = 8,
    num_qubits: Optional[int] = None,
    params: Optional[IonTrapParameters] = None,
    logical_gate_us: float = 300.0,
    allocator: str = "incremental",
) -> SimulationResult:
    """Simulate the QFT on one (layout, allocation) configuration."""
    machine = QuantumMachine(
        grid_side,
        allocation=allocation,
        layout=layout,
        num_qubits=num_qubits,
        params=params,
        logical_gate_us=logical_gate_us,
    )
    qubits = num_qubits or (grid_side * grid_side)
    stream = qft_stream(qubits)
    return CommunicationSimulator(machine, allocator=allocator).run(stream)


def figure16(
    *,
    grid_side: int = 8,
    num_qubits: Optional[int] = None,
    ratios: Sequence[int] = DEFAULT_RATIOS,
    area_units: int = DEFAULT_AREA_UNITS,
    layouts: Sequence[str] = DEFAULT_LAYOUTS,
    baseline_count: int = 1024,
    params: Optional[IonTrapParameters] = None,
) -> Tuple[FigureData, List[Fig16Point]]:
    """Regenerate Figure 16: normalised runtime per allocation and layout.

    Returns the figure series plus the raw per-configuration points (useful
    for inspecting utilisation and bottlenecks).
    """
    points: List[Fig16Point] = []
    series: List[Series] = []
    baselines: Dict[str, SimulationResult] = {}
    for layout in layouts:
        baselines[layout] = run_configuration(
            layout,
            baseline_allocation(baseline_count),
            grid_side=grid_side,
            num_qubits=num_qubits,
            params=params,
        )
    for layout in layouts:
        normalised: List[float] = []
        for ratio in ratios:
            allocation = allocation_for_ratio(ratio, area_units)
            result = run_configuration(
                layout,
                allocation,
                grid_side=grid_side,
                num_qubits=num_qubits,
                params=params,
            )
            value = result.normalised_to(baselines[layout])
            normalised.append(value)
            points.append(
                Fig16Point(
                    layout=layout,
                    ratio=ratio,
                    allocation=allocation,
                    result=result,
                    normalised_runtime=value,
                )
            )
        series.append(Series.from_points(layout, list(ratios), normalised))
    figure = FigureData(
        name="figure16",
        title="QFT runtime vs interconnect resource allocation (fixed area)",
        x_label="t = g = ratio x p",
        y_label=f"runtime normalised to t=g=p={baseline_count}",
        series=tuple(series),
        log_y=False,
        notes=(
            f"{grid_side}x{grid_side} grid, area {area_units} units/tile. Home Base is "
            "teleporter-bound and tolerates small purifiers; Mobile Qubit is "
            "purifier-bound and degrades as p shrinks."
        ),
    )
    return figure, points
