"""Registry of reproduced experiments (tables, figures, text claims).

Maps experiment identifiers to the callables that regenerate them, with the
paper's qualitative expectation attached.  The benchmark harness iterates this
registry, and EXPERIMENTS.md documents the measured outcome for each entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .fidelity_bandwidth import fidelity_bandwidth_tradeoff
from .fig10 import figure10
from .fig11 import figure11
from .fig12 import figure12
from .fig16 import figure16
from .fig8 import figure8
from .fig9 import figure9
from .service_metrics import service_load_sweep
from .tables import derived_channel_table, table1, table2


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper's evaluation."""

    identifier: str
    kind: str  # "table", "figure" or "claim"
    description: str
    expectation: str
    runner: Callable[[], object]
    heavy: bool = False

    def run(self) -> object:
        """Regenerate the artefact and return its data object."""
        return self.runner()


EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment(
        identifier="table1",
        kind="table",
        description="Ion-trap operation times",
        expectation="Matches the paper's Table 1 constants (122/122/121 us derived rows).",
        runner=table1,
    ),
    "table2": Experiment(
        identifier="table2",
        kind="table",
        description="Ion-trap error probabilities",
        expectation="Matches the paper's Table 2 constants.",
        runner=table2,
    ),
    "derived": Experiment(
        identifier="derived",
        kind="claim",
        description="Derived text claims: crossover, corner error, 392 pairs",
        expectation="~600-cell crossover, >1e-3 corner-to-corner error, 392 pairs per logical comm.",
        runner=derived_channel_table,
    ),
    "figure8": Experiment(
        identifier="figure8",
        kind="figure",
        description="Purification error vs rounds (DEJMPS vs BBPSSW)",
        expectation="DEJMPS converges in a few rounds; BBPSSW needs 5-10x more and plateaus higher.",
        runner=figure8,
    ),
    "figure9": Experiment(
        identifier="figure9",
        kind="figure",
        description="EPR error vs chained-teleportation hops",
        expectation="Roughly linear growth; ~100x amplification at 64 hops for 1e-4 initial error.",
        runner=figure9,
    ),
    "figure10": Experiment(
        identifier="figure10",
        kind="figure",
        description="Total EPR pairs vs distance per purification placement",
        expectation="After-teleport placements grow exponentially and dominate the others.",
        runner=figure10,
    ),
    "figure11": Experiment(
        identifier="figure11",
        kind="figure",
        description="Teleported EPR pairs vs distance per purification placement",
        expectation="Virtual-wire purification minimises channel traffic; after-teleport maximises it.",
        runner=figure11,
    ),
    "figure12": Experiment(
        identifier="figure12",
        kind="figure",
        description="Teleported EPR pairs vs uniform operation error rate",
        expectation="All placements become infeasible near 1e-5; ~100x spread in the working regime.",
        runner=figure12,
    ),
    "fidelity_bandwidth": Experiment(
        identifier="fidelity_bandwidth",
        kind="figure",
        description="Delivered EPR error vs raw-pair bandwidth per purification level",
        expectation=(
            "Each tree level ~doubles the raw-pair cost and cuts the delivered error "
            "until the local-operation noise floor flattens the curve."
        ),
        runner=fidelity_bandwidth_tradeoff,
    ),
    "service_metrics": Experiment(
        identifier="service_metrics",
        kind="figure",
        description="Steady-state service metrics vs offered load (open-loop traffic)",
        expectation=(
            "Delivered load saturates at the fabric's service capacity while the "
            "completion-time p99 keeps growing with offered load."
        ),
        runner=service_load_sweep,
    ),
    "figure16": Experiment(
        identifier="figure16",
        kind="figure",
        description="QFT runtime vs resource allocation (Home Base vs Mobile Qubit)",
        expectation=(
            "Home Base tolerates shrinking purifiers (teleporter-bound); Mobile Qubit "
            "degrades when t=g=8p (purifier-bound)."
        ),
        runner=lambda: figure16()[0],
        heavy=True,
    ),
}


def list_experiments(*, include_heavy: bool = True) -> List[str]:
    """Identifiers of all registered experiments."""
    return [
        name
        for name, experiment in EXPERIMENTS.items()
        if include_heavy or not experiment.heavy
    ]


def get_experiment(identifier: str) -> Experiment:
    """Look up an experiment by identifier."""
    if identifier not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {identifier!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[identifier]
