"""Steady-state service metrics under increasing offered load.

The batch figures answer "how long does one program take"; service mode asks
the operator's question instead: how much sustained EPR-distribution load can
the machine carry, and what happens to tail latency as it saturates?  This
module sweeps the offered load of a service scenario by scaling every
tenant's arrival rate and reduces the steady-state summaries to the classic
saturation figure:

* :func:`service_load_sweep` — delivered load, completion-time p99 and drop
  rate against offered load (channels/ms), one simulator run per scale
  factor, all arrivals drawn from the same deterministic substreams;
* :func:`service_metrics_table` — reduces service-mode ``run_record`` flat
  records (any backend) to a per-scenario steady-state table, the service
  counterpart of :func:`~repro.analysis.fidelity_bandwidth.scenario_fidelity_table`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from ..errors import ConfigurationError
from .series import FigureData, Series, TableData

#: Arrival-rate multipliers swept by default: half load to 4x overload.
DEFAULT_LOAD_SCALES = (0.5, 1.0, 2.0, 4.0)
#: The catalog scenario the default sweep drives.
DEFAULT_SCENARIO = "service_smoke"


def _scaled_traffic(traffic: Dict[str, Any], scale: float) -> Dict[str, Any]:
    """The same traffic section with every tenant's arrival rate scaled."""
    scaled = dict(traffic)
    scaled["tenants"] = {
        name: {**tenant, "mean_interarrival_us": tenant["mean_interarrival_us"] / scale}
        for name, tenant in traffic["tenants"].items()
    }
    return scaled


def service_load_sweep(
    *,
    scenario: str = DEFAULT_SCENARIO,
    scales: Sequence[float] = DEFAULT_LOAD_SCALES,
    backend: Optional[str] = None,
) -> FigureData:
    """Delivered load, p99 completion time and drop rate vs offered load.

    Each point replays the named catalog service scenario with every tenant's
    mean interarrival divided by the scale factor (so offered load grows
    linearly) on the same seed.  Delivered load saturates at the fabric's
    service capacity while the completion-time tail keeps growing — the
    queueing signature the batch makespan figures cannot show.
    """
    if not scales:
        raise ConfigurationError("service_load_sweep needs at least one load scale")
    if any(scale <= 0 for scale in scales):
        raise ConfigurationError(f"load scales must be positive, got {list(scales)}")
    from ..scenarios.catalog import get_scenario
    from ..scenarios.run import run

    base = get_scenario(scenario)
    if base.traffic is None:
        raise ConfigurationError(
            f"scenario {scenario!r} has no traffic section; "
            "the service load sweep needs an open-loop service scenario"
        )
    if backend is not None:
        base = base.with_backend(backend)
    traffic = base.to_dict()["traffic"]
    offered, delivered, p99, drops = [], [], [], []
    for scale in sorted(scales):
        spec = base.with_traffic(_scaled_traffic(traffic, scale))
        view = run(spec).service
        assert view is not None  # run() of a traffic spec always yields one
        offered.append(view.offered_load_per_ms)
        delivered.append(view.delivered_load_per_ms)
        p99.append(view.latency_p99_us)
        drops.append(view.drop_rate)
    return FigureData(
        name="service_metrics",
        title="Steady-state service metrics vs offered load",
        x_label="offered load (channels/ms)",
        y_label="delivered load (ch/ms) / p99 (us) / drop rate",
        series=(
            Series.from_points("delivered load (ch/ms)", offered, delivered),
            Series.from_points("completion p99 (us)", offered, p99),
            Series.from_points("drop rate", offered, drops),
        ),
        log_y=False,
        notes=(
            f"{scenario} scaled x{min(scales):g}..x{max(scales):g} on one seed; "
            "delivered load saturates at service capacity while the p99 tail grows."
        ),
    )


def service_metrics_table(records: Iterable[Dict[str, object]]) -> TableData:
    """Per-scenario steady-state summary from service-mode flat records.

    Batch records (no ``offered`` count) are skipped; the remaining rows are
    the headline numbers ``repro serve`` prints, in table form for reports
    and the benchmark trajectory.
    """
    rows = []
    for record in records:
        if "offered" not in record:
            continue
        rows.append(
            (
                record.get("name", "?"),
                record.get("backend", "?"),
                record.get("offered"),
                record.get("completed"),
                record.get("drop_rate"),
                record.get("offered_load_per_ms"),
                record.get("delivered_load_per_ms"),
                record.get("latency_p50_us"),
                record.get("latency_p99_us"),
                record.get("max_queue_depth"),
            )
        )
    return TableData(
        name="service_metrics",
        title="Steady-state service metrics per scenario",
        columns=(
            "scenario",
            "backend",
            "offered",
            "completed",
            "drop rate",
            "offered ch/ms",
            "delivered ch/ms",
            "p50 us",
            "p99 us",
            "max queue",
        ),
        rows=tuple(rows),
        notes="Rows exist only for service-mode runs (scenarios with a traffic section).",
    )


__all__ = [
    "DEFAULT_LOAD_SCALES",
    "DEFAULT_SCENARIO",
    "service_load_sweep",
    "service_metrics_table",
]
