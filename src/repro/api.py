"""The stable public facade: the blessed entry points, one import away.

External code — notebooks, downstream experiments, sweep drivers — should
import from :mod:`repro.api` and nothing deeper.  The internals it fronts
(:mod:`repro.runtime.runner`, the simulator stacks, the trace plumbing) are
rearranged freely between releases; this module's four callables are the
compatibility surface:

* :func:`load_scenario` — resolve a catalog name or a JSON/YAML file into a
  validated :class:`~repro.scenarios.spec.ScenarioSpec`;
* :func:`run` — execute one scenario (batch or service, per its spec) and
  return a typed :class:`~repro.scenarios.run.RunResult`;
* :func:`serve` — execute an open-loop service scenario (a ``traffic``
  section is required) and return its :class:`RunResult`;
* :func:`sweep` — fan many scenarios across the cached process pool and
  return their flat benchmark records.

>>> from repro import api
>>> result = api.run(api.load_scenario("smoke"))
>>> result.mode
'batch'
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .errors import ScenarioError
from .scenarios.run import RunResult
from .scenarios.spec import ScenarioSpec

__all__ = ["load_scenario", "run", "serve", "sweep"]


def _as_spec(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    return ScenarioSpec.from_dict(spec)


def load_scenario(source: str, name: Optional[str] = None) -> ScenarioSpec:
    """Resolve ``source`` into one validated scenario.

    ``source`` is a built-in catalog name (``repro scenarios list``) or a
    path to a JSON/YAML scenario file.  A file that defines several
    scenarios needs ``name`` to pick one.
    """
    from .scenarios import list_scenarios, load_scenario_file
    from .scenarios.catalog import get_scenario

    if source in list_scenarios():
        spec = get_scenario(source)
        if name is not None and name != spec.name:
            raise ScenarioError(
                f"catalog scenario {source!r} does not contain {name!r}"
            )
        return spec
    if not os.path.exists(source):
        raise ScenarioError(
            f"{source!r} is neither a built-in scenario ({list_scenarios()}) "
            "nor a scenario file"
        )
    specs = load_scenario_file(source)
    if name is not None:
        for spec in specs:
            if spec.name == name:
                return spec
        raise ScenarioError(
            f"{source} defines no scenario named {name!r}; "
            f"available: {[spec.name for spec in specs]}"
        )
    if len(specs) != 1:
        raise ScenarioError(
            f"{source} defines {len(specs)} scenarios; pass name= to pick one "
            f"from {[spec.name for spec in specs]}"
        )
    return specs[0]


def run(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    backend: Optional[str] = None,
) -> RunResult:
    """Execute one scenario and return its typed result.

    A spec with a ``traffic`` section runs in open-loop service mode,
    anything else in batch mode; ``result.mode`` says which view
    (``result.batch`` / ``result.service``) is populated.  ``backend``
    overrides ``runtime.backend`` for this run.
    """
    from .scenarios.run import run as run_spec

    resolved = _as_spec(spec)
    if backend is not None:
        resolved = resolved.with_backend(backend)
    return run_spec(resolved)


def serve(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    *,
    backend: Optional[str] = None,
) -> RunResult:
    """Execute one open-loop service scenario and return its typed result.

    Exactly :func:`run`, except a missing ``traffic`` section is an error
    instead of a silent fall-back to batch mode.
    """
    resolved = _as_spec(spec)
    if resolved.traffic is None:
        raise ScenarioError(
            f"scenario {resolved.name!r} has no traffic section; "
            "add one (or use repro.api.run for batch scenarios)"
        )
    return run(resolved, backend=backend)


def sweep(
    specs: Sequence[Union[ScenarioSpec, Mapping[str, Any]]],
    *,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    force: bool = False,
    journal: Optional[str] = None,
    point_timeout_s: Optional[float] = None,
    retries: int = 0,
    progress: bool = False,
) -> List[Dict[str, Any]]:
    """Fan scenarios across the cached process pool; flat records back.

    Each record is the scenario's :meth:`RunResult.flat_record` (the
    benchmark payload shape) plus ``cached``/``journaled`` provenance flags.
    Pool payloads are canonical (name/description stripped) so equivalent
    specs share a cache slot; records are re-labelled with caller-side
    identity.

    ``journal`` makes the sweep crash-resumable: every completed point is
    appended to one JSONL store, and re-running the same sweep loads it and
    executes only the missing points.  A point whose worker raises (or
    exceeds ``point_timeout_s``, after ``retries`` extra attempts) yields a
    record carrying an ``error`` field instead of result columns — its
    siblings always complete.
    """
    from .runtime.runner import ExperimentRunner
    from .scenarios.run import run_record

    resolved = [_as_spec(spec) for spec in specs]
    if not resolved:
        raise ScenarioError("sweep needs at least one scenario")
    if backend is not None:
        resolved = [spec.with_backend(backend) for spec in resolved]
    runner = ExperimentRunner(workers=workers, cache_dir=cache_dir, use_cache=use_cache)
    points = runner.sweep_records(
        run_record,
        [{"spec": spec.canonical_dict()} for spec in resolved],
        force=force,
        journal=journal,
        timeout_s=point_timeout_s,
        retries=retries,
        progress=progress,
    )
    records: List[Dict[str, Any]] = []
    for spec, point in zip(resolved, points):
        identity = {
            "name": spec.name,
            "label": spec.label,
            "spec": spec.to_dict(),
            "cached": point.cached,
            "journaled": point.journaled,
        }
        if point.error is not None:
            records.append({**identity, "error": point.error, "attempts": point.attempts})
        else:
            records.append({**point.result, **identity})
    return records
