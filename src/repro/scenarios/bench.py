"""Machine-readable benchmark payloads for the CI perf trajectory.

``python -m repro scenarios sweep --emit-bench out.json`` writes one of these
per run; CI uploads them as ``BENCH_<sha>.json`` artifacts, which strung
together over commits form the repository's recorded benchmark trajectory.
The payload is deliberately flat JSON: per-scenario makespan (the simulated
metric) and wall time (the computed-cost metric), plus enough identity (spec
hash, git sha, python version) to compare points across commits.
"""

from __future__ import annotations

import contextlib
import datetime
import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, List, Optional

#: Bump when the payload layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def current_git_sha() -> str:
    """Commit identity for the payload: $GITHUB_SHA, else git, else unknown."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    with contextlib.suppress(OSError):
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return "unknown"


def bench_payload(
    records: List[Dict[str, Any]],
    *,
    sha: Optional[str] = None,
    warm_start: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Assemble the benchmark JSON from per-scenario result records.

    Each record's own ``cached``/``journaled`` flags (attached by the caller
    from the sweep point's provenance) mark points served from the result
    cache or resumed from a sweep journal, so trajectory consumers can
    exclude free points from wall-time statistics; ``resume_hits`` and
    ``computed_points_per_sec`` are the sweep-throughput columns the CI
    trajectory records.  Failed points carry an ``error`` record instead of
    result columns and are counted in ``error_count``.

    ``warm_start`` overrides the cross-run warm-start counters recorded in
    the payload; by default the process-global cache's counters are used,
    which reflect this process's share of the sweep (pool workers keep their
    own caches).
    """
    if warm_start is None:
        from .warmstart import global_cache

        warm_start = global_cache().stats()
    scenarios = []
    computed_wall = 0.0
    computed_points = 0
    for record in records:
        cached = bool(record.get("cached", False))
        journaled = bool(record.get("journaled", False))
        scenarios.append({**record, "cached": cached, "journaled": journaled})
        if not cached and not journaled and "error" not in record:
            computed_wall += float(record.get("wall_time_s", 0.0))
            computed_points += 1
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "sha": sha or current_git_sha(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scenario_count": len(scenarios),
        "cache_hits": sum(1 for s in scenarios if s["cached"]),
        "resume_hits": sum(1 for s in scenarios if s["journaled"]),
        "error_count": sum(1 for s in scenarios if "error" in s),
        "computed_wall_time_s": computed_wall,
        "computed_points_per_sec": (
            computed_points / computed_wall if computed_wall > 0 else 0.0
        ),
        "warm_start": dict(warm_start),
        "total_makespan_us": sum(float(s.get("makespan_us", 0.0)) for s in scenarios),
        "scenarios": scenarios,
    }


def write_bench_file(path: str, payload: Dict[str, Any]) -> str:
    """Write a payload as pretty-printed JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
