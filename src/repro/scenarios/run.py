"""Building and running scenarios.

The bridge from declarative spec to simulation: a spec builds a
:class:`~repro.sim.machine.QuantumMachine` (through the topology registry)
and either an instruction stream (batch mode) or an open-loop traffic stream
(service mode, when the spec carries a ``traffic`` section), runs the
appropriate simulator, and reduces the outcome to a :class:`RunResult`.

``RunResult`` is the typed result surface: one envelope of identity fields
(name, spec hash, machine, backend …) plus exactly one populated *view* —
:class:`BatchView` for closed batch runs, :class:`ServiceView` for open-loop
service runs — with an exact JSON round-trip
(``RunResult.from_dict(json.loads(json.dumps(r.to_dict()))) == r``).

:func:`run_record` is the flat-dict entry point sweeps and the CLI use: it is
a module-level callable taking only the spec mapping, so
:meth:`repro.runtime.ExperimentRunner.sweep` can fan a scenario grid across
its multiprocessing pool and cache each point under the spec's hash.  For
batch scenarios its output is byte-for-byte the historical schema-2 record;
:func:`run_scenario` remains as a deprecated alias for it.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Union

from ..errors import ScenarioError
from ..network.nodes import ResourceAllocation
from ..network.routing import DimensionOrder
from ..physics.parameters import IonTrapParameters
from ..sim.machine import QuantumMachine
from ..sim.simulator import CommunicationSimulator
from ..workloads.instructions import InstructionStream
from ..workloads.registry import build_workload
from .spec import NoiseSpec, ScenarioSpec
from .warmstart import attach as attach_warm_start

#: Results carry a schema version so downstream consumers (the CI benchmark
#: trajectory) can evolve without guessing.  Version 2 added the fidelity
#: accounting columns (``noise``, ``fidelity``); batch records stay at 2.
RESULT_SCHEMA_VERSION = 2
#: Flat records of open-loop service runs (new in the service-mode release).
SERVICE_SCHEMA_VERSION = 3


def _as_spec(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    # Canonical (name-stripped) payloads arrive from the cache-keyed sweep
    # path; the caller reattaches its own naming to the result record.
    return ScenarioSpec.from_dict(spec, name="unnamed")


def _apply_noise(params: IonTrapParameters, noise: Optional[NoiseSpec]) -> IonTrapParameters:
    """Fold a scenario's noise overrides into the ion-trap parameter bundle."""
    if noise is None:
        return params
    errors = params.errors
    if noise.gate_error is not None:
        errors = replace(
            errors, one_qubit_gate=noise.gate_error, two_qubit_gate=noise.gate_error
        )
    if noise.measurement_error is not None:
        errors = replace(errors, measure=noise.measurement_error)
    if errors is not params.errors:
        params = params.with_errors(errors)
    if noise.base_fidelity is not None:
        params = replace(params, zero_prep_fidelity=noise.base_fidelity)
    return params


def build_machine(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> QuantumMachine:
    """Construct the machine a scenario describes.

    A ``noise`` section turns fidelity tracking on: its error overrides fold
    into the parameter bundle and its ``target_fidelity`` (when given) drives
    purification-level selection machine-wide.
    """
    spec = _as_spec(spec)
    topo = spec.topology
    physics = spec.physics
    runtime = spec.runtime
    noise = spec.noise
    routing = spec.network.routing if spec.network is not None else None
    params = IonTrapParameters.default()
    if topo.cells_per_hop != params.cells_per_hop:
        params = params.with_hop_cells(topo.cells_per_hop)
    params = _apply_noise(params, noise)
    machine = QuantumMachine(
        topo.width,
        topo.height,
        topology_kind=topo.kind,
        allocation=ResourceAllocation(
            teleporters_per_node=physics.teleporters,
            generators_per_node=physics.generators,
            purifiers_per_node=physics.purifiers,
            queue_depth=physics.queue_depth,
        ),
        layout=runtime.layout,
        num_qubits=spec.workload.num_qubits,
        params=params,
        protocol=physics.protocol,
        logical_gate_us=physics.logical_gate_us,
        routing_order=DimensionOrder(runtime.routing),
        generator_bandwidth_scale=physics.generator_bandwidth_scale,
        track_fidelity=noise is not None,
        target_fidelity=noise.target_fidelity if noise is not None else None,
        routing_policy=routing.policy if routing is not None else None,
        routing_hysteresis=routing.hysteresis if routing is not None else None,
        topology_options=dict(topo.options),
    )
    # Adopt (or create) the cross-run warm-start entry for this machine
    # structure: repeated sweep points and service runs then share channel
    # plans, EPR budgets, flow profiles and demand vectors.
    attach_warm_start(machine, spec)
    return machine


def build_stream(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> InstructionStream:
    """Construct the instruction stream a scenario describes."""
    spec = _as_spec(spec)
    return build_workload(spec.workload.kind, spec.workload.num_qubits, spec.workload.params)


# -- the typed result surface ---------------------------------------------------------


def _utilisation(payload: Any, where: str) -> Dict[str, float]:
    if not isinstance(payload, Mapping):
        raise ScenarioError(f"{where}.utilisation must be a mapping, got {payload!r}")
    return {str(key): float(value) for key, value in payload.items()}


@dataclass(frozen=True)
class BatchView:
    """The closed-batch outcome: one instruction stream run to completion."""

    operations: int
    channel_count: int
    total_hops: int
    makespan_us: float
    classical_messages: Optional[int]
    utilisation: Dict[str, float] = field(default_factory=dict)
    fidelity: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "operations": self.operations,
            "channel_count": self.channel_count,
            "total_hops": self.total_hops,
            "makespan_us": self.makespan_us,
            "classical_messages": self.classical_messages,
            "utilisation": dict(self.utilisation),
            "fidelity": dict(self.fidelity) if self.fidelity is not None else None,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BatchView":
        messages = payload.get("classical_messages")
        fidelity = payload.get("fidelity")
        return cls(
            operations=int(payload["operations"]),
            channel_count=int(payload["channel_count"]),
            total_hops=int(payload["total_hops"]),
            makespan_us=float(payload["makespan_us"]),
            classical_messages=int(messages) if messages is not None else None,
            utilisation=_utilisation(payload.get("utilisation", {}), "batch"),
            fidelity=dict(fidelity) if fidelity is not None else None,
        )


@dataclass(frozen=True)
class ServiceView:
    """The open-loop outcome: steady-state service metrics over the horizon."""

    duration_us: float
    makespan_us: float
    offered: int
    admitted: int
    dropped: int
    completed: int
    drop_rate: float
    offered_load_per_ms: float
    delivered_load_per_ms: float
    latency_p50_us: float
    latency_p99_us: float
    wait_p50_us: float
    wait_p99_us: float
    max_queue_depth: int
    utilisation: Dict[str, float] = field(default_factory=dict)
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    fidelity: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "duration_us": self.duration_us,
            "makespan_us": self.makespan_us,
            "offered": self.offered,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "completed": self.completed,
            "drop_rate": self.drop_rate,
            "offered_load_per_ms": self.offered_load_per_ms,
            "delivered_load_per_ms": self.delivered_load_per_ms,
            "latency_p50_us": self.latency_p50_us,
            "latency_p99_us": self.latency_p99_us,
            "wait_p50_us": self.wait_p50_us,
            "wait_p99_us": self.wait_p99_us,
            "max_queue_depth": self.max_queue_depth,
            "utilisation": dict(self.utilisation),
            "tenants": {name: dict(stats) for name, stats in self.tenants.items()},
            "fidelity": dict(self.fidelity) if self.fidelity is not None else None,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ServiceView":
        tenants_raw = payload.get("tenants", {})
        if not isinstance(tenants_raw, Mapping):
            raise ScenarioError(f"service.tenants must be a mapping, got {tenants_raw!r}")
        fidelity = payload.get("fidelity")
        return cls(
            duration_us=float(payload["duration_us"]),
            makespan_us=float(payload["makespan_us"]),
            offered=int(payload["offered"]),
            admitted=int(payload["admitted"]),
            dropped=int(payload["dropped"]),
            completed=int(payload["completed"]),
            drop_rate=float(payload["drop_rate"]),
            offered_load_per_ms=float(payload["offered_load_per_ms"]),
            delivered_load_per_ms=float(payload["delivered_load_per_ms"]),
            latency_p50_us=float(payload["latency_p50_us"]),
            latency_p99_us=float(payload["latency_p99_us"]),
            wait_p50_us=float(payload["wait_p50_us"]),
            wait_p99_us=float(payload["wait_p99_us"]),
            max_queue_depth=int(payload["max_queue_depth"]),
            utilisation=_utilisation(payload.get("utilisation", {}), "service"),
            tenants={str(name): dict(stats) for name, stats in tenants_raw.items()},
            fidelity=dict(fidelity) if fidelity is not None else None,
        )


@dataclass(frozen=True)
class RunResult:
    """One scenario run: an identity envelope plus exactly one populated view.

    ``batch`` is set for closed batch runs, ``service`` for open-loop service
    runs; never both.  :meth:`to_dict`/:meth:`from_dict` round-trip exactly
    through JSON, and :meth:`flat_record` produces the flat dict the sweep
    cache, benchmark trajectory and CLI tables consume (byte-identical to the
    historical schema-2 record for batch runs).
    """

    schema: int
    name: str
    label: str
    spec_hash: str
    spec: Dict[str, Any]
    machine: str
    workload: str
    topology_kind: str
    layout: str
    allocator: str
    backend: str
    wall_time_s: float
    batch: Optional[BatchView] = None
    service: Optional[ServiceView] = None

    def __post_init__(self) -> None:
        if (self.batch is None) == (self.service is None):
            raise ScenarioError(
                "a RunResult carries exactly one view: batch XOR service"
            )

    @property
    def mode(self) -> str:
        """``"batch"`` or ``"service"``."""
        return "service" if self.service is not None else "batch"

    @property
    def makespan_us(self) -> float:
        view = self.service if self.service is not None else self.batch
        assert view is not None  # __post_init__ guarantees one view
        return view.makespan_us

    # -- codecs -----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-safe form; :meth:`from_dict` round-trips it exactly."""
        return {
            "schema": self.schema,
            "mode": self.mode,
            "name": self.name,
            "label": self.label,
            "spec_hash": self.spec_hash,
            "spec": self.spec,
            "machine": self.machine,
            "workload": self.workload,
            "topology_kind": self.topology_kind,
            "layout": self.layout,
            "allocator": self.allocator,
            "backend": self.backend,
            "batch": self.batch.to_payload() if self.batch is not None else None,
            "service": self.service.to_payload() if self.service is not None else None,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        if not isinstance(payload, Mapping):
            raise ScenarioError(f"a RunResult payload must be a mapping, got {payload!r}")
        batch_raw = payload.get("batch")
        service_raw = payload.get("service")
        spec = payload.get("spec")
        if not isinstance(spec, Mapping):
            raise ScenarioError(f"RunResult.spec must be a mapping, got {spec!r}")
        return cls(
            schema=int(payload["schema"]),
            name=str(payload["name"]),
            label=str(payload["label"]),
            spec_hash=str(payload["spec_hash"]),
            spec=dict(spec),
            machine=str(payload["machine"]),
            workload=str(payload["workload"]),
            topology_kind=str(payload["topology_kind"]),
            layout=str(payload["layout"]),
            allocator=str(payload["allocator"]),
            backend=str(payload["backend"]),
            wall_time_s=float(payload["wall_time_s"]),
            batch=BatchView.from_payload(batch_raw) if batch_raw is not None else None,
            service=ServiceView.from_payload(service_raw) if service_raw is not None else None,
        )

    # -- the flat record ---------------------------------------------------------------

    def flat_record(self) -> Dict[str, Any]:
        """The flat dict the sweep cache and benchmark trajectory consume.

        Batch runs reproduce the historical schema-2 record byte-for-byte
        (same keys, same order, same values); service runs produce the flat
        schema-3 layout with the steady-state columns.
        """
        spec = self.spec
        noise = spec.get("noise")
        head: Dict[str, Any] = {
            "schema": self.schema,
            "name": self.name,
            "label": self.label,
            "spec_hash": self.spec_hash,
            "spec": self.spec,
            "machine": self.machine,
            "workload": self.workload,
            "topology_kind": self.topology_kind,
            "layout": self.layout,
            "allocator": self.allocator,
            "backend": self.backend,
        }
        if self.batch is not None:
            batch = self.batch
            head.update(
                {
                    "operations": batch.operations,
                    "channel_count": batch.channel_count,
                    "total_hops": batch.total_hops,
                    "makespan_us": batch.makespan_us,
                    "classical_messages": batch.classical_messages,
                    "utilisation": dict(batch.utilisation),
                    "noise": dict(noise) if noise is not None else None,
                    "fidelity": batch.fidelity,
                    "wall_time_s": self.wall_time_s,
                }
            )
            return head
        service = self.service
        assert service is not None  # __post_init__ guarantees one view
        head.update(
            {
                "offered": service.offered,
                "admitted": service.admitted,
                "dropped": service.dropped,
                "completed": service.completed,
                "drop_rate": service.drop_rate,
                "offered_load_per_ms": service.offered_load_per_ms,
                "delivered_load_per_ms": service.delivered_load_per_ms,
                "latency_p50_us": service.latency_p50_us,
                "latency_p99_us": service.latency_p99_us,
                "wait_p50_us": service.wait_p50_us,
                "wait_p99_us": service.wait_p99_us,
                "max_queue_depth": service.max_queue_depth,
                "duration_us": service.duration_us,
                "makespan_us": service.makespan_us,
                "utilisation": dict(service.utilisation),
                "tenants": {k: dict(v) for k, v in service.tenants.items()},
                "noise": dict(noise) if noise is not None else None,
                "fidelity": service.fidelity,
                "wall_time_s": self.wall_time_s,
            }
        )
        return head


def _envelope(
    spec: ScenarioSpec,
    *,
    schema: int,
    machine: QuantumMachine,
    workload: str,
    wall_time_s: float,
    batch: Optional[BatchView] = None,
    service: Optional[ServiceView] = None,
) -> RunResult:
    return RunResult(
        schema=schema,
        name=spec.name,
        label=spec.label,
        spec_hash=spec.spec_hash,
        spec=spec.to_dict(),
        machine=machine.describe(),
        workload=workload,
        topology_kind=spec.topology.kind,
        layout=spec.runtime.layout,
        allocator=spec.runtime.allocator,
        backend=spec.runtime.backend,
        wall_time_s=wall_time_s,
        batch=batch,
        service=service,
    )


# -- execution ------------------------------------------------------------------------


def run(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> RunResult:
    """Build and simulate one scenario, returning the typed :class:`RunResult`.

    A spec with a ``traffic`` section runs in open-loop service mode through
    :class:`~repro.service.ServiceSimulator`; otherwise the workload's
    instruction stream runs to completion in batch mode.  Both paths share
    the machine construction, so a traffic section changes *what is offered*,
    never *what machine serves it*.
    """
    spec = _as_spec(spec)
    if spec.traffic is not None:
        return _run_service(spec)
    return _run_batch(spec)


def _run_batch(spec: ScenarioSpec) -> RunResult:
    started = time.perf_counter()
    # An oversubscribed workload fails inside build_machine: the layout
    # refuses more logical qubits than the fabric has LQ sites.
    machine = build_machine(spec)
    stream = build_stream(spec)
    simulator = CommunicationSimulator(
        machine, allocator=spec.runtime.allocator, backend=spec.runtime.backend
    )
    result = simulator.run(stream, max_events=spec.runtime.max_events)
    wall_s = time.perf_counter() - started
    total_hops = sum(record.total_hops for record in result.operations)
    messages = result.metadata.get("classical_messages")
    return _envelope(
        spec,
        schema=RESULT_SCHEMA_VERSION,
        machine=machine,
        workload=stream.name,
        wall_time_s=wall_s,
        batch=BatchView(
            operations=len(result.operations),
            channel_count=result.channel_count,
            total_hops=total_hops,
            makespan_us=result.makespan_us,
            classical_messages=messages if isinstance(messages, int) else None,
            utilisation=dict(result.resource_utilisation),
            fidelity=result.fidelity_summary(),
        ),
    )


def _run_service(spec: ScenarioSpec) -> RunResult:
    from ..service import ServiceSimulator

    traffic = spec.traffic
    if traffic is None:  # pragma: no cover - guarded by run()
        raise ScenarioError(f"scenario {spec.name!r} has no traffic section")
    started = time.perf_counter()
    machine = build_machine(spec)
    simulator = ServiceSimulator(
        machine, allocator=spec.runtime.allocator, backend=spec.runtime.backend
    )
    result = simulator.run(traffic)
    wall_s = time.perf_counter() - started
    metrics = result.metrics
    tenants_raw = metrics.get("tenants", {})
    return _envelope(
        spec,
        schema=SERVICE_SCHEMA_VERSION,
        machine=machine,
        workload=f"service[{len(traffic.tenants)} tenants]",
        wall_time_s=wall_s,
        service=ServiceView(
            duration_us=result.duration_us,
            makespan_us=result.makespan_us,
            offered=int(metrics.get("offered", 0)),
            admitted=int(metrics.get("admitted", 0)),
            dropped=int(metrics.get("dropped", 0)),
            completed=int(metrics.get("completed", 0)),
            drop_rate=float(metrics.get("drop_rate", 0.0)),
            offered_load_per_ms=float(metrics.get("offered_load_per_ms", 0.0)),
            delivered_load_per_ms=float(metrics.get("delivered_load_per_ms", 0.0)),
            latency_p50_us=float(metrics.get("latency_p50_us", 0.0)),
            latency_p99_us=float(metrics.get("latency_p99_us", 0.0)),
            wait_p50_us=float(metrics.get("wait_p50_us", 0.0)),
            wait_p99_us=float(metrics.get("wait_p99_us", 0.0)),
            max_queue_depth=int(metrics.get("max_queue_depth", 0)),
            utilisation=dict(result.resource_utilisation),
            tenants={str(k): dict(v) for k, v in tenants_raw.items()},
            fidelity=result.fidelity_summary(),
        ),
    )


def run_record(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> Dict[str, Any]:
    """Run one scenario and return its flat record (the sweep/cache unit).

    This is the module-level callable :meth:`ExperimentRunner.sweep` ships to
    pool workers.  For batch scenarios the record is byte-identical to the
    historical schema-2 ``run_scenario`` output.
    """
    return run(spec).flat_record()


def run_scenario(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> Dict[str, Any]:
    """Deprecated alias for :func:`run_record` (the historical flat-dict API).

    Kept byte-compatible for one release; new code should call :func:`run`
    for the typed :class:`RunResult` or :func:`run_record` for the flat dict.
    """
    warnings.warn(
        "run_scenario() is deprecated: use repro.scenarios.run.run() for the "
        "typed RunResult or run_record() for the flat record",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_record(spec)
