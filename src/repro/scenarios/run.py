"""Building and running scenarios.

The bridge from declarative spec to simulation: a spec builds a
:class:`~repro.sim.machine.QuantumMachine` (through the topology registry)
and an instruction stream (through the workload registry), runs the
communication simulator, and reduces the outcome to a flat, JSON-serializable
result dict.  :func:`run_scenario` is a module-level callable taking only the
spec mapping, so :meth:`repro.runtime.ExperimentRunner.sweep` can fan a
scenario grid across its multiprocessing pool and cache each point under the
spec's hash.
"""

from __future__ import annotations

import time
from dataclasses import asdict, replace
from typing import Any, Dict, Mapping, Optional, Union

from ..network.nodes import ResourceAllocation
from ..network.routing import DimensionOrder
from ..physics.parameters import IonTrapParameters
from ..sim.machine import QuantumMachine
from ..sim.simulator import CommunicationSimulator
from ..workloads.instructions import InstructionStream
from ..workloads.registry import build_workload
from .spec import NoiseSpec, ScenarioSpec

#: Results carry a schema version so downstream consumers (the CI benchmark
#: trajectory) can evolve without guessing.  Version 2 added the fidelity
#: accounting columns (``noise``, ``fidelity``).
RESULT_SCHEMA_VERSION = 2


def _as_spec(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    # Canonical (name-stripped) payloads arrive from the cache-keyed sweep
    # path; the caller reattaches its own naming to the result record.
    return ScenarioSpec.from_dict(spec, name="unnamed")


def _apply_noise(params: IonTrapParameters, noise: Optional[NoiseSpec]) -> IonTrapParameters:
    """Fold a scenario's noise overrides into the ion-trap parameter bundle."""
    if noise is None:
        return params
    errors = params.errors
    if noise.gate_error is not None:
        errors = replace(
            errors, one_qubit_gate=noise.gate_error, two_qubit_gate=noise.gate_error
        )
    if noise.measurement_error is not None:
        errors = replace(errors, measure=noise.measurement_error)
    if errors is not params.errors:
        params = params.with_errors(errors)
    if noise.base_fidelity is not None:
        params = replace(params, zero_prep_fidelity=noise.base_fidelity)
    return params


def build_machine(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> QuantumMachine:
    """Construct the machine a scenario describes.

    A ``noise`` section turns fidelity tracking on: its error overrides fold
    into the parameter bundle and its ``target_fidelity`` (when given) drives
    purification-level selection machine-wide.
    """
    spec = _as_spec(spec)
    topo = spec.topology
    physics = spec.physics
    runtime = spec.runtime
    noise = spec.noise
    params = IonTrapParameters.default()
    if topo.cells_per_hop != params.cells_per_hop:
        params = params.with_hop_cells(topo.cells_per_hop)
    params = _apply_noise(params, noise)
    return QuantumMachine(
        topo.width,
        topo.height,
        topology_kind=topo.kind,
        allocation=ResourceAllocation(
            teleporters_per_node=physics.teleporters,
            generators_per_node=physics.generators,
            purifiers_per_node=physics.purifiers,
            queue_depth=physics.queue_depth,
        ),
        layout=runtime.layout,
        num_qubits=spec.workload.num_qubits,
        params=params,
        protocol=physics.protocol,
        logical_gate_us=physics.logical_gate_us,
        routing_order=DimensionOrder(runtime.routing),
        generator_bandwidth_scale=physics.generator_bandwidth_scale,
        track_fidelity=noise is not None,
        target_fidelity=noise.target_fidelity if noise is not None else None,
    )


def build_stream(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> InstructionStream:
    """Construct the instruction stream a scenario describes."""
    spec = _as_spec(spec)
    return build_workload(spec.workload.kind, spec.workload.num_qubits, spec.workload.params)


def run_scenario(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> Dict[str, Any]:
    """Build and simulate one scenario; returns a JSON-serializable record.

    The record holds everything the benchmark trajectory tracks: the makespan
    (the paper's runtime metric), channel/operation counts, per-resource
    utilisation and the wall-clock cost of computing the point.
    """
    spec = _as_spec(spec)
    started = time.perf_counter()
    # An oversubscribed workload fails inside build_machine: the layout
    # refuses more logical qubits than the fabric has LQ sites.
    machine = build_machine(spec)
    stream = build_stream(spec)
    simulator = CommunicationSimulator(
        machine, allocator=spec.runtime.allocator, backend=spec.runtime.backend
    )
    result = simulator.run(stream, max_events=spec.runtime.max_events)
    wall_s = time.perf_counter() - started
    total_hops = sum(record.total_hops for record in result.operations)
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "name": spec.name,
        "label": spec.label,
        "spec_hash": spec.spec_hash,
        "spec": spec.to_dict(),
        "machine": machine.describe(),
        "workload": stream.name,
        "topology_kind": spec.topology.kind,
        "layout": spec.runtime.layout,
        "allocator": spec.runtime.allocator,
        "backend": result.backend,
        "operations": len(result.operations),
        "channel_count": result.channel_count,
        "total_hops": total_hops,
        "makespan_us": result.makespan_us,
        "classical_messages": result.metadata.get("classical_messages"),
        "utilisation": dict(result.resource_utilisation),
        "noise": asdict(spec.noise) if spec.noise is not None else None,
        "fidelity": result.fidelity_summary(),
        "wall_time_s": wall_s,
    }
