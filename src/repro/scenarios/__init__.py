"""Declarative scenario engine: specs, loading, catalog and execution.

Scenarios turn experiments into data.  A :class:`ScenarioSpec` composes a
topology (any registered fabric), a workload (any registered instruction
stream), physics parameters and runtime options; the loader reads single
scenarios, bundles and sweep grids from JSON/YAML with inheritance
(``extends``); and :func:`run` executes a spec — batch mode through the
communication simulator, service mode (a ``traffic`` section) through the
open-loop service simulator — returning a typed :class:`RunResult`.
:func:`run_record` is the flat-record form the benchmark trajectory, sweep
cache and CLI consume (:func:`run_scenario` is its deprecated alias).
``python -m repro scenarios`` is the front end.
"""

from .spec import (
    NetworkSpec,
    NoiseSpec,
    PhysicsSpec,
    RoutingSpec,
    RuntimeSpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    apply_overrides,
    deep_merge,
)
from .loader import (
    expand_grid,
    load_scenario_file,
    load_scenarios,
    parse_text,
    resolve_scenario,
    select_scenarios,
)
from .catalog import default_grid, get_scenario, list_scenarios
from .run import (
    BatchView,
    RunResult,
    ServiceView,
    build_machine,
    build_stream,
    run,
    run_record,
    run_scenario,
)
from .bench import bench_payload, current_git_sha, write_bench_file

__all__ = [
    "BatchView",
    "NetworkSpec",
    "NoiseSpec",
    "PhysicsSpec",
    "RoutingSpec",
    "RunResult",
    "RuntimeSpec",
    "ScenarioSpec",
    "ServiceView",
    "TenantSpec",
    "TopologySpec",
    "TrafficSpec",
    "WorkloadSpec",
    "apply_overrides",
    "bench_payload",
    "build_machine",
    "build_stream",
    "current_git_sha",
    "deep_merge",
    "default_grid",
    "expand_grid",
    "get_scenario",
    "list_scenarios",
    "load_scenario_file",
    "load_scenarios",
    "parse_text",
    "resolve_scenario",
    "run",
    "run_record",
    "run_scenario",
    "select_scenarios",
    "write_bench_file",
]
