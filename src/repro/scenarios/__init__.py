"""Declarative scenario engine: specs, loading, catalog and execution.

Scenarios turn experiments into data.  A :class:`ScenarioSpec` composes a
topology (any registered fabric), a workload (any registered instruction
stream), physics parameters and runtime options; the loader reads single
scenarios, bundles and sweep grids from JSON/YAML with inheritance
(``extends``); and :func:`run_scenario` executes a spec through the
communication simulator, returning a flat record the benchmark trajectory
and the CLI both consume.  ``python -m repro scenarios`` is the front end.
"""

from .spec import (
    NoiseSpec,
    PhysicsSpec,
    RuntimeSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    apply_overrides,
    deep_merge,
)
from .loader import (
    expand_grid,
    load_scenario_file,
    load_scenarios,
    parse_text,
    resolve_scenario,
    select_scenarios,
)
from .catalog import default_grid, get_scenario, list_scenarios
from .run import build_machine, build_stream, run_scenario
from .bench import bench_payload, current_git_sha, write_bench_file

__all__ = [
    "NoiseSpec",
    "PhysicsSpec",
    "RuntimeSpec",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "apply_overrides",
    "bench_payload",
    "build_machine",
    "build_stream",
    "current_git_sha",
    "deep_merge",
    "default_grid",
    "expand_grid",
    "get_scenario",
    "list_scenarios",
    "load_scenario_file",
    "load_scenarios",
    "parse_text",
    "resolve_scenario",
    "run_scenario",
    "select_scenarios",
    "write_bench_file",
]
