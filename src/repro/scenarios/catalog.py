"""Built-in scenario catalog and the default sweep grid.

These are the named starting points ``python -m repro scenarios`` serves out
of the box: the paper's baseline machine plus one scenario per alternative
fabric, each small enough to run in seconds.  File-based scenarios can extend
any of them by name (``extends: paper_baseline``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..errors import ScenarioError
from .spec import ScenarioSpec, apply_overrides

#: Raw catalog entries; kept as dicts so ``extends`` can merge them cheaply.
_CATALOG: Dict[str, Dict[str, Any]] = {
    "paper_baseline": {
        "description": "The paper's Figure 16 regime: square mesh, Home Base QFT.",
        "topology": {"kind": "mesh", "width": 8},
        "workload": {"kind": "qft", "num_qubits": 16},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
    },
    "paper_mobile": {
        "description": "Mobile Qubit variant of the paper baseline.",
        "extends": "paper_baseline",
        "runtime": {"layout": "mobile_qubit"},
    },
    "smoke": {
        "description": "Tiny end-to-end scenario for CI smoke tests (<1 s).",
        "topology": {"kind": "mesh", "width": 3},
        "workload": {"kind": "qft", "num_qubits": 6},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
    },
    "smoke_noisy": {
        "description": "Smoke scenario with fidelity accounting on (noise.* set).",
        "extends": "smoke",
        "noise": {"base_fidelity": 0.999, "target_fidelity": 0.9999},
    },
    "ring_qft": {
        "description": "QFT on a 9-node ring; wrap links halve the mean distance.",
        "topology": {"kind": "ring", "width": 9},
        "workload": {"kind": "qft", "num_qubits": 8},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
    },
    "line_neighbours": {
        "description": "Brick-wall nearest-neighbour traffic on a 9-node line.",
        "topology": {"kind": "line", "width": 9},
        "workload": {"kind": "nearest_neighbour", "num_qubits": 8, "params": {"rounds": 2}},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "mobile_qubit"},
    },
    "torus_permutation": {
        "description": "Random matching on a 4x4 torus (max concurrent contention).",
        "topology": {"kind": "torus", "width": 4},
        "workload": {"kind": "permutation", "num_qubits": 16, "params": {"seed": 7}},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
    },
    "mesh_modexp": {
        "description": "Modular exponentiation kernel on a small mesh.",
        "topology": {"kind": "mesh", "width": 4},
        "workload": {"kind": "modexp", "num_qubits": 8, "params": {"steps": 1}},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
    },
    "fattree_smoke": {
        "description": "QFT on a k=4 fat tree (16 hosts) with ECMP multi-path "
        "routing across the pods.",
        "topology": {"kind": "fat_tree", "width": 4},
        "workload": {"kind": "qft", "num_qubits": 12},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
        "network": {"routing": {"policy": "ecmp"}},
    },
    "dragonfly_adaptive": {
        "description": "Random matching on a 4-group dragonfly with adaptive "
        "(hysteresis-gated) Valiant routing over the global links.",
        "topology": {
            "kind": "dragonfly",
            "width": 4,
            "height": 2,
            "options": {"hosts_per_router": 1},
        },
        "workload": {"kind": "permutation", "num_qubits": 8, "params": {"seed": 7}},
        "physics": {"teleporters": 2, "generators": 2, "purifiers": 1},
        "runtime": {"layout": "home_base"},
        "network": {"routing": {"policy": "adaptive", "hysteresis": 1.0}},
    },
    "service_smoke": {
        "description": "Open-loop service mode on the smoke mesh: two tenants, "
        "always-admit, FIFO (<1 s).",
        "extends": "smoke",
        "traffic": {
            "duration_us": 4000.0,
            "seed": 11,
            "max_inflight": 4,
            "admission": "always",
            "scheduler": "fifo",
            "tenants": {
                "bulk": {
                    "arrival_process": "poisson",
                    "mean_interarrival_us": 600.0,
                    "size_dist": "pareto",
                    "channels": 1,
                    "max_channels": 3,
                    "alpha": 1.5,
                },
                "latency": {
                    "arrival_process": "fixed",
                    "mean_interarrival_us": 900.0,
                    "channels": 1,
                    "priority": 1,
                    "target_fidelity": 0.9999,
                },
            },
        },
    },
}


def list_scenarios() -> List[str]:
    """Names of the built-in scenarios, sorted."""
    return sorted(_CATALOG)


def catalog_entry(name: str) -> Dict[str, Any]:
    """Raw (possibly ``extends``-bearing) catalog mapping for ``name``."""
    key = (name or "").strip()
    if key not in _CATALOG:
        raise ScenarioError(
            f"unknown scenario {name!r}; built-ins: {list_scenarios()}"
        )
    return dict(_CATALOG[key])


def get_scenario(name: str) -> ScenarioSpec:
    """A fully-resolved, validated built-in scenario."""
    from .loader import resolve_scenario

    return resolve_scenario(catalog_entry(name), name=name)


#: The default sweep: every fabric family crossed with an all-to-all and a
#: matching workload, on fabrics sized so 8 logical qubits fit everywhere.
DEFAULT_GRID_TOPOLOGIES = ("mesh", "ring", "torus")
DEFAULT_GRID_WORKLOADS = ("qft", "permutation")


def default_grid(
    topologies: Sequence[str] = DEFAULT_GRID_TOPOLOGIES,
    workloads: Sequence[str] = DEFAULT_GRID_WORKLOADS,
) -> List[ScenarioSpec]:
    """The built-in topology x workload sweep (>= 4 scenarios by default).

    Every point shares the ``ring_qft`` base (9-wide fabric, 8 logical
    qubits, t=g=2p) so the sweep isolates the fabric/workload axes.
    """
    from .loader import resolve_scenario

    if not topologies or not workloads:
        raise ScenarioError("the scenario grid needs at least one topology and one workload")
    base = catalog_entry("ring_qft")
    base.pop("description", None)
    specs: List[ScenarioSpec] = []
    for kind in topologies:
        for workload in workloads:
            data = apply_overrides(
                base, {"topology.kind": kind, "workload.kind": workload}
            )
            specs.append(
                resolve_scenario(data, name=f"grid/{kind}-{workload}")
            )
    return specs
