"""Cross-run warm-starting for sweeps and service runs.

Sweeps and service workloads replay near-identical machines thousands of
times: the spec-hash result cache only hits on *exact* spec matches, so a
sweep over, say, ``physics.generator_bandwidth_scale`` rebuilds every channel
plan, EPR budget, flow profile and demand vector at every point even though
none of them depend on the swept scalar.  :class:`WarmStartCache` closes that
gap (psim's ``GContext::this_run()`` cross-run cache is the model): entries
are keyed by a **structural hash** — the scenario's canonical dict minus the
knobs proven not to affect the cached state — and carry the memo dicts the
machine stack consults:

* the planner's per-distance EPR budgets and arrival states,
* the planner's per-endpoint-pair channel plans,
* the machine's per-distance flow demand profiles, and
* the fluid transport's per-endpoint-pair demand vectors — exactly the row
  content (resource keys + works) the vectorized allocator packs into its
  CSR arrays, so repeated points also skip rebuilding that structure.

Every cached object is a pure function of the structural key (the exclusions
below are each argued at the definition), so adoption can only skip
recomputation, never change a computed value — the verify harness's bitwise
gates run with warm-starting active and pin that.

Excluded from the key:

``runtime.allocator`` / ``runtime.backend`` / ``runtime.max_events``
    Execution strategy; plans, budgets, profiles and demands are computed
    from the machine structure the same way under all of them.
``physics.logical_gate_us``
    Gate latency enters the simulators' op scheduling only; no planner or
    profile quantity reads it.
``physics.generator_bandwidth_scale``
    Scales resource *capacities*, which live in the per-run transport, not
    in any warm-started object (demand works are pair counts × times).
``traffic``
    The offered request stream; structure-independent.

The cache is process-global: a single-process sweep (``workers=1``, the
in-process fast path) or a service simulator hits it across points and
requests.  Pool workers are separate processes with their own (empty) global
cache, so multi-worker sweeps warm up per worker rather than sharing hits.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Tuple

from .spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.machine import QuantumMachine

#: Entries kept before the least-recently-used one is evicted.  Entries are
#: small (memo dicts over distances and endpoint pairs), but sweeps over
#: structural axes (grid size, topology kind) would otherwise grow the cache
#: without bound.
MAX_ENTRIES = 64


def structural_key(spec: ScenarioSpec) -> str:
    """Hash of everything that can affect warm-started state.

    Starts from the spec's canonical dict (the result-cache key) and removes
    the documented non-structural knobs, so sweep points differing only in
    those share one entry.
    """
    from ..runtime.cache import parameter_hash

    payload: Dict[str, Any] = copy.deepcopy(spec.canonical_dict())
    payload.pop("traffic", None)
    runtime = payload.get("runtime")
    if isinstance(runtime, dict):
        for knob in ("allocator", "backend", "max_events"):
            runtime.pop(knob, None)
    physics = payload.get("physics")
    if isinstance(physics, dict):
        for knob in ("logical_gate_us", "generator_bandwidth_scale"):
            physics.pop(knob, None)
    return str(parameter_hash(payload))


@dataclass
class WarmStartEntry:
    """The shared memo dicts for one machine structure."""

    key: str
    budget_cache: Dict[int, Any] = field(default_factory=dict)
    arrival_cache: Dict[int, Any] = field(default_factory=dict)
    plan_cache: Dict[Tuple[Any, Any], Any] = field(default_factory=dict)
    flow_profiles: Dict[int, Any] = field(default_factory=dict)
    demand_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], Dict[Any, float]] = field(
        default_factory=dict
    )
    reuses: int = 0


class WarmStartCache:
    """LRU cache of :class:`WarmStartEntry` keyed by structural hash."""

    def __init__(self, max_entries: int = MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, WarmStartEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def entry_for(self, key: str) -> Tuple[WarmStartEntry, bool]:
        """The entry for ``key`` plus whether it already existed (a hit)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                entry.reuses += 1
                return entry, True
            self.misses += 1
            entry = WarmStartEntry(key=key)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return entry, False

    def stats(self) -> Dict[str, int]:
        """Counters for bench payloads and result metadata."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: The process-global cache ``build_machine`` attaches through.
_GLOBAL_CACHE = WarmStartCache()


def global_cache() -> WarmStartCache:
    return _GLOBAL_CACHE


def attach(
    machine: "QuantumMachine",
    spec: ScenarioSpec,
    cache: WarmStartCache | None = None,
) -> Dict[str, object]:
    """Adopt the warm-start entry for ``spec`` onto a freshly built machine.

    Returns the attachment info dict also stored on the machine (and from
    there surfaced in ``SimulationResult``/``ServiceResult`` metadata and the
    ``warm_start`` trace record).
    """
    if cache is None:
        cache = _GLOBAL_CACHE
    key = structural_key(spec)
    entry, hit = cache.entry_for(key)
    machine.planner.adopt_caches(
        budgets=entry.budget_cache,
        arrivals=entry.arrival_cache,
        plans=entry.plan_cache,
    )
    info: Dict[str, object] = {
        "key": key,
        "hit": hit,
        "reuses": entry.reuses,
        "plans": len(entry.plan_cache),
        "profiles": len(entry.flow_profiles),
        "demands": len(entry.demand_cache),
        "hits": cache.hits,
        "misses": cache.misses,
    }
    machine.adopt_warm_state(
        flow_profiles=entry.flow_profiles,
        demand_cache=entry.demand_cache,
        info=info,
    )
    return info
