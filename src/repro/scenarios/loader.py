"""Loading scenarios from JSON/YAML text, with inheritance and sweeps.

A scenario file holds one of three shapes:

1. **A single scenario** — the mapping documented in
   :mod:`repro.scenarios.spec`, optionally carrying ``extends: <name>``;
2. **A bundle** — ``{"scenarios": {...}}`` mapping names to scenario
   mappings (or a list of named mappings), which may extend the built-in
   catalog or each other;
3. **A sweep** — ``{"base": <name-or-mapping>, "sweep": {dotted.key:
   [values, ...], ...}}`` expanding the cross product of the axes into one
   scenario per grid point.

Files are parsed as JSON first and as YAML when PyYAML is available; the
``extends`` chain is resolved against the built-in catalog plus the file's
own entries, depth-first with cycle detection, and every resolved mapping is
validated into a :class:`~repro.scenarios.spec.ScenarioSpec`.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ScenarioError
from .spec import ScenarioSpec, apply_overrides, deep_merge


def parse_text(text: str, *, source: str = "<string>") -> Any:
    """Parse scenario text: JSON first, YAML as the fallback."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as json_error:
        try:  # PyYAML is optional; JSON always works.
            import yaml
        except ImportError:  # pragma: no cover - depends on the environment
            raise ScenarioError(
                f"{source} is not valid JSON ({json_error}) and PyYAML is not "
                "installed for the YAML fallback"
            ) from json_error
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as yaml_error:
            raise ScenarioError(
                f"{source} parses as neither JSON ({json_error}) nor YAML ({yaml_error})"
            ) from yaml_error


def _library_entry(name: str, library: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Look up an ``extends`` target: file-local entries shadow the catalog."""
    from .catalog import catalog_entry, list_scenarios

    if library and name in library:
        entry = library[name]
        if not isinstance(entry, Mapping):
            raise ScenarioError(f"scenario {name!r} must be a mapping, got {entry!r}")
        return dict(entry)
    try:
        return catalog_entry(name)
    except ScenarioError:
        known = sorted(set(list_scenarios()) | set(library or ()))
        raise ScenarioError(f"unknown scenario {name!r} to extend; known: {known}") from None


def _resolve_extends(
    data: Mapping[str, Any],
    library: Optional[Mapping[str, Any]],
    seen: Tuple[str, ...],
) -> Dict[str, Any]:
    if not isinstance(data, Mapping):
        raise ScenarioError(f"a scenario must be a mapping, got {type(data).__name__}")
    parent_name = data.get("extends")
    if parent_name is None:
        return deep_merge({}, data)
    if not isinstance(parent_name, str) or not parent_name.strip():
        raise ScenarioError(f"extends must name a scenario, got {parent_name!r}")
    parent_name = parent_name.strip()
    if parent_name in seen:
        chain = " -> ".join((*seen, parent_name))
        raise ScenarioError(f"circular scenario inheritance: {chain}")
    parent = _resolve_extends(
        _library_entry(parent_name, library), library, (*seen, parent_name)
    )
    child = {k: v for k, v in data.items() if k != "extends"}
    # The child's name and description win; a child without either keeps only
    # its own identity, not the parent's description of itself.
    merged = deep_merge(parent, child)
    if "name" in parent and "name" not in child:
        merged.pop("name", None)
    if "description" in parent and "description" not in child:
        merged.pop("description", None)
    return merged


def resolve_scenario(
    data: Mapping[str, Any],
    *,
    name: Optional[str] = None,
    library: Optional[Mapping[str, Any]] = None,
) -> ScenarioSpec:
    """Resolve ``extends`` and validate one scenario mapping."""
    resolved = _resolve_extends(data, library, seen=())
    return ScenarioSpec.from_dict(resolved, name=name)


def expand_grid(
    base: Mapping[str, Any],
    axes: Mapping[str, Sequence[Any]],
    *,
    name_prefix: str = "sweep",
    library: Optional[Mapping[str, Any]] = None,
) -> List[ScenarioSpec]:
    """Cross-product sweep: one scenario per combination of the axes.

    ``axes`` maps dotted spec paths to value lists, e.g.
    ``{"topology.kind": ["mesh", "ring"], "workload.num_qubits": [8, 16]}``.
    Scenario names encode their grid point (``sweep/topology.kind=ring,...``).
    """
    if not isinstance(axes, Mapping) or not axes:
        raise ScenarioError("sweep axes must be a non-empty mapping of dotted keys to lists")
    keys = list(axes)
    value_lists = []
    for key in keys:
        values = axes[key]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence) or not values:
            raise ScenarioError(
                f"sweep axis {key!r} must be a non-empty list of values, got {values!r}"
            )
        value_lists.append(list(values))
    resolved_base = _resolve_extends(base, library, seen=())
    resolved_base.pop("name", None)
    resolved_base.pop("description", None)
    specs: List[ScenarioSpec] = []
    for combo in itertools.product(*value_lists):
        overrides = dict(zip(keys, combo))
        point_name = ",".join(f"{k}={v}" for k, v in overrides.items())
        data = apply_overrides(resolved_base, overrides)
        specs.append(ScenarioSpec.from_dict(data, name=f"{name_prefix}/{point_name}"))
    return specs


def load_scenarios(data: Any, *, source: str = "<data>") -> List[ScenarioSpec]:
    """Interpret parsed scenario data (single, bundle or sweep) into specs."""
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"{source} must hold a mapping at the top level, got {type(data).__name__}"
        )
    if "scenarios" in data and "sweep" in data:
        raise ScenarioError(f"{source} mixes 'scenarios' and 'sweep'; pick one shape")
    if "scenarios" in data:
        extra = sorted(set(data) - {"scenarios"})
        if extra:
            raise ScenarioError(f"{source} has unknown bundle keys {extra}")
        return _load_bundle(data["scenarios"], source=source)
    if "sweep" in data:
        extra = sorted(set(data) - {"base", "sweep", "name"})
        if extra:
            raise ScenarioError(f"{source} has unknown sweep keys {extra}")
        base = data.get("base", {})
        if isinstance(base, str):
            base = {"extends": base}
        prefix = data.get("name", "sweep")
        if not isinstance(prefix, str) or not prefix.strip():
            raise ScenarioError(f"{source}: sweep name must be a non-empty string")
        return expand_grid(base, data["sweep"], name_prefix=prefix.strip())
    return [resolve_scenario(data, name=data.get("name", os.path.basename(source)))]


def _load_bundle(entries: Any, *, source: str) -> List[ScenarioSpec]:
    if isinstance(entries, Mapping):
        named = dict(entries)
    elif isinstance(entries, Sequence) and not isinstance(entries, (str, bytes)):
        named = {}
        for index, entry in enumerate(entries):
            if not isinstance(entry, Mapping) or not isinstance(entry.get("name"), str):
                raise ScenarioError(
                    f"{source}: scenarios[{index}] needs a 'name' when given as a list"
                )
            named[entry["name"]] = entry
    else:
        raise ScenarioError(f"{source}: 'scenarios' must be a mapping or a list of mappings")
    if not named:
        raise ScenarioError(f"{source}: 'scenarios' must define at least one scenario")
    specs = []
    for name, entry in named.items():
        specs.append(resolve_scenario(entry, name=name, library=named))
    return specs


def load_scenario_file(path: str) -> List[ScenarioSpec]:
    """Load scenarios from a JSON/YAML file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path!r}: {exc}") from exc
    return load_scenarios(parse_text(text, source=path), source=path)


def select_scenarios(
    names: Optional[Sequence[str]] = None, spec_path: Optional[str] = None
) -> List[ScenarioSpec]:
    """The scenario selection every CLI shares: a file or the catalog, by name.

    ``spec_path`` loads a JSON/YAML scenario file, otherwise the full
    built-in catalog is the source; ``names`` restricts the result (in the
    order given), and unknown names raise listing what was available.
    """
    from .catalog import get_scenario, list_scenarios

    specs = (
        load_scenario_file(spec_path)
        if spec_path
        else [get_scenario(name) for name in list_scenarios()]
    )
    if names:
        by_name = {spec.name: spec for spec in specs}
        missing = [name for name in names if name not in by_name]
        if missing:
            raise ScenarioError(
                f"unknown scenario names {missing}; available: {sorted(by_name)}"
            )
        specs = [by_name[name] for name in names]
    return specs
