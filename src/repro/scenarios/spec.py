"""Declarative scenario specifications.

A scenario composes four orthogonal sections into one runnable experiment:

* ``topology`` — which fabric to build (line/ring/mesh/torus) and its size;
* ``workload`` — which instruction stream to run and its parameters;
* ``physics`` — the (t, g, p) resource allocation, purification protocol and
  timing knobs;
* ``runtime`` — layout, allocator, routing order and simulation limits.

Specs are plain frozen dataclasses with a strict dict codec: every section
rejects unknown keys, type errors and out-of-range values with a
:class:`~repro.errors.ScenarioError` naming the offending field, and
``ScenarioSpec.from_dict(spec.to_dict())`` round-trips exactly.  Inheritance
is handled one level up (see :mod:`repro.scenarios.loader`): a scenario
mapping may carry ``extends: <name>`` and only the keys it wants to change.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ScenarioError
from ..network.fabrics import list_topologies
from ..network.routing import list_balancers
from ..workloads.registry import list_workloads, workload_params

#: Layout aliases accepted by :func:`repro.network.layout.build_layout`,
#: normalised to their canonical spelling so alias choice never changes a
#: spec's hash (and therefore its cache slot).
LAYOUT_ALIASES = {
    "home_base": "home_base",
    "homebase": "home_base",
    "mobile_qubit": "mobile_qubit",
    "mobile": "mobile_qubit",
}
ALLOCATOR_NAMES = ("incremental", "reference", "vectorized")
ROUTING_NAMES = ("xy", "yx")
#: Transport backend names accepted by ``runtime.backend``.  Mirrors the
#: registry in :mod:`repro.sim.transport` (kept literal here so validating a
#: spec never imports the simulation stack; a test pins the two in sync).
BACKEND_NAMES = ("fluid", "detailed")
#: Service-mode registries, mirrored literally from :mod:`repro.service` for
#: the same reason as :data:`BACKEND_NAMES` (tests pin them in sync).
ADMISSION_NAMES = ("always", "token_bucket", "queue_bound")
SCHEDULER_NAMES = ("fifo", "priority", "fidelity")
ARRIVAL_PROCESSES = ("poisson", "fixed", "mmpp")
SIZE_DISTRIBUTIONS = ("constant", "pareto")


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ScenarioError(f"{where} must be a mapping, got {type(value).__name__}")
    bad = [k for k in value if not isinstance(k, str)]
    if bad:
        raise ScenarioError(f"{where} has non-string keys: {bad}")
    return dict(value)


def _reject_unknown(data: Mapping[str, Any], allowed: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"{where} has unknown keys {unknown}; accepted: {sorted(allowed)}"
        )


def _int_field(data: Mapping[str, Any], key: str, default: int, where: str, *, minimum: int) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{where}.{key} must be an integer, got {value!r}")
    if value < minimum:
        raise ScenarioError(f"{where}.{key} must be >= {minimum}, got {value}")
    return value


def _float_field(
    data: Mapping[str, Any], key: str, default: float, where: str, *, minimum: float,
    exclusive: bool = False,
) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{where}.{key} must be a number, got {value!r}")
    value = float(value)
    # NaN compares False against every bound, so range checks alone would
    # wave it (and infinities) straight into cache keys and physics models.
    if not math.isfinite(value):
        raise ScenarioError(f"{where}.{key} must be finite, got {value}")
    if exclusive and value <= minimum:
        raise ScenarioError(f"{where}.{key} must be > {minimum}, got {value}")
    if not exclusive and value < minimum:
        raise ScenarioError(f"{where}.{key} must be >= {minimum}, got {value}")
    return value


def _optional_unit_float(
    data: Mapping[str, Any], key: str, where: str, *,
    low: float, high: float, low_open: bool = False, high_open: bool = False,
) -> Optional[float]:
    """An optional float in a [low, high] interval (open ends selectable)."""
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{where}.{key} must be a number or null, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ScenarioError(f"{where}.{key} must be finite, got {value}")
    low_ok = value > low if low_open else value >= low
    high_ok = value < high if high_open else value <= high
    if not (low_ok and high_ok):
        bounds = f"{'(' if low_open else '['}{low}, {high}{')' if high_open else ']'}"
        raise ScenarioError(f"{where}.{key} must be in {bounds}, got {value}")
    return value


def _choice_field(
    data: Mapping[str, Any], key: str, default: str, where: str, choices: Tuple[str, ...]
) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise ScenarioError(f"{where}.{key} must be a string, got {value!r}")
    value = value.strip().lower()
    if value not in choices:
        raise ScenarioError(
            f"{where}.{key} must be one of {sorted(set(choices))}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class TopologySpec:
    """Which fabric to build and how large.

    ``options`` carries fabric-specific structural knobs (e.g.
    ``hosts_per_leaf`` for ``leaf_spine``, ``hosts_per_router`` for
    ``dragonfly``) passed straight through to the builder, which rejects
    names it does not take.  An empty mapping is omitted from the dict form,
    so pre-existing specs keep their hashes and cache slots.
    """

    kind: str = "mesh"
    width: int = 8
    height: Optional[int] = None
    cells_per_hop: int = 600
    options: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Any) -> "TopologySpec":
        data = _require_mapping(data, "topology")
        _reject_unknown(
            data, ("kind", "width", "height", "cells_per_hop", "options"), "topology"
        )
        kind = _choice_field(data, "kind", cls.kind, "topology", tuple(list_topologies()))
        height = data.get("height")
        if height is not None:
            height = _int_field(data, "height", 1, "topology", minimum=1)
        options = _require_mapping(data.get("options"), "topology.options")
        for opt_key in sorted(options):
            options[opt_key] = _int_field(
                options, opt_key, 1, "topology.options", minimum=1
            )
        return cls(
            kind=kind,
            width=_int_field(data, "width", cls.width, "topology", minimum=1),
            height=height,
            cells_per_hop=_int_field(
                data, "cells_per_hop", cls.cells_per_hop, "topology", minimum=1
            ),
            options=options,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Which instruction stream to run."""

    kind: str = "qft"
    num_qubits: int = 16
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Any) -> "WorkloadSpec":
        data = _require_mapping(data, "workload")
        _reject_unknown(data, ("kind", "num_qubits", "params"), "workload")
        kind = _choice_field(data, "kind", cls.kind, "workload", tuple(list_workloads()))
        params = _require_mapping(data.get("params"), "workload.params")
        accepted = workload_params(kind)
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise ScenarioError(
                f"workload {kind!r} does not take parameters {unknown}; "
                f"accepted: {sorted(accepted) or 'none'}"
            )
        return cls(
            kind=kind,
            num_qubits=_int_field(data, "num_qubits", cls.num_qubits, "workload", minimum=2),
            params=params,
        )


@dataclass(frozen=True)
class PhysicsSpec:
    """Resource allocation and physical timing knobs."""

    teleporters: int = 2
    generators: int = 2
    purifiers: int = 1
    queue_depth: int = 3
    protocol: str = "dejmps"
    logical_gate_us: float = 300.0
    generator_bandwidth_scale: float = 1.0

    @classmethod
    def from_dict(cls, data: Any) -> "PhysicsSpec":
        data = _require_mapping(data, "physics")
        _reject_unknown(
            data,
            (
                "teleporters",
                "generators",
                "purifiers",
                "queue_depth",
                "protocol",
                "logical_gate_us",
                "generator_bandwidth_scale",
            ),
            "physics",
        )
        protocol = data.get("protocol", cls.protocol)
        if not isinstance(protocol, str) or not protocol.strip():
            raise ScenarioError(f"physics.protocol must be a non-empty string, got {protocol!r}")
        return cls(
            teleporters=_int_field(data, "teleporters", cls.teleporters, "physics", minimum=1),
            generators=_int_field(data, "generators", cls.generators, "physics", minimum=1),
            purifiers=_int_field(data, "purifiers", cls.purifiers, "physics", minimum=1),
            queue_depth=_int_field(data, "queue_depth", cls.queue_depth, "physics", minimum=1),
            protocol=protocol.strip().lower(),
            logical_gate_us=_float_field(
                data, "logical_gate_us", cls.logical_gate_us, "physics", minimum=0.0
            ),
            generator_bandwidth_scale=_float_field(
                data,
                "generator_bandwidth_scale",
                cls.generator_bandwidth_scale,
                "physics",
                minimum=0.0,
                exclusive=True,
            ),
        )


@dataclass(frozen=True)
class NoiseSpec:
    """Noise model and fidelity-accounting knobs.

    The *presence* of a ``noise`` section — even an empty one — switches the
    fidelity-accounting pipeline on: both transport backends then track the
    EPR fidelity every channel delivers, select purification levels against
    the target, and emit ``fidelity`` trace records.  Every field is optional
    and sweepable as ``noise.<field>``:

    * ``base_fidelity`` — fidelity of the zero-prepared qubits entering EPR
      generation (Eq. 4's ``F_zero``; default: the paper's 0.9995);
    * ``gate_error`` — uniform one-/two-qubit gate error probability
      (default: the Table 2 rates);
    * ``measurement_error`` — measurement flip probability (default Table 2);
    * ``target_fidelity`` — delivered-fidelity target driving purification
      level selection (default: the fault-tolerance threshold ``1 - 7.5e-5``).

    Scenarios without a ``noise`` section run exactly as before — bitwise
    identical fluid dynamics, no fidelity columns, unchanged golden traces.
    """

    base_fidelity: Optional[float] = None
    gate_error: Optional[float] = None
    measurement_error: Optional[float] = None
    target_fidelity: Optional[float] = None

    @classmethod
    def from_dict(cls, data: Any) -> "NoiseSpec":
        data = _require_mapping(data, "noise")
        _reject_unknown(
            data,
            ("base_fidelity", "gate_error", "measurement_error", "target_fidelity"),
            "noise",
        )
        return cls(
            base_fidelity=_optional_unit_float(
                data, "base_fidelity", "noise", low=0.0, high=1.0, low_open=True
            ),
            gate_error=_optional_unit_float(
                data, "gate_error", "noise", low=0.0, high=1.0, high_open=True
            ),
            measurement_error=_optional_unit_float(
                data, "measurement_error", "noise", low=0.0, high=1.0, high_open=True
            ),
            target_fidelity=_optional_unit_float(
                data, "target_fidelity", "noise", low=0.0, high=1.0,
                low_open=True, high_open=True,
            ),
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the open-loop service: its traffic mix and class.

    Every field is sweepable as ``traffic.tenants.<name>.<field>``:

    * ``arrival_process`` — ``poisson`` (exponential interarrivals),
      ``fixed`` (constant interarrivals) or ``mmpp`` (two-state Markov-
      modulated Poisson: bursts of ``burst_factor``-times-faster arrivals
      alternating with equally slower phases every ``phase_us``);
    * ``mean_interarrival_us`` — mean request spacing (the offered rate);
    * ``size_dist``/``channels`` — how many back-to-back channels one
      request opens: ``constant`` uses ``channels`` exactly, ``pareto``
      draws a heavy tail with shape ``alpha`` scaled by ``channels`` and
      capped at ``max_channels``;
    * ``priority`` — strict-priority rank (lower runs first);
    * ``target_fidelity`` — optional per-tenant fidelity class, consumed by
      the ``fidelity`` request scheduler (tighter targets run first).
    """

    arrival_process: str = "poisson"
    mean_interarrival_us: float = 500.0
    burst_factor: float = 4.0
    phase_us: float = 2000.0
    size_dist: str = "constant"
    channels: int = 1
    alpha: float = 1.5
    max_channels: int = 8
    priority: int = 0
    target_fidelity: Optional[float] = None

    @classmethod
    def from_dict(cls, data: Any, *, where: str = "tenant") -> "TenantSpec":
        data = _require_mapping(data, where)
        _reject_unknown(
            data,
            (
                "arrival_process",
                "mean_interarrival_us",
                "burst_factor",
                "phase_us",
                "size_dist",
                "channels",
                "alpha",
                "max_channels",
                "priority",
                "target_fidelity",
            ),
            where,
        )
        priority = data.get("priority", cls.priority)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ScenarioError(f"{where}.priority must be an integer, got {priority!r}")
        channels = _int_field(data, "channels", cls.channels, where, minimum=1)
        max_channels = _int_field(data, "max_channels", cls.max_channels, where, minimum=1)
        if max_channels < channels:
            raise ScenarioError(
                f"{where}.max_channels must be >= channels ({channels}), got {max_channels}"
            )
        return cls(
            arrival_process=_choice_field(
                data, "arrival_process", cls.arrival_process, where, ARRIVAL_PROCESSES
            ),
            mean_interarrival_us=_float_field(
                data,
                "mean_interarrival_us",
                cls.mean_interarrival_us,
                where,
                minimum=0.0,
                exclusive=True,
            ),
            burst_factor=_float_field(
                data, "burst_factor", cls.burst_factor, where, minimum=1.0
            ),
            phase_us=_float_field(
                data, "phase_us", cls.phase_us, where, minimum=0.0, exclusive=True
            ),
            size_dist=_choice_field(
                data, "size_dist", cls.size_dist, where, SIZE_DISTRIBUTIONS
            ),
            channels=channels,
            alpha=_float_field(data, "alpha", cls.alpha, where, minimum=0.0, exclusive=True),
            max_channels=max_channels,
            priority=priority,
            target_fidelity=_optional_unit_float(
                data, "target_fidelity", where, low=0.0, high=1.0,
                low_open=True, high_open=True,
            ),
        )


@dataclass(frozen=True)
class TrafficSpec:
    """Open-loop service-mode traffic: arrivals, admission and scheduling.

    The *presence* of a ``traffic`` section switches a scenario from closed
    batch mode (run the workload's instruction stream to completion) to open
    service mode: tenants offer channel requests over ``duration_us``, an
    admission controller gates them, and a request scheduler orders admitted
    work onto at most ``max_inflight`` concurrent transport channels.
    Scenarios without a ``traffic`` section run exactly as before — same
    flat result records, same spec hashes, same golden traces.

    Every field is optional except ``tenants`` and sweepable as
    ``traffic.<field>``.  Admission kinds: ``always`` admits everything,
    ``token_bucket`` refills ``admission_rate_per_ms`` tokens per millisecond
    up to ``admission_burst``, ``queue_bound`` drops requests arriving to a
    queue already ``queue_limit`` deep.
    """

    tenants: Dict[str, TenantSpec] = field(default_factory=dict)
    duration_us: float = 10000.0
    seed: int = 0
    max_inflight: int = 4
    admission: str = "always"
    admission_rate_per_ms: float = 10.0
    admission_burst: int = 8
    queue_limit: int = 64
    scheduler: str = "fifo"

    @classmethod
    def from_dict(cls, data: Any) -> "TrafficSpec":
        data = _require_mapping(data, "traffic")
        _reject_unknown(
            data,
            (
                "tenants",
                "duration_us",
                "seed",
                "max_inflight",
                "admission",
                "admission_rate_per_ms",
                "admission_burst",
                "queue_limit",
                "scheduler",
            ),
            "traffic",
        )
        raw_tenants = _require_mapping(data.get("tenants"), "traffic.tenants")
        if not raw_tenants:
            raise ScenarioError("traffic.tenants must define at least one tenant")
        # Sorted construction: tenant declaration order is cosmetic, so two
        # specs listing the same tenants differently share a hash/cache slot.
        tenants = {
            name: TenantSpec.from_dict(raw_tenants[name], where=f"traffic.tenants.{name}")
            for name in sorted(raw_tenants)
        }
        return cls(
            tenants=tenants,
            duration_us=_float_field(
                data, "duration_us", cls.duration_us, "traffic", minimum=0.0, exclusive=True
            ),
            seed=_int_field(data, "seed", cls.seed, "traffic", minimum=0),
            max_inflight=_int_field(
                data, "max_inflight", cls.max_inflight, "traffic", minimum=1
            ),
            admission=_choice_field(
                data, "admission", cls.admission, "traffic", ADMISSION_NAMES
            ),
            admission_rate_per_ms=_float_field(
                data,
                "admission_rate_per_ms",
                cls.admission_rate_per_ms,
                "traffic",
                minimum=0.0,
                exclusive=True,
            ),
            admission_burst=_int_field(
                data, "admission_burst", cls.admission_burst, "traffic", minimum=1
            ),
            queue_limit=_int_field(data, "queue_limit", cls.queue_limit, "traffic", minimum=1),
            scheduler=_choice_field(
                data, "scheduler", cls.scheduler, "traffic", SCHEDULER_NAMES
            ),
        )


@dataclass(frozen=True)
class RoutingSpec:
    """Load-balanced multi-path routing policy (see :mod:`repro.network.routing`).

    * ``policy`` — ``ecmp`` (deterministic SHA-256 hash of (flow id, src,
      dst) over the minimal candidates), ``least_loaded`` (minimise current
      max link occupancy) or ``adaptive`` (keep the ECMP choice unless its
      bottleneck exceeds the least-loaded one by more than ``hysteresis``
      active channels);
    * ``hysteresis`` — the adaptive policy's divert threshold in channels
      (accepted and ignored by the other policies so the policy axis sweeps
      with one parameter surface).
    """

    policy: str = "ecmp"
    hysteresis: float = 1.0

    @classmethod
    def from_dict(cls, data: Any) -> "RoutingSpec":
        data = _require_mapping(data, "network.routing")
        _reject_unknown(data, ("policy", "hysteresis"), "network.routing")
        return cls(
            policy=_choice_field(
                data, "policy", cls.policy, "network.routing", tuple(list_balancers())
            ),
            hysteresis=_float_field(
                data, "hysteresis", cls.hysteresis, "network.routing", minimum=0.0
            ),
        )


@dataclass(frozen=True)
class NetworkSpec:
    """Network-level behaviour beyond fabric shape.

    The *presence* of a ``network`` section with a ``routing`` mapping
    switches load-balanced multi-path routing on: every channel open then
    runs the configured policy over the fabric's candidate paths and a
    ``route`` trace record precedes each ``channel_open``.  Scenarios
    without the section run exactly as before — single deterministic route
    per pair, unchanged spec hashes, byte-identical golden traces.
    """

    routing: Optional[RoutingSpec] = None

    @classmethod
    def from_dict(cls, data: Any) -> "NetworkSpec":
        data = _require_mapping(data, "network")
        _reject_unknown(data, ("routing",), "network")
        routing = data.get("routing")
        return cls(
            routing=RoutingSpec.from_dict(routing) if routing is not None else None
        )


@dataclass(frozen=True)
class RuntimeSpec:
    """How the scenario executes: backend, layout, allocator, routing, limits."""

    layout: str = "home_base"
    allocator: str = "incremental"
    routing: str = "xy"
    backend: str = "fluid"
    max_events: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Any) -> "RuntimeSpec":
        data = _require_mapping(data, "runtime")
        _reject_unknown(
            data, ("layout", "allocator", "routing", "backend", "max_events"), "runtime"
        )
        max_events = data.get("max_events")
        if max_events is not None:
            max_events = _int_field(data, "max_events", 1, "runtime", minimum=1)
        layout = _choice_field(data, "layout", cls.layout, "runtime", tuple(LAYOUT_ALIASES))
        return cls(
            layout=LAYOUT_ALIASES[layout],
            allocator=_choice_field(data, "allocator", cls.allocator, "runtime", ALLOCATOR_NAMES),
            routing=_choice_field(data, "routing", cls.routing, "runtime", ROUTING_NAMES),
            backend=_choice_field(data, "backend", cls.backend, "runtime", BACKEND_NAMES),
            max_events=max_events,
        )


#: Top-level scenario keys (``extends`` is consumed by the loader).  The
#: ``noise``, ``traffic`` and ``network`` sections are optional: absent means
#: the fidelity pipeline (resp. the open-loop service mode, resp.
#: load-balanced multi-path routing) is off.
SECTION_KEYS = ("topology", "workload", "physics", "runtime", "noise", "traffic", "network")
TOP_LEVEL_KEYS = ("name", "description", "extends", *SECTION_KEYS)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved, validated scenario."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    physics: PhysicsSpec = field(default_factory=PhysicsSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    #: Optional noise model; None keeps the fidelity pipeline off entirely.
    noise: Optional[NoiseSpec] = None
    #: Optional open-loop traffic; None keeps the scenario in batch mode.
    traffic: Optional[TrafficSpec] = None
    #: Optional network behaviour; None keeps single-path routing.
    network: Optional[NetworkSpec] = None
    description: str = ""

    @classmethod
    def from_dict(cls, data: Any, *, name: Optional[str] = None) -> "ScenarioSpec":
        """Validate a scenario mapping (already inheritance-resolved)."""
        data = _require_mapping(data, "scenario")
        if "extends" in data:
            raise ScenarioError(
                "unresolved 'extends' in scenario mapping; resolve it through "
                "repro.scenarios.loader before validation"
            )
        _reject_unknown(data, TOP_LEVEL_KEYS, "scenario")
        resolved_name = data.get("name", name)
        if not isinstance(resolved_name, str) or not resolved_name.strip():
            raise ScenarioError(f"scenario.name must be a non-empty string, got {resolved_name!r}")
        description = data.get("description", "")
        if not isinstance(description, str):
            raise ScenarioError(f"scenario.description must be a string, got {description!r}")
        # An explicit ``noise: null`` means the same as an absent section:
        # fidelity accounting off.  An *empty* mapping enables it with the
        # default physics, so ``noise: {}`` is the minimal opt-in.
        noise = data.get("noise")
        # Same convention for ``traffic``: null == absent == batch mode.
        traffic = data.get("traffic")
        # And for ``network``: null == absent == single-path routing.
        network = data.get("network")
        return cls(
            name=resolved_name.strip(),
            topology=TopologySpec.from_dict(data.get("topology")),
            workload=WorkloadSpec.from_dict(data.get("workload")),
            physics=PhysicsSpec.from_dict(data.get("physics")),
            runtime=RuntimeSpec.from_dict(data.get("runtime")),
            noise=NoiseSpec.from_dict(noise) if noise is not None else None,
            traffic=TrafficSpec.from_dict(traffic) if traffic is not None else None,
            network=NetworkSpec.from_dict(network) if network is not None else None,
            description=description,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; ``from_dict`` round-trips it exactly.

        ``noise``, ``traffic`` and ``network`` are omitted when unset — and
        empty ``topology.options`` likewise — so specs predating the fidelity
        pipeline, the service mode and multi-path routing serialize (and hash
        — see :meth:`canonical_dict`) exactly as they always did.
        """
        payload = asdict(self)
        if self.noise is None:
            payload.pop("noise")
        if self.traffic is None:
            payload.pop("traffic")
        if self.network is None:
            payload.pop("network")
        if not self.topology.options:
            payload["topology"].pop("options")
        return payload

    def canonical_dict(self) -> Dict[str, Any]:
        """The dict form minus the cosmetic fields (name, description).

        This is what result-cache keys and :attr:`spec_hash` are computed
        from, so renaming or re-describing a scenario neither invalidates nor
        duplicates its cached results.
        """
        payload = self.to_dict()
        payload.pop("name")
        payload.pop("description")
        return payload

    def with_name(self, name: str) -> "ScenarioSpec":
        return replace(self, name=name)

    def with_backend(self, backend: str) -> "ScenarioSpec":
        """The same scenario on a different transport backend (validated)."""
        runtime = RuntimeSpec.from_dict({**asdict(self.runtime), "backend": backend})
        return replace(self, runtime=runtime)

    def with_noise(self, noise: Optional[Mapping[str, Any]]) -> "ScenarioSpec":
        """The same scenario with a (validated) noise section.

        ``None`` switches fidelity accounting off; a mapping — even an empty
        one — switches it on with the given overrides.
        """
        return replace(
            self, noise=NoiseSpec.from_dict(noise) if noise is not None else None
        )

    def with_traffic(self, traffic: Optional[Mapping[str, Any]]) -> "ScenarioSpec":
        """The same scenario with a (validated) traffic section.

        ``None`` returns the scenario to batch mode; a mapping switches it to
        open-loop service mode.
        """
        return replace(
            self, traffic=TrafficSpec.from_dict(traffic) if traffic is not None else None
        )

    def with_network(self, network: Optional[Mapping[str, Any]]) -> "ScenarioSpec":
        """The same scenario with a (validated) network section.

        ``None`` returns the scenario to single-path routing; a mapping with
        a ``routing`` key switches load-balanced multi-path routing on.
        """
        return replace(
            self, network=NetworkSpec.from_dict(network) if network is not None else None
        )

    @property
    def spec_hash(self) -> str:
        """Stable short hash of everything that affects the result.

        The name and description are cosmetic, so two differently-named specs
        describing the same experiment share a hash (and a cache slot).
        """
        from ..runtime.cache import parameter_hash

        return parameter_hash(self.canonical_dict())

    @property
    def label(self) -> str:
        topo = self.topology
        size = f"{topo.width}" if topo.height in (None, 1) else f"{topo.width}x{topo.height}"
        if topo.kind in ("mesh", "torus") and topo.height is None:
            size = f"{topo.width}x{topo.width}"
        return (
            f"{topo.kind}[{size}] {self.workload.kind}({self.workload.num_qubits}) "
            f"{self.runtime.layout} t={self.physics.teleporters} "
            f"g={self.physics.generators} p={self.physics.purifiers}"
        )


def apply_overrides(data: Mapping[str, Any], overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """Apply dotted-path overrides to a scenario mapping.

    ``{"topology.kind": "ring"}`` sets ``data["topology"]["kind"]``; missing
    intermediate mappings are created.  Returns a new deep-merged dict.
    """
    result = deep_merge({}, data)
    for dotted, value in overrides.items():
        if not isinstance(dotted, str) or not dotted.strip():
            raise ScenarioError(f"override keys must be dotted strings, got {dotted!r}")
        parts = [p for p in dotted.split(".") if p]
        cursor: Dict[str, Any] = result
        for part in parts[:-1]:
            nxt = cursor.get(part)
            if nxt is None:
                nxt = {}
                cursor[part] = nxt
            elif not isinstance(nxt, dict):
                raise ScenarioError(
                    f"override {dotted!r} descends into non-mapping {part!r}"
                )
            cursor = nxt
        cursor[parts[-1]] = value
    return result


def deep_merge(base: Mapping[str, Any], override: Mapping[str, Any]) -> Dict[str, Any]:
    """Recursively merge ``override`` into ``base`` (mappings merge, rest replace)."""
    result: Dict[str, Any] = {}
    for key, value in base.items():
        result[key] = deep_merge({}, value) if isinstance(value, Mapping) else value
    for key, value in override.items():
        current = result.get(key)
        if isinstance(current, Mapping) and isinstance(value, Mapping):
            result[key] = deep_merge(current, value)
        elif isinstance(value, Mapping):
            result[key] = deep_merge({}, value)
        else:
            result[key] = value
    return result
