"""Flow-based (fluid) transport backend for large simulations.

Each active logical communication is modelled as a *flow* that must push a
fixed amount of work through every resource along its path:

* one teleportation (``t_teleport`` of teleporter time) per transiting EPR
  pair at every intermediate T' node, charged to that node's X or Y teleporter
  set depending on the outgoing direction (the Figure 6 router split);
* one pair generation (``t_gen`` of generator time) per transiting pair on
  every virtual-wire link it crosses;
* ``2**rounds - 1`` purification rounds per good pair at each endpoint's
  queue purifiers;
* the data-qubit teleportations at the endpoints once the channel is up.

Concurrent flows share each resource max-min fairly (progressive filling), so
when many channels cross the same T' node — the Home Base workload — the
teleporters become the bottleneck, and when channels are short and disjoint —
the Mobile Qubit workload — the endpoint purifiers do.  That is precisely the
contention effect Figure 16 sweeps resource allocation to expose.

Every flow also has a latency *floor*: the channel-setup pipeline latency plus
the final data teleportation, which bounds how fast a communication can finish
even with unlimited bandwidth (the paper's t = g = p = 1024 normalisation
point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..network.geometry import Coordinate
from .control import PlannedCommunication
from .engine import Event, SimulationEngine
from .machine import QuantumMachine
from .results import ChannelRecord

#: Resource identifiers are (kind, *coordinates) tuples; kinds used below.
KIND_TELEPORTER_X = "teleporter_x"
KIND_TELEPORTER_Y = "teleporter_y"
KIND_GENERATOR = "generator"
KIND_PURIFIER = "purifier"

ResourceKey = Tuple


@dataclass
class ChannelFlow:
    """One in-flight logical communication in the fluid model."""

    flow_id: int
    planned: PlannedCommunication
    demands: Dict[ResourceKey, float]
    floor_us: float
    pairs_transited: float
    start_us: float
    done: Callable[["ChannelFlow"], None]
    remaining: float = 1.0
    rate: float = 0.0
    completion_event: Optional[Event] = None
    fluid_finished: bool = False

    @property
    def hops(self) -> int:
        return self.planned.hops


class FlowTransport:
    """Shares machine bandwidth among concurrent channel flows."""

    def __init__(self, engine: SimulationEngine, machine: QuantumMachine) -> None:
        self.engine = engine
        self.machine = machine
        self._flows: Dict[int, ChannelFlow] = {}
        self._next_id = 0
        self._last_update = 0.0
        self._capacity_cache: Dict[ResourceKey, float] = {}
        self._usage_integral: Dict[str, float] = {}
        self._records: List[ChannelRecord] = []

    # -- public API ---------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def records(self) -> List[ChannelRecord]:
        return self._records

    def start(
        self,
        planned: PlannedCommunication,
        done: Callable[[], None],
    ) -> None:
        """Begin servicing a planned communication; ``done`` fires at completion."""
        if planned.plan is None:
            raise SimulationError("local communications do not need the transport backend")
        self._advance_time()
        flow = ChannelFlow(
            flow_id=self._next_id,
            planned=planned,
            demands=self._build_demands(planned),
            floor_us=self._floor_us(planned),
            pairs_transited=self.machine.pairs_per_logical_communication(planned.hops),
            start_us=self.engine.now,
            done=lambda f, cb=done: cb(),
        )
        self._next_id += 1
        self._flows[flow.flow_id] = flow
        self._reallocate()

    def utilisation_report(self, elapsed_us: float) -> Dict[str, float]:
        """Average utilisation per resource *class* over ``elapsed_us``."""
        if elapsed_us <= 0:
            return {}
        totals: Dict[str, float] = {}
        capacities: Dict[str, float] = {}
        for key, capacity in self._capacity_cache.items():
            kind = key[0]
            capacities[kind] = capacities.get(kind, 0.0) + capacity
        for kind, usage in self._usage_integral.items():
            cap = capacities.get(kind, 0.0)
            if cap > 0:
                totals[kind] = min(usage / (cap * elapsed_us), 1.0)
        return totals

    # -- demand construction -----------------------------------------------------------

    def _build_demands(self, planned: PlannedCommunication) -> Dict[ResourceKey, float]:
        plan = planned.plan
        assert plan is not None
        machine = self.machine
        times = machine.params.times
        pairs = machine.pairs_per_logical_communication(plan.hops)
        good_pairs = machine.good_pairs_per_logical_communication()
        rounds_work = machine.purifier_rounds_per_good_pair(plan.hops)
        demands: Dict[ResourceKey, float] = {}

        def _add(key: ResourceKey, work: float) -> None:
            if work > 0:
                demands[key] = demands.get(key, 0.0) + work

        path = plan.path
        # Chained-teleportation swaps at every intermediate node.
        swap_time = times.teleport(0.0)
        for previous, node, nxt in zip(path.nodes, path.nodes[1:], path.nodes[2:]):
            kind = KIND_TELEPORTER_X if nxt.y == node.y else KIND_TELEPORTER_Y
            _add((kind, node.as_tuple()), pairs * swap_time)
        # Virtual-wire pair generation on every traversed link.
        for link in path.links:
            _add((KIND_GENERATOR, link.a.as_tuple(), link.b.as_tuple()), pairs * times.generate)
        # Endpoint purification and data teleports.
        purify_time = times.purify_round(0.0)
        data_teleport = good_pairs * swap_time
        for endpoint in (path.source, path.destination):
            _add((KIND_PURIFIER, endpoint.as_tuple()), good_pairs * rounds_work * purify_time)
            kind = KIND_TELEPORTER_X
            _add((kind, endpoint.as_tuple()), data_teleport)
        return demands

    def _floor_us(self, planned: PlannedCommunication) -> float:
        plan = planned.plan
        assert plan is not None
        return self.machine.channel_setup_floor_us(plan.hops) + self.machine.data_teleport_us(
            plan.hops
        )

    def _capacity(self, key: ResourceKey) -> float:
        if key not in self._capacity_cache:
            kind = key[0]
            machine = self.machine
            if kind in (KIND_TELEPORTER_X, KIND_TELEPORTER_Y):
                value = machine.teleporter_bandwidth_per_direction()
            elif kind == KIND_GENERATOR:
                value = machine.generator_bandwidth_per_link()
            elif kind == KIND_PURIFIER:
                value = machine.purifier_bandwidth_per_node()
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown resource kind {kind!r}")
            self._capacity_cache[key] = value
        return self._capacity_cache[key]

    # -- fluid dynamics ---------------------------------------------------------------------

    def _advance_time(self) -> None:
        """Account for progress made since the last rate change."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows.values():
                flow.remaining = max(flow.remaining - flow.rate * elapsed, 0.0)
                for key, work in flow.demands.items():
                    kind = key[0]
                    self._usage_integral[kind] = (
                        self._usage_integral.get(kind, 0.0) + flow.rate * work * elapsed
                    )
        self._last_update = now

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule completion events."""
        rates = self._max_min_rates(list(self._flows.values()))
        for flow in self._flows.values():
            flow.rate = rates[flow.flow_id]
            if flow.completion_event is not None:
                flow.completion_event.cancel()
                flow.completion_event = None
            self._schedule_completion(flow)

    def _max_min_rates(self, flows: List[ChannelFlow]) -> Dict[int, float]:
        rates: Dict[int, float] = {flow.flow_id: 0.0 for flow in flows}
        if not flows:
            return rates
        remaining_cap: Dict[ResourceKey, float] = {}
        for flow in flows:
            for key in flow.demands:
                remaining_cap.setdefault(key, self._capacity(key))
        unfrozen = {flow.flow_id: flow for flow in flows}
        # Progressive filling: all unfrozen rates rise together until a
        # resource saturates; its users freeze, and the rest keep rising.
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            best_delta = float("inf")
            for key, cap_left in remaining_cap.items():
                denom = sum(
                    flow.demands.get(key, 0.0) for flow in unfrozen.values()
                )
                if denom <= 0.0:
                    continue
                best_delta = min(best_delta, cap_left / denom)
            if best_delta == float("inf"):
                # No shared resource constrains the remaining flows; give them
                # an effectively unconstrained rate (their floor dominates).
                for flow_id in unfrozen:
                    rates[flow_id] += 1.0
                break
            for flow_id in unfrozen:
                rates[flow_id] += best_delta
            for key in remaining_cap:
                denom = sum(flow.demands.get(key, 0.0) for flow in unfrozen.values())
                remaining_cap[key] -= best_delta * denom
            saturated = {key for key, cap in remaining_cap.items() if cap <= 1e-12}
            newly_frozen = [
                flow_id
                for flow_id, flow in unfrozen.items()
                if any(key in saturated for key in flow.demands)
            ]
            if not newly_frozen:
                break
            for flow_id in newly_frozen:
                del unfrozen[flow_id]
        return rates

    def _schedule_completion(self, flow: ChannelFlow) -> None:
        now = self.engine.now
        if flow.remaining <= 1e-12:
            finish = now
        elif flow.rate <= 0.0:
            return  # Stalled; will be rescheduled at the next reallocation.
        else:
            finish = now + flow.remaining / flow.rate
        finish = max(finish, flow.start_us + flow.floor_us)
        flow.completion_event = self.engine.schedule_at(
            finish, lambda f=flow: self._complete(f), priority=1
        )

    def _complete(self, flow: ChannelFlow) -> None:
        if flow.flow_id not in self._flows:
            return
        self._advance_time()
        if flow.remaining > 1e-9:
            # A reallocation slowed the flow after this event was scheduled;
            # let the rescheduled event handle it.
            return
        del self._flows[flow.flow_id]
        request = flow.planned.request
        self._records.append(
            ChannelRecord(
                source=request.source.as_tuple(),
                destination=request.dest.as_tuple(),
                hops=flow.hops,
                start_us=flow.start_us,
                end_us=self.engine.now,
                pairs_transited=flow.pairs_transited,
                purpose=request.purpose,
                qubit=request.qubit,
            )
        )
        flow.done(flow)
        self._reallocate()
