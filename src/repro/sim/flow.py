"""Flow-based (fluid) transport backend for large simulations.

Each active logical communication is modelled as a *flow* that must push a
fixed amount of work through every resource along its path:

* one teleportation (``t_teleport`` of teleporter time) per transiting EPR
  pair at every intermediate T' node, charged to that node's X or Y teleporter
  set depending on the outgoing direction (the Figure 6 router split);
* one pair generation (``t_gen`` of generator time) per transiting pair on
  every virtual-wire link it crosses;
* ``2**rounds - 1`` purification rounds per good pair at each endpoint's
  queue purifiers;
* the data-qubit teleportations at the endpoints once the channel is up,
  charged to the X or Y router half that the endpoint's link uses.

Concurrent flows share each resource max-min fairly (progressive filling), so
when many channels cross the same T' node — the Home Base workload — the
teleporters become the bottleneck, and when channels are short and disjoint —
the Mobile Qubit workload — the endpoint purifiers do.  That is precisely the
contention effect Figure 16 sweeps resource allocation to expose.

Every flow also has a latency *floor*: the channel-setup pipeline latency plus
the final data teleportation, which bounds how fast a communication can finish
even with unlimited bandwidth (the paper's t = g = p = 1024 normalisation
point).

Three allocators are available:

* ``incremental`` (the default) maintains a persistent resource→flows index
  so each progressive-filling iteration recomputes a resource's demand only
  over the flows actually registered on it, freezes bottlenecked flows
  through the index, and advances the utilisation integral from per-kind rate
  sums instead of walking every flow's demand vector.  An event costs
  O(iterations · (resources + index entries)) instead of the from-scratch
  O(flows² · resources).  The arithmetic is ordered to be *bitwise identical*
  to the reference allocator — skipping a flow's denominators contributes
  exact zeros — so both allocators produce the same event trace, not merely
  statistically similar ones (degenerate max-min ties would otherwise break
  differently and cascade into diverging makespans).
* ``vectorized`` moves the whole data plane into flat numpy arrays
  (:mod:`repro.sim.flowpack`): demand sums become sequential ``bincount``
  accumulations in flow-id order, the bottleneck delta a vectorized
  ``cap_left / denom`` min-reduction, freezing a boolean mask — all ordered
  to stay bitwise identical to the other two allocators.  It also collapses
  the per-flow completion events into a single chained next-completion event
  (the event-loop compaction for the reallocate/complete storm): every
  reallocation recomputes each flow's finish time exactly as
  ``_schedule_completion`` would, takes the argmin (ties resolve to the
  lowest flow id, which is also the event-priority order the per-flow heap
  uses), and keeps one pending event instead of N.
* ``reference`` recomputes every rate by scanning every flow for every
  resource on every event (the original seed behaviour).  It is kept as the
  oracle the benchmarks and property tests compare the fast allocators
  against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from ..errors import SimulationError
from ..trace.records import FlowRateChanged
from .control import PlannedCommunication
from .engine import Event, SimulationEngine
from .machine import QuantumMachine
from .transport import TransportBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flowpack import FlowPack

#: Resource identifiers are (kind, *coordinates) tuples; kinds used below.
KIND_TELEPORTER_X = "teleporter_x"
KIND_TELEPORTER_Y = "teleporter_y"
KIND_GENERATOR = "generator"
KIND_PURIFIER = "purifier"

#: All resource kinds, in the order the vectorized pack accounts for them.
RESOURCE_KINDS = (KIND_TELEPORTER_X, KIND_TELEPORTER_Y, KIND_GENERATOR, KIND_PURIFIER)

ResourceKey = Tuple

#: The allocator names FlowTransport accepts (mirrored by the scenario codec).
ALLOCATORS = ("incremental", "reference", "vectorized")

#: Residual capacity below which a resource counts as saturated.
_SATURATION_EPS = 1e-12
#: Residual work below which a flow counts as finished.  Completion
#: *scheduling* and the completion handler use this same epsilon: a flow whose
#: residue is at or below it schedules an immediate completion that the
#: handler then accepts.  (They used to disagree — scheduling tested the far
#: tighter ``_SATURATION_EPS`` — so a flow with residue in between scheduled
#: an immediate event that no-op'd and was left stalled.)
_COMPLETION_EPS = 1e-9


@dataclass
class ChannelFlow:
    """One in-flight logical communication in the fluid model.

    Under the ``vectorized`` allocator the scalar ``remaining``/``rate``
    fields are *not* advanced — the flowpack arrays are authoritative — and
    ``completion_event`` stays unused (the transport keeps a single chained
    next-completion event instead).
    """

    flow_id: int
    planned: PlannedCommunication
    demands: Dict[ResourceKey, float]
    floor_us: float
    pairs_transited: float
    start_us: float
    done: Callable[["ChannelFlow"], None]
    remaining: float = 1.0
    rate: float = 0.0
    completion_event: Optional[Event] = None

    @property
    def hops(self) -> int:
        return self.planned.hops


@register_backend
class FlowTransport(TransportBackend):
    """Shares machine bandwidth among concurrent channel flows."""

    name = "fluid"
    description = (
        "Max-min fair fluid flows over teleporter/generator/purifier "
        "bandwidth; fast, scales to large grids and full sweeps."
    )
    uses_allocator = True

    def __init__(
        self,
        engine: SimulationEngine,
        machine: QuantumMachine,
        *,
        allocator: str = "incremental",
    ) -> None:
        if allocator not in ALLOCATORS:
            raise SimulationError(
                f"unknown allocator {allocator!r}; expected one of {ALLOCATORS}"
            )
        super().__init__(engine, machine)
        self.allocator = allocator
        self._incremental = allocator == "incremental"
        self._vectorized = allocator == "vectorized"
        self._flows: Dict[int, ChannelFlow] = {}
        self._last_update = 0.0
        self._usage_integral: Dict[str, float] = {}
        #: Persistent resource → {flow_id: demand work} index.
        self._members: Dict[ResourceKey, Dict[int, float]] = {}
        #: Per-kind sum of rate * work over active flows (usage accounting).
        self._kind_rate_sum: Dict[str, float] = {}
        #: Capacity is a pure function of the resource *kind* (three values),
        #: so it is memoized per kind; the per-kind capacity *totals* are
        #: accumulated key by key as resources are first used, preserving the
        #: exact summation order the old per-key cache walk produced.
        self._kind_capacity: Dict[str, float] = {}
        self._kind_capacity_total: Dict[str, float] = {}
        self._seen_keys: Set[ResourceKey] = set()
        self._pack: Optional["FlowPack"] = None
        self._next_completion: Optional[Event] = None
        #: Flows whose chained completion fired but no-op'd since the last
        #: reallocation (mirrors the per-flow heap, where a fired event is
        #: spent until the next reallocation re-schedules it).
        self._spent_completions: Set[int] = set()
        if self._vectorized:
            try:
                from .flowpack import FlowPack
            except ImportError as exc:  # pragma: no cover - env without numpy
                raise SimulationError(
                    "the 'vectorized' allocator requires numpy; install it or "
                    "use the 'incremental' allocator"
                ) from exc
            self._pack = FlowPack(self._capacity, RESOURCE_KINDS)

    # -- public API ---------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def start(
        self,
        planned: PlannedCommunication,
        done: Callable[[], None],
    ) -> None:
        """Begin servicing a planned communication; ``done`` fires at completion."""
        self._advance_time()
        flow_id, planned = self._open_channel(planned)
        profile = self.machine.flow_profile(planned.plan.hops)
        flow = ChannelFlow(
            flow_id=flow_id,
            planned=planned,
            demands=self._build_demands(planned),
            floor_us=profile.floor_us,
            pairs_transited=profile.pairs,
            start_us=self.engine.now,
            done=lambda f, cb=done: cb(),
        )
        self._flows[flow.flow_id] = flow
        for key, work in flow.demands.items():
            self._members.setdefault(key, {})[flow.flow_id] = work
            if key not in self._seen_keys:
                self._seen_keys.add(key)
                kind = key[0]
                self._kind_capacity_total[kind] = (
                    self._kind_capacity_total.get(kind, 0.0) + self._capacity(key)
                )
        if self._pack is not None:
            self._pack.add_flow(
                flow.flow_id,
                flow.demands,
                remaining=flow.remaining,
                start_us=flow.start_us,
                floor_us=flow.floor_us,
            )
        self._reallocate()

    def utilisation_report(self, elapsed_us: float, *, clamp: bool = True) -> Dict[str, float]:
        """Average utilisation per resource *class* over ``elapsed_us``.

        With ``clamp=False`` the raw usage/capacity ratio is returned; on a
        well-formed run it never exceeds 1 (the property tests assert this),
        so the default clamp only guards against float round-off.
        """
        if elapsed_us <= 0:
            return {}
        totals: Dict[str, float] = {}
        for kind, usage in self._usage_integral.items():
            cap = self._kind_capacity_total.get(kind, 0.0)
            if cap > 0:
                ratio = usage / (cap * elapsed_us)
                totals[kind] = min(ratio, 1.0) if clamp else ratio
        return totals

    def resource_loads(self) -> Dict[ResourceKey, float]:
        """Instantaneous per-resource load: sum of rate x work over active flows."""
        if self._pack is not None:
            return self._pack.loads()
        loads: Dict[ResourceKey, float] = {}
        for key, members in self._members.items():
            load = 0.0
            for flow_id, work in members.items():
                load += self._flows[flow_id].rate * work
            if load > 0.0:
                loads[key] = load
        return loads

    def capacity_of(self, key: ResourceKey) -> float:
        """Bandwidth of one resource (public for invariant checks)."""
        return self._capacity(key)

    # -- demand construction -----------------------------------------------------------

    def _build_demands(self, planned: PlannedCommunication) -> Dict[ResourceKey, float]:
        """Demand vector for a planned communication, warm-cache aware.

        The demand dict is a pure function of the traversed path for a fixed
        machine structure, and it is read-only once built, so machines
        attached to a warm-start entry share one dict per endpoint pair
        across flows and across runs.  Under a load balancer the same pair
        may take different paths, so the cache keys on the full node
        sequence instead (the ``network`` section is part of the warm-start
        structural key, so balanced and unbalanced runs never share entries).
        """
        cache = self.machine.demand_cache
        if cache is None:
            return self._compute_demands(planned)
        path = planned.plan.path
        if self.balancer is not None:
            cache_key = tuple(node.as_tuple() for node in path.nodes)
        else:
            cache_key = (path.source.as_tuple(), path.destination.as_tuple())
        demands = cache.get(cache_key)
        if demands is None:
            demands = self._compute_demands(planned)
            cache[cache_key] = demands
        return demands

    def _compute_demands(self, planned: PlannedCommunication) -> Dict[ResourceKey, float]:
        plan = planned.plan
        assert plan is not None
        profile = self.machine.flow_profile(plan.hops)
        demands: Dict[ResourceKey, float] = {}

        def _add(key: ResourceKey, work: float) -> None:
            if work > 0:
                demands[key] = demands.get(key, 0.0) + work

        path = plan.path
        nodes = path.nodes
        # Chained-teleportation swaps at every intermediate node, charged to
        # the X or Y teleporter set by the outgoing direction (Figure 6).
        for node, nxt in zip(nodes[1:], nodes[2:]):
            kind = KIND_TELEPORTER_X if nxt.y == node.y else KIND_TELEPORTER_Y
            _add((kind, node.as_tuple()), profile.swap_work)
        # Virtual-wire pair generation on every traversed link.
        for link in path.links:
            _add((KIND_GENERATOR, link.a.as_tuple(), link.b.as_tuple()), profile.generator_work)
        # Endpoint purification and data teleports.  The data teleport uses
        # the router half matching the endpoint's link direction, exactly as
        # the swap loop above does for intermediate hops.
        for endpoint, neighbour in (
            (path.source, nodes[1] if len(nodes) > 1 else None),
            (path.destination, nodes[-2] if len(nodes) > 1 else None),
        ):
            _add((KIND_PURIFIER, endpoint.as_tuple()), profile.purifier_work)
            kind = (
                KIND_TELEPORTER_X
                if neighbour is None or neighbour.y == endpoint.y
                else KIND_TELEPORTER_Y
            )
            _add((kind, endpoint.as_tuple()), profile.data_teleport_work)
        return demands

    def _capacity(self, key: ResourceKey) -> float:
        kind = key[0]
        value = self._kind_capacity.get(kind)
        if value is None:
            machine = self.machine
            if kind in (KIND_TELEPORTER_X, KIND_TELEPORTER_Y):
                value = machine.teleporter_bandwidth_per_direction()
            elif kind == KIND_GENERATOR:
                value = machine.generator_bandwidth_per_link()
            elif kind == KIND_PURIFIER:
                value = machine.purifier_bandwidth_per_node()
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown resource kind {kind!r}")
            self._kind_capacity[kind] = value
        return value

    # -- fluid dynamics ---------------------------------------------------------------------

    def _advance_time(self) -> None:
        """Account for progress made since the last rate change."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            if self._pack is not None:
                self._pack.advance(elapsed)
            else:
                # Per-flow progress uses the same arithmetic in all modes so
                # the allocators stay bitwise comparable.
                for flow in self._flows.values():
                    flow.remaining = max(flow.remaining - flow.rate * elapsed, 0.0)
            if self._incremental or self._vectorized:
                # The usage integral advances from per-kind rate sums
                # maintained at rate changes: O(kinds) instead of walking
                # every flow's demand vector.
                for kind, total in self._kind_rate_sum.items():
                    if total > 0.0:
                        self._usage_integral[kind] = (
                            self._usage_integral.get(kind, 0.0) + total * elapsed
                        )
            else:
                for flow in self._flows.values():
                    for key, work in flow.demands.items():
                        kind = key[0]
                        self._usage_integral[kind] = (
                            self._usage_integral.get(kind, 0.0) + flow.rate * work * elapsed
                        )
        self._last_update = now

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule completion events."""
        if self._pack is not None:
            self._reallocate_vectorized()
            return
        allocate = self._max_min_rates if self._incremental else self._max_min_rates_reference
        rates = allocate(list(self._flows.values()))
        trace = self.engine.trace
        if trace is not None and not trace.wants(FlowRateChanged.kind):
            trace = None
        for flow in self._flows.values():
            new_rate = rates[flow.flow_id]
            if self._incremental and new_rate != flow.rate:
                delta = new_rate - flow.rate
                for key, work in flow.demands.items():
                    kind = key[0]
                    self._kind_rate_sum[kind] = (
                        self._kind_rate_sum.get(kind, 0.0) + delta * work
                    )
            if trace is not None and new_rate != flow.rate:
                # Only genuine changes are emitted, so the rate timeline is a
                # pure function of the fluid dynamics — identical across
                # allocators (they compute bitwise-equal rates) and across
                # re-runs, which is what the differential harness diffs.
                trace.emit(
                    FlowRateChanged(t_us=self.engine.now, flow_id=flow.flow_id, rate=new_rate)
                )
            flow.rate = new_rate
            self._schedule_completion(flow)

    def _reallocate_vectorized(self) -> None:
        """Vectorized rates plus the single chained next-completion event."""
        pack = self._pack
        assert pack is not None
        self._spent_completions.clear()
        trace = self.engine.trace
        if trace is not None and not trace.wants(FlowRateChanged.kind):
            trace = None
        changes = pack.reallocate(_SATURATION_EPS, collect_changes=trace is not None)
        if trace is not None:
            now = self.engine.now
            for flow_id, rate in changes:
                trace.emit(FlowRateChanged(t_us=now, flow_id=flow_id, rate=rate))
        self._kind_rate_sum = pack.kind_rate_sums()
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        """Keep exactly one pending completion event: the earliest one.

        Ties resolve to the lowest flow id — the same order the per-flow
        heap's ``1 + flow_id`` priorities impose — and completing that flow
        triggers a reallocation that re-arms the chain, so simultaneous
        completions still fire one by one in identical order.
        """
        pack = self._pack
        assert pack is not None
        nxt = pack.next_completion(
            self.engine.now,
            _COMPLETION_EPS,
            exclude_flow_ids=self._spent_completions or None,
        )
        event = self._next_completion
        if nxt is None:
            if event is not None:
                event.cancel()
                self._next_completion = None
            return
        flow_id, finish = nxt
        priority = 1 + flow_id
        if (
            event is not None
            and not event.cancelled
            and event.priority == priority
            and event.time == finish
        ):
            return
        if event is not None:
            event.cancel()
        flow = self._flows[flow_id]
        self._next_completion = self.engine.schedule_at(
            finish, lambda f=flow: self._complete(f), priority=priority
        )

    # -- incremental allocator ----------------------------------------------------------

    def _max_min_rates(self, flows: List[ChannelFlow]) -> Dict[int, float]:
        """Progressive filling accelerated by the resource→flows index.

        Each iteration recomputes a resource's unfrozen demand by walking only
        the flows registered on it, and finds the flows to freeze from the
        saturated resources' member lists.  Skipped flows would contribute
        exact ``0.0`` terms, so every float operation matches the reference
        allocator bit for bit — the two produce identical rates, merely at
        O(iterations · index entries) instead of O(iterations · resources ·
        flows).
        """
        rates: Dict[int, float] = {flow.flow_id: 0.0 for flow in flows}
        if not flows:
            return rates
        remaining_cap: Dict[ResourceKey, float] = {}
        for flow in flows:
            for key in flow.demands:
                remaining_cap.setdefault(key, self._capacity(key))
        # Unfrozen members per resource, seeded from the persistent index
        # (flow-id ordered) and thinned as flows freeze; demand sums then walk
        # exactly the flows still being filled.
        alive: Dict[ResourceKey, Dict[int, float]] = {
            key: dict(self._members[key]) for key in remaining_cap
        }
        unfrozen = {flow.flow_id: flow for flow in flows}
        # Per-resource demand sums are cached between iterations and only
        # recomputed for keys whose membership changed (a resummed unchanged
        # key would give the bitwise-same float, so caching is exact).
        denom: Dict[ResourceKey, float] = {}
        dirty = set(remaining_cap)
        # Progressive filling: all unfrozen rates rise together until the
        # bottleneck resource saturates; its users freeze (found through the
        # index), and the rest keep rising.
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            for key in sorted(dirty):
                d = 0.0
                for work in alive[key].values():
                    d += work
                denom[key] = d
            dirty = set()
            best_delta = float("inf")
            for key, cap_left in remaining_cap.items():
                d = denom[key]
                if d > 0.0:
                    delta = cap_left / d
                    if delta < best_delta:
                        best_delta = delta
            if best_delta == float("inf"):
                # No shared resource constrains the remaining flows; give them
                # an effectively unconstrained rate (their floor dominates).
                for flow_id in unfrozen:
                    rates[flow_id] += 1.0
                break
            for flow_id in unfrozen:
                rates[flow_id] += best_delta
            newly_frozen = set()
            for key, d in denom.items():
                if d > 0.0:
                    remaining_cap[key] -= best_delta * d
                    if remaining_cap[key] <= _SATURATION_EPS:
                        newly_frozen.update(alive[key])
            if not newly_frozen:
                break
            for flow_id in sorted(newly_frozen):
                flow = unfrozen.pop(flow_id)
                for key in flow.demands:
                    alive[key].pop(flow_id, None)
                    dirty.add(key)
        return rates

    # -- reference (from-scratch) allocator ----------------------------------------------

    def _max_min_rates_reference(self, flows: List[ChannelFlow]) -> Dict[int, float]:
        rates: Dict[int, float] = {flow.flow_id: 0.0 for flow in flows}
        if not flows:
            return rates
        remaining_cap: Dict[ResourceKey, float] = {}
        for flow in flows:
            for key in flow.demands:
                remaining_cap.setdefault(key, self._capacity(key))
        unfrozen = {flow.flow_id: flow for flow in flows}
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            best_delta = float("inf")
            for key, cap_left in remaining_cap.items():
                denom = sum(
                    flow.demands.get(key, 0.0) for flow in unfrozen.values()
                )
                if denom <= 0.0:
                    continue
                best_delta = min(best_delta, cap_left / denom)
            if best_delta == float("inf"):
                for flow_id in unfrozen:
                    rates[flow_id] += 1.0
                break
            for flow_id in unfrozen:
                rates[flow_id] += best_delta
            for key in remaining_cap:
                denom = sum(flow.demands.get(key, 0.0) for flow in unfrozen.values())
                remaining_cap[key] -= best_delta * denom
            saturated = {key for key, cap in remaining_cap.items() if cap <= _SATURATION_EPS}
            newly_frozen = [
                flow_id
                for flow_id, flow in unfrozen.items()
                if any(key in saturated for key in flow.demands)
            ]
            if not newly_frozen:
                break
            for flow_id in newly_frozen:
                del unfrozen[flow_id]
        return rates

    # -- completion -----------------------------------------------------------------------

    def _schedule_completion(self, flow: ChannelFlow) -> None:
        """(Re-)arm a flow's completion event, keeping it when unchanged.

        The finish time is recomputed from the current rate on every
        reallocation; if it lands bitwise on the already-pending event's time
        the event is kept instead of cancelled and re-pushed, which cuts the
        reallocate/complete storm's heap churn without changing a single
        observable (the kept event has the identical time and priority the
        fresh push would get).
        """
        now = self.engine.now
        if flow.remaining <= _COMPLETION_EPS:
            finish = now
        elif flow.rate <= 0.0:
            # Stalled; will be rescheduled at the next reallocation.
            if flow.completion_event is not None:
                flow.completion_event.cancel()
                flow.completion_event = None
            return
        else:
            finish = now + flow.remaining / flow.rate
        finish = max(finish, flow.start_us + flow.floor_us)
        event = flow.completion_event
        if event is not None:
            if not event.cancelled and event.time == finish:
                return
            event.cancel()
        # Priority encodes the flow id so simultaneous completions execute in
        # flow order by construction rather than by heap insertion sequence,
        # keeping the event order deterministic and identical across
        # allocators even if one of them ever reschedules less eagerly.
        flow.completion_event = self.engine.schedule_at(
            finish, lambda f=flow: self._complete(f), priority=1 + flow.flow_id
        )

    def _complete(self, flow: ChannelFlow) -> None:
        if flow.flow_id not in self._flows:
            return
        if self._pack is not None:
            # The fired event was the single chained one; it is spent.
            self._next_completion = None
        else:
            # The fired event must never be cancelled or kept again.
            flow.completion_event = None
        self._advance_time()
        remaining = (
            self._pack.remaining_of(flow.flow_id) if self._pack is not None else flow.remaining
        )
        if remaining > _COMPLETION_EPS:
            # A reallocation slowed the flow after this event was scheduled;
            # let the next reallocation re-arm it.  In chained mode the other
            # flows' completions must stay armed, so re-arm the chain with
            # this flow excluded (its per-flow event would be spent too).
            if self._pack is not None:
                self._spent_completions.add(flow.flow_id)
                self._schedule_next_completion()
            return
        del self._flows[flow.flow_id]
        if self._pack is not None:
            self._pack.remove_flow(flow.flow_id)
        for key in flow.demands:
            if self._incremental:
                work = flow.demands[key]
                kind = key[0]
                self._kind_rate_sum[kind] = self._kind_rate_sum.get(kind, 0.0) - flow.rate * work
            members = self._members.get(key)
            if members is not None:
                members.pop(flow.flow_id, None)
                if not members:
                    del self._members[key]
        self._close_channel(
            flow.flow_id,
            flow.planned,
            start_us=flow.start_us,
            pairs_transited=flow.pairs_transited,
        )
        flow.done(flow)
        self._reallocate()
