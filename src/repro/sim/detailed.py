"""Detailed (per-EPR-pair) transport backend for full instruction streams.

:mod:`repro.sim.channel_setup` simulates *one* channel at individual-pair
granularity; this module promotes that model to a full
:class:`~repro.sim.transport.TransportBackend`: every planned communication
of a workload becomes a channel whose raw pairs are generated on the
traversed virtual-wire links, chained-teleported through every intermediate
T' node and queue-purified at both endpoints — with the hardware *shared*
between concurrent channels:

* one :class:`~repro.sim.generator.LinkGenerator` per virtual-wire link,
  so channels crossing the same link drain the same pair buffer;
* one :class:`~repro.sim.teleporter.TeleporterNodeSim` per T' node, so the
  X/Y teleporter sets queue swaps from every transiting channel (the
  contention the fluid model spreads max-min fairly shows up here as real
  FIFO queueing);
* one bounded storage pool per T' node (the router's ``4t`` incoming cells),
  so pipelines back-pressure instead of overflowing shared storage — a pair
  releases its cell before requesting the next node's, which keeps the walk
  free of hold-and-wait deadlocks on any fabric;
* one bank of ``p`` purifier units per endpoint node, shared by every
  channel sourced or terminating there (each channel runs one queue
  *structure* per endpoint — both ends purify their halves, as the fluid
  model charges — while the physical units are common).

A channel completes after its good pairs are produced and the data-qubit
teleports are serviced at both endpoint routers.  The backend is exact and
deterministic but costs events per pair-hop, so it is the validation
granularity: ``repro.verify`` replays catalog scenarios under both backends
and holds makespans to a documented tolerance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..network.geometry import Coordinate
from ..network.topology import LinkId
from .control import PlannedCommunication
from .engine import SimulationEngine
from .generator import LinkGenerator
from .machine import QuantumMachine
from .qpurifier import QueuePurifier
from .resources import ResourcePool, ServiceCenter
from .teleporter import TeleporterNodeSim, swap_routing
from .transport import TransportBackend, register_backend


def _endpoint_dimension(endpoint: Coordinate, neighbour: Coordinate) -> str:
    """Which teleporter set services an endpoint's data teleports (Figure 6)."""
    return "x" if neighbour.y == endpoint.y else "y"


class _PairWalk:
    """Drives one raw pair hop-by-hop from its first link to the purifier."""

    __slots__ = ("channel", "hop")

    def __init__(self, channel: "_DetailedChannel") -> None:
        self.channel = channel
        self.hop = 0

    def start(self) -> None:
        self._take_link_pair()

    def _take_link_pair(self) -> None:
        link = self.channel.links[self.hop]
        self.channel.transport.generator_for(link).take_pair(self._pair_ready)

    def _pair_ready(self) -> None:
        channel = self.channel
        nodes = channel.nodes
        if self.hop < len(channel.links) - 1:
            node = nodes[self.hop + 1]
            # The cell is released before the next hop's is requested, so a
            # waiting pair holds no storage anywhere — no hold-and-wait.
            channel.transport.storage_for(node).acquire(self._swap)
        else:
            channel.pair_delivered(self)

    def _swap(self) -> None:
        channel = self.channel
        nodes = channel.nodes
        node = nodes[self.hop + 1]
        dimension, turn = swap_routing(nodes[self.hop], node, nodes[self.hop + 2])
        channel.transport.teleporter_for(node).teleport_through(
            dimension, self._swapped, turn=turn
        )

    def _swapped(self) -> None:
        node = self.channel.nodes[self.hop + 1]
        self.channel.transport.storage_for(node).release()
        self.hop += 1
        self._take_link_pair()


class _DetailedChannel:
    """One in-flight communication serviced at per-pair granularity."""

    def __init__(
        self,
        transport: "DetailedTransport",
        flow_id: int,
        planned: PlannedCommunication,
        done: Callable[[], None],
    ) -> None:
        plan = planned.plan
        assert plan is not None
        self.transport = transport
        self.flow_id = flow_id
        self.planned = planned
        self.done = done
        self.start_us = transport.engine.now
        self.nodes = plan.path.nodes
        self.links: List[LinkId] = list(plan.path.links)
        machine = transport.machine
        self.good_pairs_needed = machine.good_pairs_per_logical_communication()
        # The threshold-driven level selection can legitimately pick zero
        # rounds (a loose noise.target_fidelity): then the arrival pairs are
        # already good, no purifier runs — matching the fluid model, which
        # charges zero purifier work at level 0 — and one raw pair yields one
        # good pair.  detailed_pair_budget's depth clamp only applies to the
        # purifying regime.
        self.purifier_depth = machine.planner.budget_for_hops(plan.hops).endpoint_rounds
        # With fidelity accounting on, every queued pair carries its
        # Bell-diagonal arrival state and each purification round runs the
        # protocol's exact recurrence — the sampled counterpart of the fluid
        # backend's analytical Werner algebra.
        input_state = protocol = None
        if transport.fidelity is not None:
            input_state = transport.fidelity.profile(plan.hops).arrival_state
            protocol = machine.planner.protocol_instance
        self._input_fidelity = input_state.fidelity if input_state is not None else None
        if self.purifier_depth == 0:
            self.raw_pairs_needed = self.good_pairs_needed
            self.purifiers = ()
        else:
            self.purifier_depth, self.raw_pairs_needed = machine.detailed_pair_budget(
                plan.hops
            )
            # Purification happens at *both* endpoints: each end runs the same
            # queue structure on its halves of the pairs, occupying that node's
            # shared purifier bank (exactly the work the fluid model charges to
            # both endpoint purifiers).  A good pair exists once both sides have
            # finished purifying it.
            self.purifiers = tuple(
                QueuePurifier(
                    transport.engine,
                    depth=self.purifier_depth,
                    params=machine.params,
                    on_good_pair=lambda side=side: self._good_pair_ready(side),
                    name=f"P{endpoint}",
                    service=transport.purifier_service_for(endpoint),
                    input_state=input_state,
                    protocol=protocol,
                )
                for side, endpoint in enumerate((plan.source, plan.destination))
            )
        self._injected = 0
        self._in_flight = 0
        self._good_pairs = [0, 0]
        self._teleports_pending = 0
        self._teleports_started = False
        # Same pipelining window as the single-channel detailed simulator:
        # a few pairs per hop keeps the pipeline full without flooding the
        # event heap; the shared storage pools provide the back-pressure.
        self._window = 2 * max(len(self.links), 1) + 2

    def begin(self) -> None:
        self._inject()

    # -- pair lifecycle ---------------------------------------------------------------

    def _inject(self) -> None:
        while self._in_flight < self._window and self._injected < self.raw_pairs_needed:
            self._injected += 1
            self._in_flight += 1
            _PairWalk(self).start()

    def pair_delivered(self, walk: _PairWalk) -> None:
        self._in_flight -= 1
        if self.purifiers:
            for purifier in self.purifiers:
                purifier.accept_raw_pair()
        else:
            # Level 0: the delivered pair is already above target at both ends.
            for side in (0, 1):
                self._good_pair_ready(side)
        self._inject()

    def _good_pair_ready(self, side: int) -> None:
        self._good_pairs[side] += 1
        if (
            not self._teleports_started
            and min(self._good_pairs) >= self.good_pairs_needed
        ):
            self._teleports_started = True
            self._start_data_teleports()

    # -- completion -------------------------------------------------------------------

    def _start_data_teleports(self) -> None:
        """Teleport the data qubits through both endpoint routers.

        The fluid model charges ``good_pairs`` of teleporter work to each
        endpoint's X or Y set (by the direction its link leaves in); the
        detailed backend queues exactly those jobs on the shared routers.
        """
        transport = self.transport
        nodes = self.nodes
        endpoints = (
            (nodes[0], nodes[1]),
            (nodes[-1], nodes[-2]),
        )
        self._teleports_pending = 2 * self.good_pairs_needed
        for endpoint, neighbour in endpoints:
            dimension = _endpoint_dimension(endpoint, neighbour)
            teleporter = transport.teleporter_for(endpoint)
            for _ in range(self.good_pairs_needed):
                teleporter.teleport_through(dimension, self._data_teleport_done)

    def _data_teleport_done(self) -> None:
        self._teleports_pending -= 1
        if self._teleports_pending == 0:
            # The router gate time is served above; what remains of the data
            # teleport is the distance-dependent flight/classical latency.
            machine = self.transport.machine
            swap_us = machine.params.times.teleport(0.0)
            residual = max(machine.data_teleport_us(len(self.links)) - swap_us, 0.0)
            self.transport.engine.schedule(residual, self._complete)

    def _complete(self) -> None:
        self.transport._finish_channel(self)

    def sampled_fidelity(self) -> "float | None":
        """Mean fidelity of the good pairs this channel consumed, or None.

        Both endpoint purifiers process the halves of the same pairs, so
        either side's stream is the channel's; side 0 is used.  Only the
        ``good_pairs_needed`` pairs the data teleports actually consumed
        count — late stragglers from the pipelined surplus do not.  At
        purification level 0 the good pairs *are* the arrival pairs.
        """
        if not self.purifiers:
            return self._input_fidelity
        fidelities = self.purifiers[0].good_pair_fidelities[: self.good_pairs_needed]
        if not fidelities:
            return None
        return sum(fidelities) / len(fidelities)


@register_backend
class DetailedTransport(TransportBackend):
    """Contention-aware per-EPR-pair backend over shared node hardware."""

    name = "detailed"
    description = (
        "Event-driven per-EPR-pair channels with shared teleporter-set, "
        "storage and purifier queueing; exact but orders of magnitude "
        "slower than fluid."
    )

    def __init__(self, engine: SimulationEngine, machine: QuantumMachine) -> None:
        super().__init__(engine, machine)
        allocation = machine.allocation
        self._buffer_capacity = max(allocation.teleporters_per_node, 2)
        self._generators: Dict[LinkId, LinkGenerator] = {}
        self._teleporters: Dict[Coordinate, TeleporterNodeSim] = {}
        self._storage: Dict[Coordinate, ResourcePool] = {}
        self._purifier_services: Dict[Coordinate, ServiceCenter] = {}
        self._active: Dict[int, _DetailedChannel] = {}

    # -- shared hardware (created on first use, then common to all channels) -----------

    def generator_for(self, link: LinkId) -> LinkGenerator:
        generator = self._generators.get(link)
        if generator is None:
            generator = LinkGenerator(
                self.engine,
                generators=self.machine.allocation.generators_per_node,
                buffer_capacity=self._buffer_capacity,
                params=self.machine.params,
                name=f"G{link.stable_name}",
                rate_scale=self.machine.generator_bandwidth_scale,
            )
            self._generators[link] = generator
        return generator

    def teleporter_for(self, node: Coordinate) -> TeleporterNodeSim:
        teleporter = self._teleporters.get(node)
        if teleporter is None:
            teleporter = TeleporterNodeSim(
                self.engine,
                node,
                spec=self.machine.allocation.teleporter_spec,
                params=self.machine.params,
            )
            self._teleporters[node] = teleporter
        return teleporter

    def storage_for(self, node: Coordinate) -> ResourcePool:
        pool = self._storage.get(node)
        if pool is None:
            cells = self.teleporter_for(node).storage_cells
            pool = ResourcePool(self.engine, cells, name=f"S{node}")
            self._storage[node] = pool
        return pool

    def purifier_service_for(self, node: Coordinate) -> ServiceCenter:
        service = self._purifier_services.get(node)
        if service is None:
            service = ServiceCenter(
                self.engine,
                self.machine.allocation.purifiers_per_node,
                name=f"P{node}.units",
            )
            self._purifier_services[node] = service
        return service

    # -- backend contract ---------------------------------------------------------------

    @property
    def active_channels(self) -> int:
        return len(self._active)

    def start(self, planned: PlannedCommunication, done: Callable[[], None]) -> None:
        """Begin servicing a planned communication at per-pair granularity."""
        flow_id, planned = self._open_channel(planned)
        channel = _DetailedChannel(self, flow_id, planned, done)
        self._active[flow_id] = channel
        channel.begin()

    def _finish_channel(self, channel: _DetailedChannel) -> None:
        del self._active[channel.flow_id]
        sampled = channel.sampled_fidelity() if self.fidelity is not None else None
        self._close_channel(
            channel.flow_id,
            channel.planned,
            start_us=channel.start_us,
            pairs_transited=float(channel.raw_pairs_needed),
            delivered_fidelity=sampled,
            purification_level=channel.purifier_depth if sampled is not None else None,
        )
        channel.done()

    def utilisation_report(self, elapsed_us: float, *, clamp: bool = True) -> Dict[str, float]:
        """Average utilisation per resource class, from the component stats.

        Classes match the fluid backend's report keys (``teleporter_x``,
        ``teleporter_y``, ``generator``, ``purifier``) so result records and
        cross-backend comparisons line up; only instantiated (i.e. actually
        traversed) hardware enters the denominator, mirroring the fluid
        model's touched-resources accounting.
        """
        if elapsed_us <= 0:
            return {}
        busy: Dict[str, float] = {}
        capacity: Dict[str, float] = {}

        def _add(kind: str, stats) -> None:
            busy[kind] = busy.get(kind, 0.0) + stats.busy_time
            capacity[kind] = capacity.get(kind, 0.0) + stats.capacity

        for generator in self._generators.values():
            _add("generator", generator.service.stats)
        for teleporter in self._teleporters.values():
            _add("teleporter_x", teleporter.service_for("x").stats)
            _add("teleporter_y", teleporter.service_for("y").stats)
        for service in self._purifier_services.values():
            _add("purifier", service.stats)
        report: Dict[str, float] = {}
        for kind, cap in capacity.items():
            if cap > 0:
                ratio = busy[kind] / (cap * elapsed_us)
                report[kind] = min(ratio, 1.0) if clamp else ratio
        return report

    def component_utilisation(self, elapsed_us: float) -> Dict[str, Dict[str, float]]:
        """Per-component utilisation, keyed by stable names (for diagnostics)."""
        return {
            "generator": {
                link.stable_name: gen.service.stats.utilisation(elapsed_us)
                for link, gen in self._generators.items()
            },
            "teleporter": {
                str(node): sim.utilisation(elapsed_us)
                for node, sim in self._teleporters.items()
            },
            "purifier": {
                str(node): service.stats.utilisation(elapsed_us)
                for node, service in self._purifier_services.items()
            },
        }


__all__ = ["DetailedTransport"]
