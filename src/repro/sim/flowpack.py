"""Flat-array data plane for the ``vectorized`` max-min allocator.

:class:`FlowPack` keeps the flow×resource incidence of the fluid transport as
CSR-style numpy index arrays instead of per-flow Python dicts:

``entry_row`` / ``entry_col`` / ``entry_work``
    One entry per (flow, resource) demand, appended flow-major.  Flow ids are
    monotonically increasing (``TransportBackend._next_flow_id``), so rows —
    and therefore entries — are always sorted by flow id.  That ordering is
    the whole bitwise-parity argument: every per-resource accumulation walks
    entries in flow-id order, exactly the order ``_max_min_rates`` walks its
    member dicts.
``row_*``
    Per-flow state (``remaining``, ``rate``, ``start_us``, ``floor_us``) as
    float64 arrays.  In vectorized mode these arrays are authoritative; the
    ``ChannelFlow`` objects' scalar fields are not advanced.
``col_*``
    Interned resource keys with per-column capacity.  Columns are never
    re-numbered while referenced (their count is bounded by the topology);
    :meth:`compact` drops columns only when no surviving entry uses them.

Summation uses ``np.bincount(cols, weights=w)``, which accumulates strictly
in input-array order (a sequential C loop), so per-resource demand sums are
bitwise identical to the incremental allocator's Python loop at every size.
``np.add.reduceat`` — the other obvious kernel — switches to pairwise
summation above ~128 elements and is *not* bitwise-stable against the
sequential reference, which is why it is not used here.

All values returned to the caller are converted to Python scalars so numpy
types never leak into engine timestamps or trace records.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError

ResourceKey = Tuple[str, object]

#: Compact the row/entry arrays when tombstoned rows outnumber live ones and
#: the pack is big enough for the rebuild to pay for itself.
_COMPACT_MIN_ROWS = 64

#: Initial capacity for the growable row/entry buffers.
_INITIAL_CAPACITY = 16


def _grown(array: np.ndarray, needed: int) -> np.ndarray:
    """Return ``array`` or a doubled-capacity copy that fits ``needed``."""
    capacity = array.shape[0]
    if needed <= capacity:
        return array
    new_capacity = max(needed, capacity * 2, _INITIAL_CAPACITY)
    grown = np.zeros((new_capacity, *array.shape[1:]), dtype=array.dtype)
    grown[:capacity] = array
    return grown


class FlowPack:
    """Flow×resource incidence and per-flow fluid state as flat arrays."""

    def __init__(
        self,
        capacity_of: Callable[[ResourceKey], float],
        kinds: Iterable[str],
    ) -> None:
        self._capacity_of = capacity_of
        self.kinds: Tuple[str, ...] = tuple(kinds)
        self._kind_index = {kind: i for i, kind in enumerate(self.kinds)}
        # Columns: interned resource keys.
        self._col_of_key: Dict[ResourceKey, int] = {}
        self.col_keys: List[ResourceKey] = []
        self._col_cap = np.zeros(0, dtype=np.float64)
        # Rows: per-flow state (buffers sized >= n_rows; slice before use).
        self._row_of_flow: Dict[int, int] = {}
        self.n_rows = 0
        self._row_flow_id = np.zeros(0, dtype=np.int64)
        self._row_active = np.zeros(0, dtype=bool)
        self._remaining = np.zeros(0, dtype=np.float64)
        self._rate = np.zeros(0, dtype=np.float64)
        self._start_us = np.zeros(0, dtype=np.float64)
        self._floor_us = np.zeros(0, dtype=np.float64)
        self._row_kind_work = np.zeros((0, len(self.kinds)), dtype=np.float64)
        # Entries: flow-major (row, col, work) triples.
        self.n_entries = 0
        self._entry_row = np.zeros(0, dtype=np.int64)
        self._entry_col = np.zeros(0, dtype=np.int64)
        self._entry_work = np.zeros(0, dtype=np.float64)
        self._dead_rows = 0

    # ------------------------------------------------------------------
    # Introspection (tests and transport queries)

    @property
    def n_flows(self) -> int:
        """Number of live (non-tombstoned) flows."""
        return self.n_rows - self._dead_rows

    @property
    def n_cols(self) -> int:
        return len(self.col_keys)

    def row_of(self, flow_id: int) -> int:
        return self._row_of_flow[flow_id]

    def flow_id_at(self, row: int) -> int:
        return int(self._row_flow_id[row])

    def rate_of(self, flow_id: int) -> float:
        return float(self._rate[self._row_of_flow[flow_id]])

    def remaining_of(self, flow_id: int) -> float:
        return float(self._remaining[self._row_of_flow[flow_id]])

    def arrays(self) -> Dict[str, np.ndarray]:
        """Copies of the logical (sliced) arrays — for tests and snapshots."""
        n, e = self.n_rows, self.n_entries
        return {
            "row_flow_id": self._row_flow_id[:n].copy(),
            "row_active": self._row_active[:n].copy(),
            "remaining": self._remaining[:n].copy(),
            "rate": self._rate[:n].copy(),
            "start_us": self._start_us[:n].copy(),
            "floor_us": self._floor_us[:n].copy(),
            "row_kind_work": self._row_kind_work[:n].copy(),
            "entry_row": self._entry_row[:e].copy(),
            "entry_col": self._entry_col[:e].copy(),
            "entry_work": self._entry_work[:e].copy(),
            "col_cap": self._col_cap[: self.n_cols].copy(),
        }

    # ------------------------------------------------------------------
    # Mutation

    def add_flow(
        self,
        flow_id: int,
        demands: Dict[ResourceKey, float],
        *,
        remaining: float = 1.0,
        start_us: float = 0.0,
        floor_us: float = 0.0,
    ) -> int:
        """Append a flow row plus its demand entries; returns the row index.

        Rows must arrive in increasing flow-id order (the transport's flow
        ids are monotonic) — that invariant is what keeps every per-column
        accumulation in flow-id order without sorting.
        """
        if flow_id in self._row_of_flow:
            raise SimulationError(f"flow {flow_id} already packed")
        if self.n_rows and flow_id <= int(self._row_flow_id[self.n_rows - 1]):
            raise SimulationError(
                f"flow ids must be appended in increasing order; got {flow_id} "
                f"after {int(self._row_flow_id[self.n_rows - 1])}"
            )
        row = self.n_rows
        needed = row + 1
        self._row_flow_id = _grown(self._row_flow_id, needed)
        self._row_active = _grown(self._row_active, needed)
        self._remaining = _grown(self._remaining, needed)
        self._rate = _grown(self._rate, needed)
        self._start_us = _grown(self._start_us, needed)
        self._floor_us = _grown(self._floor_us, needed)
        self._row_kind_work = _grown(self._row_kind_work, needed)
        self._row_flow_id[row] = flow_id
        self._row_active[row] = True
        self._remaining[row] = remaining
        self._rate[row] = 0.0
        self._start_us[row] = start_us
        self._floor_us[row] = floor_us
        self._row_kind_work[row] = 0.0
        base = self.n_entries
        needed_entries = base + len(demands)
        self._entry_row = _grown(self._entry_row, needed_entries)
        self._entry_col = _grown(self._entry_col, needed_entries)
        self._entry_work = _grown(self._entry_work, needed_entries)
        for offset, (key, work) in enumerate(demands.items()):
            col = self._intern(key)
            self._entry_row[base + offset] = row
            self._entry_col[base + offset] = col
            self._entry_work[base + offset] = work
            self._row_kind_work[row, self._kind_index[key[0]]] += work
        self.n_entries = needed_entries
        self.n_rows = needed
        self._row_of_flow[flow_id] = row
        return row

    def _intern(self, key: ResourceKey) -> int:
        col = self._col_of_key.get(key)
        if col is None:
            col = len(self.col_keys)
            self._col_of_key[key] = col
            self.col_keys.append(key)
            self._col_cap = _grown(self._col_cap, col + 1)
            self._col_cap[col] = self._capacity_of(key)
        return col

    def remove_flow(self, flow_id: int) -> None:
        """Tombstone a flow's row; entries stay until the next compaction."""
        row = self._row_of_flow.pop(flow_id)
        self._row_active[row] = False
        self._rate[row] = 0.0
        self._remaining[row] = 0.0
        self._dead_rows += 1
        if self._dead_rows * 2 > self.n_rows and self.n_rows >= _COMPACT_MIN_ROWS:
            self.compact()

    def compact(self) -> None:
        """Drop tombstoned rows, their entries and now-unused columns.

        Surviving rows keep their relative (flow-id) order and surviving
        columns are re-interned in first-use order of the surviving entries —
        the same layout a fresh :meth:`rebuild` would produce, which is what
        the round-trip property test pins.  Compaction is unobservable to the
        allocator: every kernel either masks dead rows or accumulates
        per-column (and the within-column entry order is preserved).
        """
        n, e = self.n_rows, self.n_entries
        live = self._row_active[:n]
        old_rows = np.nonzero(live)[0]
        new_row_of_old = np.full(n, -1, dtype=np.int64)
        new_row_of_old[old_rows] = np.arange(old_rows.shape[0])
        keep_entry = live[self._entry_row[:e]]
        entry_row = new_row_of_old[self._entry_row[:e][keep_entry]]
        entry_old_col = self._entry_col[:e][keep_entry]
        # Re-intern surviving columns in first-use order.
        old_keys, old_cap = self.col_keys, self._col_cap
        self._col_of_key = {}
        self.col_keys = []
        self._col_cap = np.zeros(0, dtype=np.float64)
        entry_col = np.zeros(entry_old_col.shape[0], dtype=np.int64)
        for i, old_col in enumerate(entry_old_col):
            key = old_keys[int(old_col)]
            col = self._col_of_key.get(key)
            if col is None:
                col = len(self.col_keys)
                self._col_of_key[key] = col
                self.col_keys.append(key)
                self._col_cap = _grown(self._col_cap, col + 1)
                self._col_cap[col] = old_cap[int(old_col)]
            entry_col[i] = col
        self._entry_row = entry_row
        self._entry_col = entry_col
        self._entry_work = self._entry_work[:e][keep_entry].copy()
        self.n_entries = entry_row.shape[0]
        self._row_flow_id = self._row_flow_id[:n][live].copy()
        self._row_active = self._row_active[:n][live].copy()
        self._remaining = self._remaining[:n][live].copy()
        self._rate = self._rate[:n][live].copy()
        self._start_us = self._start_us[:n][live].copy()
        self._floor_us = self._floor_us[:n][live].copy()
        self._row_kind_work = self._row_kind_work[:n][live].copy()
        self.n_rows = old_rows.shape[0]
        self._dead_rows = 0
        self._row_of_flow = {
            int(fid): row for row, fid in enumerate(self._row_flow_id[: self.n_rows])
        }

    def rebuild(self, demands_of: Callable[[int], Dict[ResourceKey, float]]) -> "FlowPack":
        """Fresh pack holding only the live flows, re-interned from scratch."""
        pack = FlowPack(self._capacity_of, self.kinds)
        for row in range(self.n_rows):
            if not self._row_active[row]:
                continue
            flow_id = int(self._row_flow_id[row])
            pack.add_flow(
                flow_id,
                demands_of(flow_id),
                remaining=float(self._remaining[row]),
                start_us=float(self._start_us[row]),
                floor_us=float(self._floor_us[row]),
            )
            pack._rate[pack._row_of_flow[flow_id]] = self._rate[row]
        return pack

    # ------------------------------------------------------------------
    # Fluid-state kernels

    def advance(self, elapsed: float) -> None:
        """``remaining -= rate * elapsed`` clamped at 0, over all rows.

        Tombstoned rows have rate 0 and remaining 0, so the full-array form
        is exact.  Elementwise float64 ops match the per-flow Python
        arithmetic bitwise.
        """
        n = self.n_rows
        remaining = self._remaining[:n]
        np.maximum(remaining - self._rate[:n] * elapsed, 0.0, out=remaining)

    def max_min_rates(self, saturation_eps: float) -> np.ndarray:
        """Progressive-filling max-min rates, bitwise-equal to the dict loop.

        Per iteration: mask entries of frozen rows to exact 0.0 work, sum
        per-column demand with ``bincount`` (sequential, flow-id order),
        take the min ``cap_left / denom`` bottleneck delta (min over floats
        is order-independent; no NaNs can occur since denom > 0), credit
        every unfrozen row, charge every contended column, and freeze the
        member rows of columns that crossed the saturation epsilon.
        """
        n, e = self.n_rows, self.n_entries
        rates = np.zeros(n, dtype=np.float64)
        alive = self._row_active[:n].copy()
        active = int(np.count_nonzero(alive))
        if not active:
            return rates
        n_cols = self.n_cols
        cap_left = self._col_cap[:n_cols].copy()
        # Working copies of the entry arrays, shrunk to live-row entries as
        # rows freeze so each round costs O(live entries), not O(all
        # entries).  Dropping a dead entry is bitwise-neutral: it would have
        # contributed an exact +0.0 to its column's bincount partial sum, and
        # partial sums of non-negative works are never -0.0, so ``s + 0.0``
        # is the bitwise identity here.
        keep = alive[self._entry_row[:e]]
        erow = self._entry_row[:e][keep]
        ecol = self._entry_col[:e][keep]
        ework = self._entry_work[:e][keep]
        for _ in range(active + 1):
            denom = np.bincount(ecol, weights=ework, minlength=n_cols)
            contended = denom > 0.0
            if not contended.any():
                rates[alive] += 1.0
                break
            best_delta = np.min(cap_left[contended] / denom[contended])
            rates[alive] += best_delta
            cap_left[contended] -= best_delta * denom[contended]
            saturated = contended & (cap_left <= saturation_eps)
            if not saturated.any():
                break
            frozen_rows = erow[saturated[ecol]]
            alive[frozen_rows] = False
            if not alive.any():
                break
            keep = alive[erow]
            erow = erow[keep]
            ecol = ecol[keep]
            ework = ework[keep]
        return rates

    def reallocate(
        self, saturation_eps: float, *, collect_changes: bool = False
    ) -> List[Tuple[int, float]]:
        """Run the kernel and store the new rates; optionally list changes.

        Returns ``(flow_id, new_rate)`` pairs for live rows whose rate
        changed bitwise, in ascending flow-id order — the exact stream the
        dict-based allocators feed to ``FlowRateChanged``.  The list is only
        materialised when ``collect_changes`` (i.e. the trace wants it).
        """
        n = self.n_rows
        new_rates = self.max_min_rates(saturation_eps)
        changes: List[Tuple[int, float]] = []
        if collect_changes:
            changed = np.nonzero((new_rates != self._rate[:n]) & self._row_active[:n])[0]
            flow_ids = self._row_flow_id[:n]
            changes = [(int(flow_ids[row]), float(new_rates[row])) for row in changed]
        self._rate[:n] = new_rates
        return changes

    def kind_rate_sums(self) -> Dict[str, float]:
        """Aggregate ``rate × work`` per resource kind (utilisation integrals).

        Dot-product accumulation order differs from the incremental
        allocator's running ±delta updates, but utilisation is compared at
        1e-9 relative tolerance, not bitwise.
        """
        n = self.n_rows
        totals = self._rate[:n] @ self._row_kind_work[:n]
        return {kind: float(totals[i]) for i, kind in enumerate(self.kinds)}

    def loads(self) -> Dict[ResourceKey, float]:
        """Per-resource load ``sum(rate × work)`` over live flows.

        bincount accumulates in entry (= flow-id) order, matching the
        member-dict walk of the dict-based allocators bitwise.
        """
        n, e = self.n_rows, self.n_entries
        erow = self._entry_row[:e]
        weights = np.where(
            self._row_active[:n][erow], self._rate[:n][erow] * self._entry_work[:e], 0.0
        )
        sums = np.bincount(self._entry_col[:e], weights=weights, minlength=self.n_cols)
        return {
            self.col_keys[col]: float(sums[col])
            for col in range(self.n_cols)
            if sums[col] > 0.0
        }

    def next_completion(
        self,
        now: float,
        completion_eps: float,
        *,
        exclude_flow_ids: Optional[Iterable[int]] = None,
    ) -> Optional[Tuple[int, float]]:
        """Earliest completion as ``(flow_id, finish_time)``, or None.

        Per live row, bitwise-identical to ``_schedule_completion``:
        ``remaining <= eps`` finishes now; ``rate <= 0`` is stalled (inf);
        otherwise ``now + remaining / rate``; all clamped to the channel
        floor.  ``argmin`` ties resolve to the lowest row index, i.e. the
        lowest flow id — and the completion chain re-arms after each event,
        so tied flows still fire one by one in flow-id (priority) order.
        ``exclude_flow_ids`` masks flows whose (virtual) completion event is
        spent until the next reallocation.
        """
        n = self.n_rows
        if not n:
            return None
        remaining = self._remaining[:n]
        rate = self._rate[:n]
        with np.errstate(divide="ignore", invalid="ignore"):
            finish = now + remaining / rate
        finish = np.where(remaining <= completion_eps, now, finish)
        finish = np.where((rate <= 0.0) & (remaining > completion_eps), np.inf, finish)
        finish = np.maximum(finish, self._start_us[:n] + self._floor_us[:n])
        finish = np.where(self._row_active[:n], finish, np.inf)
        if exclude_flow_ids is not None:
            for flow_id in exclude_flow_ids:
                row = self._row_of_flow.get(flow_id)
                if row is not None:
                    finish[row] = np.inf
        row = int(np.argmin(finish))
        if not np.isfinite(finish[row]):
            return None
        return int(self._row_flow_id[row]), float(finish[row])

    def resource_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-resource (CSC) transpose: ``(indptr, entry_index)``.

        ``entry_index[indptr[c]:indptr[c+1]]`` lists this pack's entry
        indices for column ``c`` in flow-id order (the argsort is stable and
        entries are appended flow-major).  Used by resource-major consumers
        and the structure property tests.
        """
        e = self.n_entries
        order = np.argsort(self._entry_col[:e], kind="stable")
        counts = np.bincount(self._entry_col[:e], minlength=self.n_cols)
        indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, order
