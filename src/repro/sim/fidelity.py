"""Per-channel fidelity accounting shared by both transport backends.

The paper judges a quantum interconnect by the *fidelity* of the EPR pairs it
delivers, not just by how many pairs per second it moves.  This module is the
bridge between the analytical physics (:mod:`repro.physics`, :mod:`repro.core`)
and the runtime: when a machine carries a noise model
(:attr:`~repro.sim.machine.QuantumMachine.track_fidelity`), every transport
backend owns a :class:`ChannelFidelityModel` and reports what each channel
actually delivered.

The model answers two questions, both memoized per hop count:

* **At channel-open time** — which purification level must the endpoint queue
  purifiers run so the delivered pairs clear the target fidelity?  The
  selection is threshold-driven: the machine folds the scenario's
  ``noise.target_fidelity`` into ``params.threshold_error``, the budget model
  picks the minimum level whose output clears it, and the resulting delivered
  state is checked through :func:`repro.physics.threshold.check_fidelity`.
* **At channel-close time** — what fidelity did the channel deliver?  The
  fluid backend reports the analytical value (Werner/Bell-diagonal algebra of
  Eq. 3 plus the purification recurrence); the detailed backend reports the
  per-pair outcome sampled from its event-driven queue purifiers.  The two
  agree within :data:`repro.verify.harness.FIDELITY_ABS_TOL`, which
  ``python -m repro verify fidelity`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..physics.states import BellDiagonalState
from ..physics.threshold import check_fidelity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import QuantumMachine


@dataclass(frozen=True)
class ChannelFidelityProfile:
    """Fidelity plan of a channel, fixed by its hop count.

    Attributes
    ----------
    hops:
        Channel length in teleportation hops.
    arrival_state / arrival_fidelity:
        Bell-diagonal state (and its fidelity) reaching the endpoint queue
        purifiers after generation, chained teleportation and local moves.
    purification_level:
        Endpoint purification tree depth selected at channel-open time so the
        delivered pairs clear ``target_fidelity`` (the budget model's
        threshold-driven choice).
    delivered_state / delivered_fidelity:
        Analytical state (and fidelity) after ``purification_level`` rounds.
    target_fidelity:
        The fidelity the channel must deliver (the fault-tolerance threshold,
        or the scenario's ``noise.target_fidelity`` override).
    meets_target:
        Whether the delivered fidelity clears the target, judged through
        :func:`repro.physics.threshold.check_fidelity`.
    expected_pairs:
        Expected raw input pairs the endpoint tree consumes per delivered
        pair — the bandwidth cost of the fidelity (>= 1 always, ~``2**level``).
    """

    hops: int
    arrival_state: BellDiagonalState
    arrival_fidelity: float
    purification_level: int
    delivered_state: BellDiagonalState
    delivered_fidelity: float
    target_fidelity: float
    meets_target: bool
    expected_pairs: float


class ChannelFidelityModel:
    """Memoized per-distance fidelity profiles for one machine.

    One instance is shared by every transport backend created on the machine
    (and across runs): profiles are pure functions of the machine's physics,
    so the memoisation is exact.
    """

    def __init__(self, machine: "QuantumMachine") -> None:
        self.machine = machine
        self._profiles: Dict[int, ChannelFidelityProfile] = {}

    @property
    def target_fidelity(self) -> float:
        """The delivered-fidelity target every channel is held to."""
        return self.machine.params.threshold_fidelity

    def profile(self, hops: int) -> ChannelFidelityProfile:
        """The fidelity profile of a channel of ``hops`` (memoized)."""
        profile = self._profiles.get(hops)
        if profile is None:
            profile = self._compute(hops)
            self._profiles[hops] = profile
        return profile

    def _compute(self, hops: int) -> ChannelFidelityProfile:
        planner = self.machine.planner
        budget = planner.budget_for_hops(hops)
        arrival = planner.arrival_state(hops)
        level = budget.endpoint_rounds
        if level > 0:
            outcomes = planner.protocol_instance.iterate(arrival, level)
            delivered = outcomes[-1].state
        else:
            delivered = arrival
        check = check_fidelity(delivered.fidelity, self.machine.params)
        # An infeasible channel (the Figure 12 breakdown regime) reports the
        # best it can do at the capped level; meets_target stays False and the
        # expected pair count is infinite, exactly as the budget says.
        return ChannelFidelityProfile(
            hops=hops,
            arrival_state=arrival,
            arrival_fidelity=arrival.fidelity,
            purification_level=level,
            delivered_state=delivered,
            delivered_fidelity=delivered.fidelity,
            target_fidelity=check.threshold_fidelity,
            meets_target=check.satisfied and budget.feasible,
            expected_pairs=budget.endpoint_pairs,
        )


__all__ = ["ChannelFidelityModel", "ChannelFidelityProfile"]
